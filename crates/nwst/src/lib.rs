//! # wmcs-nwst — node-weighted Steiner trees
//!
//! The NWST substrate of §2.2: node-weighted graphs and shortest paths,
//! spider / branch-spider minimum-ratio oracles (Klein–Ravi \[33\] and a
//! Guha–Khuller-style \[28\] branch extension), the greedy shrink algorithm
//! `A_ST`, the paper's NWST cost-sharing mechanism (Theorems 2.2 / 2.3),
//! an exact exponential optimum for ratio measurements, and the
//! MEMT ↔ NWST reduction of Caragiannis et al. \[9\] that powers the
//! 3 ln(k+1)-BB wireless mechanism of §2.2.3.

// Index loops over multiple parallel arrays are idiomatic in this
// numeric code; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Every public item carries rustdoc: substrate crates feed the
// mechanism layers above them, and undocumented invariants become
// silent contract drift there.
#![deny(missing_docs)]

pub mod exact;
pub mod graph;
pub mod greedy;
pub mod reduction;
pub mod spider;

pub use exact::nwst_exact_cost;
pub use graph::NodeWeightedGraph;
pub use greedy::{nwst_approximate, nwst_mechanism, BudgetAggregation, NwstConfig, NwstOutcome};
pub use reduction::{NodeKind, ReducedInstance, ReducedSolution};
pub use spider::{cheapest_connection, find_min_ratio_spider, Group, SpiderCandidate};

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// A two-hub instance: four terminals; hubs h1 (weight 2, serving
    /// t0, t1, t2) and h2 (weight 3, serving t2, t3), plus a bridge node
    /// (weight 1) between the hubs.
    fn two_hubs() -> (NodeWeightedGraph, Vec<usize>) {
        // ids: 0..=3 terminals, 4 = h1, 5 = h2, 6 = bridge
        let mut g = NodeWeightedGraph::new(vec![0.0, 0.0, 0.0, 0.0, 2.0, 3.0, 1.0]);
        g.add_edge(4, 0);
        g.add_edge(4, 1);
        g.add_edge(4, 2);
        g.add_edge(5, 2);
        g.add_edge(5, 3);
        g.add_edge(4, 6);
        g.add_edge(6, 5);
        (g, vec![0, 1, 2, 3])
    }

    #[test]
    fn greedy_tree_spans_all_terminals_budget_balancedly() {
        let (g, ts) = two_hubs();
        let out = nwst_approximate(&g, &ts, &NwstConfig::default());
        assert_eq!(out.receivers, vec![0, 1, 2, 3]);
        assert!(g.is_connected_subgraph(&out.tree_nodes, &ts));
        let revenue: f64 = out.shares.iter().sum();
        assert!(revenue + 1e-9 >= out.cost);
        // Exact optimum: h1 + h2 = 5 (bridge unnecessary: t2 touches both).
        let exact = nwst_exact_cost(&g, &ts).expect("two-hub instance is connected");
        assert!((exact - 5.0).abs() < 1e-9);
        assert!(out.cost >= exact - 1e-9);
    }

    #[test]
    fn mechanism_with_tight_budgets_still_recovers_cost() {
        let (g, ts) = two_hubs();
        let out = nwst_mechanism(&g, &ts, &[1.0, 1.0, 2.0, 0.2], None, &NwstConfig::default());
        let revenue: f64 = out.shares.iter().sum();
        assert!(revenue + 1e-9 >= out.cost);
        for &r in &out.receivers {
            assert!(out.shares[r] <= [1.0, 1.0, 2.0, 0.2][r] + 1e-9);
        }
    }
}
