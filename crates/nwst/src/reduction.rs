//! The MEMT → NWST reduction of Caragiannis–Kaklamanis–Kanellopoulos
//! (§2.2.1) and its back-conversion.
//!
//! Forward direction: every station `x_i` becomes a *supernode* — an input
//! node `Z⁰_i` of weight 0 plus one output node `Z^m_i` of weight `C^m_i`
//! per distinct incident transmission cost (power level). Edges:
//! `Z⁰_i — Z^m_i` within a supernode, and `Z^m_i — Z⁰_j` whenever
//! `C^m_i ≥ c(x_i, x_j)` (emitting at level `m` reaches `x_j`). Terminals
//! are the input nodes of `R ∪ {s}`.
//!
//! Backward direction: BFS-number a Steiner tree from `Z⁰_s`; every tree
//! edge crossing supernodes `i → j` (by BFS order) becomes the directed
//! station edge `⟨x_i, x_j⟩`; station powers are the maxima of their
//! outgoing edge costs. A ρ-approximate NWST solution yields a
//! 2ρ-approximate MEMT solution: the NWST weight pays for "forward"
//! transmissions, and making the weakly-connected tree properly directed
//! at most doubles the cost (handled by step (c) of the wireless
//! mechanism, which also shares those extra powers).

use crate::graph::NodeWeightedGraph;
use wmcs_graph::RootedTree;
use wmcs_wireless::{PowerAssignment, WirelessNetwork};

/// What a node of the reduced graph stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// `Z⁰_i`: the input node of station `i`.
    Input {
        /// Station index.
        station: usize,
    },
    /// `Z^m_i`: station `i` emitting at its `m`-th power level.
    Output {
        /// Station index.
        station: usize,
        /// Power level value.
        level_index: usize,
    },
}

/// The reduced NWST instance for a wireless network.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The node-weighted graph `H`.
    pub graph: NodeWeightedGraph,
    /// Meaning of each node.
    pub kinds: Vec<NodeKind>,
    /// `input_of[station]` = node id of `Z⁰_station`.
    pub input_of: Vec<usize>,
    /// Power levels per station (ascending), mirroring the output nodes.
    pub levels: Vec<Vec<f64>>,
}

impl ReducedInstance {
    /// Build the reduction for the whole station set of `net`.
    pub fn build(net: &WirelessNetwork) -> Self {
        let n = net.n_stations();
        let mut weights: Vec<f64> = Vec::new();
        let mut kinds: Vec<NodeKind> = Vec::new();
        let mut input_of = vec![0usize; n];
        let mut output_ids: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut levels: Vec<Vec<f64>> = vec![Vec::new(); n];
        for i in 0..n {
            input_of[i] = weights.len();
            weights.push(0.0);
            kinds.push(NodeKind::Input { station: i });
            let lv = net.costs().power_levels(i);
            for (m, &p) in lv.iter().enumerate() {
                output_ids[i].push(weights.len());
                weights.push(p);
                kinds.push(NodeKind::Output {
                    station: i,
                    level_index: m,
                });
            }
            levels[i] = lv;
        }
        let mut graph = NodeWeightedGraph::new(weights);
        for i in 0..n {
            for (m, &out) in output_ids[i].iter().enumerate() {
                // Within the supernode.
                graph.add_edge(input_of[i], out);
                // To every station reachable at this level.
                for j in 0..n {
                    if j != i && net.cost(i, j) <= levels[i][m] + wmcs_geom::EPS {
                        graph.add_edge(out, input_of[j]);
                    }
                }
            }
        }
        Self {
            graph,
            kinds,
            input_of,
            levels,
        }
    }

    /// Terminal node ids for a receiver station set (source included, as
    /// the reduction requires).
    pub fn terminals_for(&self, net: &WirelessNetwork, receivers: &[usize]) -> Vec<usize> {
        let mut t: Vec<usize> = vec![self.input_of[net.source()]];
        t.extend(receivers.iter().map(|&r| self.input_of[r]));
        t
    }

    /// Back-conversion: orient a Steiner tree (given by its edges over the
    /// reduced graph) by BFS from the source's input node; emit the station
    /// power assignment and the station-level directed tree edges.
    ///
    /// Also returns the *NWST-paid* powers `π'`: for each station the
    /// maximum level of its output nodes used by the tree — the amount the
    /// NWST cost shares already cover. Step (c) of the wireless mechanism
    /// charges the difference `π > π'` separately.
    pub fn to_power_assignment(
        &self,
        net: &WirelessNetwork,
        tree_edges: &[(usize, usize)],
    ) -> ReducedSolution {
        let root = self.input_of[net.source()];
        let tree = RootedTree::from_undirected_edges(self.graph.len(), root, tree_edges);
        let order = tree.bfs_order();
        let mut bfs_no = vec![usize::MAX; self.graph.len()];
        for (i, &v) in order.iter().enumerate() {
            bfs_no[v] = i;
        }
        let mut pa = PowerAssignment::zero(net.n_stations());
        let mut station_edges: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in tree_edges {
            if bfs_no[a] == usize::MAX || bfs_no[b] == usize::MAX {
                continue; // edge outside the root component
            }
            let (hi, lo) = if bfs_no[a] < bfs_no[b] {
                (a, b)
            } else {
                (b, a)
            };
            let si = self.station_of(hi);
            let sj = self.station_of(lo);
            if si != sj {
                pa.raise(si, net.cost(si, sj));
                station_edges.push((si, sj));
            }
        }
        // NWST-paid powers: max used output level per station.
        let mut paid = PowerAssignment::zero(net.n_stations());
        let mut used = vec![false; self.graph.len()];
        for &(a, b) in tree_edges {
            used[a] = true;
            used[b] = true;
        }
        for (v, kind) in self.kinds.iter().enumerate() {
            if used[v] {
                if let NodeKind::Output {
                    station,
                    level_index,
                } = *kind
                {
                    paid.raise(station, self.levels[station][level_index]);
                }
            }
        }
        ReducedSolution {
            assignment: pa,
            nwst_paid: paid,
            station_edges,
        }
    }

    fn station_of(&self, node: usize) -> usize {
        match self.kinds[node] {
            NodeKind::Input { station } => station,
            NodeKind::Output { station, .. } => station,
        }
    }
}

/// Back-converted MEMT solution.
#[derive(Debug, Clone)]
pub struct ReducedSolution {
    /// The station power assignment `π` implementing the multicast.
    pub assignment: PowerAssignment,
    /// The powers already covered by the NWST node weights (`π'`).
    pub nwst_paid: PowerAssignment,
    /// Directed station edges of the multicast tree (BFS-oriented).
    pub station_edges: Vec<(usize, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{nwst_approximate, NwstConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{approx_eq, Point, PowerModel};
    use wmcs_wireless::memt_exact;

    fn random_net(seed: u64, n: usize) -> WirelessNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)))
            .collect();
        WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0)
    }

    #[test]
    fn node_counts_match_construction() {
        let net = random_net(1, 5);
        let red = ReducedInstance::build(&net);
        // n input nodes + Σ n_i output nodes.
        let expect: usize = 5
            + (0..5)
                .map(|i| net.costs().power_levels(i).len())
                .sum::<usize>();
        assert_eq!(red.graph.len(), expect);
        for i in 0..5 {
            assert_eq!(red.kinds[red.input_of[i]], NodeKind::Input { station: i });
            assert_eq!(red.graph.weight(red.input_of[i]), 0.0);
        }
    }

    #[test]
    fn output_weights_equal_power_levels() {
        let net = random_net(2, 4);
        let red = ReducedInstance::build(&net);
        for (v, kind) in red.kinds.iter().enumerate() {
            if let NodeKind::Output {
                station,
                level_index,
            } = *kind
            {
                assert!(approx_eq(
                    red.graph.weight(v),
                    red.levels[station][level_index]
                ));
            }
        }
    }

    #[test]
    fn nwst_optimum_lower_bounds_memt_optimum() {
        // The reduction preserves optima up to the factor-2 directedness
        // loss: OPT_NWST ≤ OPT_MEMT (any assignment gives a Steiner tree
        // paying each used power level once).
        for seed in 0..6 {
            let net = random_net(seed, 5);
            let red = ReducedInstance::build(&net);
            let receivers: Vec<usize> = (1..5).collect();
            let terminals = red.terminals_for(&net, &receivers);
            let greedy = nwst_approximate(&red.graph, &terminals, &NwstConfig::default());
            let (opt, _) = memt_exact(&net, &receivers);
            // greedy NWST ≥ OPT_NWST, so only the direction below is a
            // theorem; we additionally sanity check the 2ρ bound loosely.
            let sol = red.to_power_assignment(&net, &greedy.tree_edges);
            assert!(
                sol.assignment.multicasts_to(&net, &receivers),
                "seed {seed}: reduced solution infeasible"
            );
            assert!(
                sol.assignment.total_cost() >= opt - 1e-9,
                "seed {seed}: beat the optimum"
            );
        }
    }

    #[test]
    fn back_conversion_feasible_on_random_instances() {
        for seed in 10..30 {
            let net = random_net(seed, 6);
            let red = ReducedInstance::build(&net);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xf00d);
            let receivers: Vec<usize> = (1..6).filter(|_| rng.gen_bool(0.7)).collect();
            if receivers.is_empty() {
                continue;
            }
            let terminals = red.terminals_for(&net, &receivers);
            let greedy = nwst_approximate(&red.graph, &terminals, &NwstConfig::default());
            assert_eq!(greedy.receivers.len(), terminals.len(), "seed {seed}");
            let sol = red.to_power_assignment(&net, &greedy.tree_edges);
            assert!(
                sol.assignment.multicasts_to(&net, &receivers),
                "seed {seed}: receivers unreachable"
            );
            // π ≥ π' component-wise is NOT guaranteed (a station may
            // transmit cheaper than its bought level), but π' must cover
            // every *forward* edge: for each directed edge the transmitter
            // bought some level ≥ the edge cost or the edge is "backward".
            // We at least check totals are sane.
            assert!(sol.nwst_paid.total_cost() <= greedy.cost + 1e-9);
        }
    }

    #[test]
    fn station_edges_form_source_rooted_structure() {
        let net = random_net(3, 5);
        let red = ReducedInstance::build(&net);
        let receivers = vec![1, 2, 3, 4];
        let terminals = red.terminals_for(&net, &receivers);
        let greedy = nwst_approximate(&red.graph, &terminals, &NwstConfig::default());
        let sol = red.to_power_assignment(&net, &greedy.tree_edges);
        // Every receiver is reachable from the source via directed
        // station edges.
        let mut adj = vec![Vec::new(); 5];
        for &(a, b) in &sol.station_edges {
            adj[a].push(b);
        }
        let mut seen = [false; 5];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        for r in receivers {
            assert!(seen[r], "receiver {r} not covered by station edges");
        }
    }
}
