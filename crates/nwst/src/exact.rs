//! Exact NWST by exhaustive search over positive-weight node subsets —
//! the optimum reference for the approximation-ratio tables (experiment
//! T2). Zero-weight nodes are always free to include, so only nodes with
//! positive weight are enumerated.

use crate::graph::NodeWeightedGraph;
use wmcs_geom::EPS;

/// Exact minimum NWST cost spanning `terminals`, or `None` if they cannot
/// be connected at all. Exponential in the number of positive-weight
/// non-terminal nodes (capped at 22).
pub fn nwst_exact_cost(g: &NodeWeightedGraph, terminals: &[usize]) -> Option<f64> {
    if terminals.len() <= 1 {
        return Some(terminals.iter().map(|&t| g.weight(t)).sum());
    }
    let n = g.len();
    let is_terminal = {
        let mut v = vec![false; n];
        for &t in terminals {
            v[t] = true;
        }
        v
    };
    // Free base: terminals plus all zero-weight nodes.
    let base: Vec<usize> = (0..n)
        .filter(|&v| is_terminal[v] || g.weight(v) <= EPS)
        .collect();
    let optional: Vec<usize> = (0..n)
        .filter(|&v| !is_terminal[v] && g.weight(v) > EPS)
        .collect();
    assert!(
        optional.len() <= 22,
        "exact NWST is exponential in positive-weight nodes: {}",
        optional.len()
    );
    let terminal_weight: f64 = terminals.iter().map(|&t| g.weight(t)).sum();
    let mut best: Option<f64> = None;
    for mask in 0u64..(1 << optional.len()) {
        let mut nodes = base.clone();
        let mut cost = terminal_weight;
        for (i, &v) in optional.iter().enumerate() {
            if mask & (1 << i) != 0 {
                nodes.push(v);
                cost += g.weight(v);
            }
        }
        if best.is_some_and(|b| cost >= b) {
            continue;
        }
        if g.is_connected_subgraph(&nodes, terminals) {
            best = Some(cost);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{nwst_approximate, NwstConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::approx_eq;

    #[test]
    fn star_optimum_is_cheap_hub() {
        let mut g = NodeWeightedGraph::new(vec![2.0, 0.0, 0.0, 0.0, 9.0]);
        for t in 1..=3 {
            g.add_edge(0, t);
            g.add_edge(4, t);
        }
        assert!(approx_eq(
            nwst_exact_cost(&g, &[1, 2, 3]).expect("hub connects all terminals"),
            2.0
        ));
    }

    #[test]
    fn single_terminal_costs_its_own_weight() {
        let g = NodeWeightedGraph::new(vec![3.0]);
        assert!(approx_eq(
            nwst_exact_cost(&g, &[0]).expect("a single terminal is always connected"),
            3.0
        ));
    }

    #[test]
    fn disconnected_terminals_return_none() {
        let g = NodeWeightedGraph::new(vec![0.0, 0.0]);
        assert_eq!(nwst_exact_cost(&g, &[0, 1]), None);
    }

    #[test]
    fn zero_weight_bridges_are_free() {
        let mut g = NodeWeightedGraph::new(vec![0.0, 0.0, 0.0, 7.0]);
        g.add_edge(0, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 3);
        g.add_edge(3, 1);
        assert!(approx_eq(
            nwst_exact_cost(&g, &[0, 1]).expect("zero-weight bridges connect the terminals"),
            0.0
        ));
    }

    #[test]
    fn greedy_never_beats_exact_on_random_graphs() {
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(5usize..10);
            let k = rng.gen_range(2usize..4.min(n));
            // Terminals 0..k weight 0; the rest random positive weights.
            let weights: Vec<f64> = (0..n)
                .map(|v| if v < k { 0.0 } else { rng.gen_range(0.1..5.0) })
                .collect();
            let mut g = NodeWeightedGraph::new(weights);
            // Random connected-ish graph: a ring plus chords.
            for v in 0..n {
                g.add_edge(v, (v + 1) % n);
            }
            for _ in 0..n {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if a != b {
                    g.add_edge(a, b);
                }
            }
            let terminals: Vec<usize> = (0..k).collect();
            let exact = nwst_exact_cost(&g, &terminals).expect("ring is connected");
            let greedy = nwst_approximate(&g, &terminals, &NwstConfig::default());
            assert!(
                greedy.cost + 1e-9 >= exact,
                "seed {seed}: greedy {} < exact {exact}",
                greedy.cost
            );
            // 1.5 ln k bound with k small: allow the analytic bound's small-k
            // floor of factor 2 (the guarantee is asymptotic).
            let bound = (1.5 * (terminals.len() as f64).ln()).max(2.0);
            assert!(
                greedy.cost <= bound * exact.max(EPS) + 1e-6,
                "seed {seed}: greedy {} vs exact {exact} exceeds {bound}",
                greedy.cost
            );
        }
    }
}
