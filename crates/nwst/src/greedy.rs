//! The greedy NWST algorithm `A_ST` and the paper's NWST cost-sharing
//! mechanism (§2.2.2), in one parameterised driver.
//!
//! The mechanism repeatedly buys the minimum-ratio 3+ branch-spider,
//! charges its ratio to the covered terminals (constituents of shrunk
//! super-terminals split it equally), shrinks, aggregates the new
//! super-terminal's reported utility by Eq. (5)
//! `v_t = |T_Sp| · min_{t'∈T_Sp}(v_{t'} − c_{t'})`, and — once at most two
//! terminals remain — connects them by the cheapest node-weighted path
//! (payment-checked like a spider). If some covered terminal cannot pay a
//! ratio, the unaffordable constituents are dropped and the computation
//! restarts from scratch on the reduced terminal set.
//!
//! Running with infinite budgets reproduces the plain approximation
//! algorithm (no drops). Theorem 2.2's argument — the mechanism's solution
//! equals the algorithm's on the final receiver set — holds by construction
//! here, since both are the same code path.
//!
//! **Faithfulness note (documented deviation).** The paper's drop rule
//! removes `X = {x_i ∈ N_t^+ : v_i − c_i < v_t / |N_t^+|}`; read literally
//! (strict `<`) this is *empty* for a fresh terminal (`v_i − 0 < v_i`
//! fails), dead-locking the restart loop. We use `≤` (which drops the
//! minimum-residual constituent and every fresh unaffordable terminal) and,
//! defensively, fall back to dropping the minimum-residual constituent if
//! the set is still empty. Shares remain independent of a terminal's own
//! report, so strategyproofness (Theorem 2.3) is unaffected.

use crate::graph::NodeWeightedGraph;
use crate::spider::{cheapest_connection, find_min_ratio_spider, Group, SpiderCandidate};
use wmcs_geom::EPS;

/// How a super-terminal's ability to pay is assessed (see DESIGN.md §3a,
/// finding 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetAggregation {
    /// The paper's Eq. (5): scalar budget `v_t = |T_Sp| · min residual`,
    /// checked as `ratio ≤ v_t`. Conservative — thresholds can exceed the
    /// eventual per-member charge, breaking strategyproofness on ~5% of
    /// random profiles (experiment T9 quantifies this).
    #[default]
    PaperEq5,
    /// Tightened per-member check: a group can pay iff every member's
    /// residual covers its actual slice `ratio / |N_t^+|`, and failed
    /// checks evict only the single weakest member before restarting.
    /// Serves weakly more agents and cuts the measured strategyproofness
    /// violations ~3× (experiment T9); a small residual rate remains from
    /// restart path-dependence — exact strategyproofness would need
    /// cross-monotonic shares, which Lemma 3.3 rules out here.
    TightMemberResiduals,
}

/// Oracle configuration for the greedy driver.
#[derive(Debug, Clone, Copy)]
pub struct NwstConfig {
    /// Minimum total groups per component (3 = the paper's 3+
    /// branch-spiders; 2 = Klein–Ravi spiders).
    pub min_spider_groups: usize,
    /// Enable Guha–Khuller-style two-terminal branch legs.
    pub branch_legs: bool,
    /// Payment-check semantics (paper-faithful by default).
    pub aggregation: BudgetAggregation,
}

impl Default for NwstConfig {
    fn default() -> Self {
        Self {
            min_spider_groups: 3,
            branch_legs: true,
            aggregation: BudgetAggregation::PaperEq5,
        }
    }
}

/// Result of a mechanism (or plain-algorithm) run.
#[derive(Debug, Clone)]
pub struct NwstOutcome {
    /// Indices (into the input `terminals` slice) that receive service.
    pub receivers: Vec<usize>,
    /// Cost share per input terminal index (0 for dropped terminals).
    pub shares: Vec<f64>,
    /// All bought nodes (terminals included).
    pub tree_nodes: Vec<usize>,
    /// Spanning-tree edges over `tree_nodes` (for the reduction's BFS
    /// orientation).
    pub tree_edges: Vec<(usize, usize)>,
    /// True node-weight cost of the bought set `C(R(v))`.
    pub cost: f64,
}

struct GroupState {
    /// Input terminal indices merged into this group (excluding the free
    /// terminal).
    members: Vec<usize>,
    /// Graph nodes of the group.
    nodes: Vec<usize>,
    /// Aggregated reported utility `v_t` (Eq. (5)); `f64::INFINITY` until
    /// capped by real members.
    budget: f64,
    /// Whether the free (source) terminal was merged in.
    has_free: bool,
}

impl GroupState {
    fn counted(&self) -> bool {
        !self.members.is_empty()
    }
}

/// Run the NWST mechanism. `budgets[i]` is terminal `i`'s reported utility
/// (`f64::INFINITY` turns the run into the plain approximation algorithm);
/// `free_terminal` marks the index of a terminal that always pays 0 and is
/// excluded from ratio denominators (the wireless source, §2.2.3).
///
/// Terminal nodes must have zero weight (the standard NWST normalisation;
/// the paper's footnote 1 and the reduction both guarantee it).
pub fn nwst_mechanism(
    g: &NodeWeightedGraph,
    terminals: &[usize],
    budgets: &[f64],
    free_terminal: Option<usize>,
    config: &NwstConfig,
) -> NwstOutcome {
    let k = terminals.len();
    assert_eq!(budgets.len(), k);
    for &t in terminals {
        assert!(
            g.weight(t).abs() < EPS,
            "terminal nodes must have zero weight (normalise per footnote 1)"
        );
    }
    if let Some(f) = free_terminal {
        assert!(f < k);
    }
    let mut active: Vec<usize> = (0..k).collect();

    'restart: loop {
        if active.is_empty() {
            return NwstOutcome {
                receivers: vec![],
                shares: vec![0.0; k],
                tree_nodes: vec![],
                tree_edges: vec![],
                cost: 0.0,
            };
        }
        let mut shares = vec![0.0f64; k];
        let mut paid = vec![false; g.len()];
        let mut groups: Vec<GroupState> = active
            .iter()
            .map(|&idx| {
                paid[terminals[idx]] = true;
                let is_free = Some(idx) == free_terminal;
                GroupState {
                    members: if is_free { vec![] } else { vec![idx] },
                    nodes: vec![terminals[idx]],
                    budget: if is_free { f64::INFINITY } else { budgets[idx] },
                    has_free: is_free,
                }
            })
            .collect();

        loop {
            if groups.len() <= 1 {
                return finish(g, terminals, &active, shares, &paid);
            }
            // Pick the next component: a 3+ branch-spider while more than
            // two groups remain, the optimal connection for the final pair.
            // (If no 3+ spider exists — e.g. only source + 2 terminals with
            // the source uncounted — fall back to 2-group components.)
            let spider_groups: Vec<Group> = groups
                .iter()
                .enumerate()
                .map(|(i, gs)| Group {
                    id: i,
                    nodes: gs.nodes.clone(),
                    counted: gs.counted(),
                })
                .collect();
            let effective = |v: usize| if paid[v] { 0.0 } else { g.weight(v) };
            let component: SpiderCandidate = if groups.len() == 2 {
                cheapest_connection(g, &spider_groups[0], &spider_groups[1], &effective)
                    .expect("instance must connect its terminals")
            } else {
                find_min_ratio_spider(
                    g,
                    &spider_groups,
                    &effective,
                    config.min_spider_groups,
                    config.branch_legs,
                )
                .or_else(|| {
                    find_min_ratio_spider(g, &spider_groups, &effective, 2, config.branch_legs)
                })
                .expect("instance must connect its terminals")
            };

            // Payment check: every counted covered group must afford the
            // ratio (semantics per `config.aggregation`).
            let group_can_pay = |gs: &GroupState| -> bool {
                match config.aggregation {
                    BudgetAggregation::PaperEq5 => gs.budget >= component.ratio - EPS,
                    BudgetAggregation::TightMemberResiduals => {
                        let slice = component.ratio / gs.members.len() as f64;
                        gs.members
                            .iter()
                            .all(|&m| budgets[m] - shares[m] >= slice - EPS)
                    }
                }
            };
            let unaffordable: Vec<usize> = component
                .covered_groups
                .iter()
                .copied()
                .filter(|&gi| groups[gi].counted() && !group_can_pay(&groups[gi]))
                .collect();
            if unaffordable.is_empty() {
                // Accept: charge, merge, shrink.
                for &gi in &component.covered_groups {
                    let members = &groups[gi].members;
                    if members.is_empty() {
                        continue;
                    }
                    let slice = component.ratio / members.len() as f64;
                    for &m in members {
                        shares[m] += slice;
                    }
                }
                // Eq. (5): new aggregated utility. The residual of group t'
                // is v_{t'} − c_{t'}, where c_{t'} is the total charged to
                // its members so far (post-charge, per the worked example);
                // free groups are excluded from the min, and the multiplier
                // is the number of counted covered groups.
                let min_residual = component
                    .covered_groups
                    .iter()
                    .filter(|&&gi| groups[gi].counted())
                    .map(|&gi| {
                        let charged: f64 = groups[gi].members.iter().map(|&m| shares[m]).sum();
                        groups[gi].budget - charged
                    })
                    .fold(f64::INFINITY, f64::min);
                let new_budget = component.counted_covered as f64 * min_residual.max(0.0);
                let mut merged = GroupState {
                    members: vec![],
                    nodes: component.nodes.clone(),
                    budget: new_budget,
                    has_free: false,
                };
                for &v in &component.nodes {
                    paid[v] = true;
                }
                let mut to_remove: Vec<usize> = component.covered_groups.clone();
                to_remove.sort_unstable_by(|a, b| b.cmp(a));
                for gi in to_remove {
                    let gs = groups.swap_remove(gi);
                    merged.members.extend(gs.members);
                    merged.nodes.extend(gs.nodes);
                    merged.has_free |= gs.has_free;
                }
                if merged.has_free && merged.members.is_empty() {
                    // A group of free terminals only (no paying members)
                    // keeps an unbounded budget.
                    merged.budget = f64::INFINITY;
                }
                merged.members.sort_unstable();
                merged.nodes.sort_unstable();
                merged.nodes.dedup();
                groups.push(merged);
            } else {
                // Drop rule and restart. PaperEq5 follows the paper
                // (simultaneous drop of every below-threshold member);
                // the tightened variant drops only the single weakest
                // member per restart — simultaneous eviction is itself a
                // source of non-tight thresholds (a member can be
                // affordable in the world where only the weaker one left).
                let mut dropped: Vec<usize> = Vec::new();
                match config.aggregation {
                    BudgetAggregation::PaperEq5 => {
                        for &gi in &unaffordable {
                            let gs = &groups[gi];
                            let per_member = gs.budget / gs.members.len() as f64;
                            let mut x: Vec<usize> = gs
                                .members
                                .iter()
                                .copied()
                                .filter(|&m| budgets[m] - shares[m] <= per_member + EPS)
                                .collect();
                            if x.is_empty() {
                                // Defensive fallback: drop the weakest member.
                                if let Some(&weakest) = gs.members.iter().min_by(|&&a, &&b| {
                                    (budgets[a] - shares[a]).total_cmp(&(budgets[b] - shares[b]))
                                }) {
                                    x.push(weakest);
                                }
                            }
                            dropped.extend(x);
                        }
                    }
                    BudgetAggregation::TightMemberResiduals => {
                        let mut weakest: Option<(usize, f64)> = None;
                        for &gi in &unaffordable {
                            let gs = &groups[gi];
                            let slice = component.ratio / gs.members.len() as f64;
                            for &m in &gs.members {
                                let gap = budgets[m] - shares[m] - slice;
                                let better = match weakest {
                                    None => true,
                                    Some((wm, wg)) => gap < wg - EPS || (gap <= wg + EPS && m < wm),
                                };
                                if better {
                                    weakest = Some((m, gap));
                                }
                            }
                        }
                        dropped.extend(weakest.map(|(m, _)| m));
                    }
                }
                debug_assert!(!dropped.is_empty(), "restart must make progress");
                active.retain(|idx| !dropped.contains(idx));
                continue 'restart;
            }
        }
    }
}

/// Run the plain approximation algorithm `A_ST` (all budgets infinite).
pub fn nwst_approximate(
    g: &NodeWeightedGraph,
    terminals: &[usize],
    config: &NwstConfig,
) -> NwstOutcome {
    let budgets = vec![f64::INFINITY; terminals.len()];
    nwst_mechanism(g, terminals, &budgets, None, config)
}

fn finish(
    g: &NodeWeightedGraph,
    terminals: &[usize],
    active: &[usize],
    shares: Vec<f64>,
    paid: &[bool],
) -> NwstOutcome {
    let tree_nodes: Vec<usize> = (0..g.len()).filter(|&v| paid[v]).collect();
    // Spanning tree of the bought subgraph via BFS from the first active
    // terminal, restricted to bought nodes.
    let mut tree_edges = Vec::new();
    if let Some(&first) = active.first() {
        let root = terminals[first];
        let mut seen = vec![false; g.len()];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if paid[v] && !seen[v] {
                    seen[v] = true;
                    tree_edges.push((u, v));
                    queue.push_back(v);
                }
            }
        }
    }
    let cost = g.weight_of_set(&tree_nodes);
    let mut receivers = active.to_vec();
    receivers.sort_unstable();
    NwstOutcome {
        receivers,
        shares,
        tree_nodes,
        tree_edges,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_geom::approx_eq;

    /// Star: hub 0 (weight 2), terminals 1..=3 (weight 0) on the hub, and a
    /// decoy heavy hub 4 (weight 9).
    fn star() -> (NodeWeightedGraph, Vec<usize>) {
        let mut g = NodeWeightedGraph::new(vec![2.0, 0.0, 0.0, 0.0, 9.0]);
        for t in 1..=3 {
            g.add_edge(0, t);
            g.add_edge(4, t);
        }
        (g, vec![1, 2, 3])
    }

    #[test]
    fn approximation_buys_the_cheap_hub() {
        let (g, ts) = star();
        let out = nwst_approximate(&g, &ts, &NwstConfig::default());
        assert_eq!(out.receivers, vec![0, 1, 2]);
        assert!(approx_eq(out.cost, 2.0));
        assert!(out.tree_nodes.contains(&0));
        assert!(!out.tree_nodes.contains(&4));
        // Shares: ratio 2/3 each; revenue = cost.
        let revenue: f64 = out.shares.iter().sum();
        assert!(approx_eq(revenue, 2.0));
        for s in &out.shares {
            assert!(approx_eq(*s, 2.0 / 3.0));
        }
    }

    #[test]
    fn unaffordable_terminal_is_dropped_and_rest_served() {
        let (g, ts) = star();
        // Ratio for all three is 2/3; terminal 2 reports only 0.1.
        let out = nwst_mechanism(&g, &ts, &[1.0, 0.1, 1.0], None, &NwstConfig::default());
        assert_eq!(out.receivers, vec![0, 2]);
        assert_eq!(out.shares[1], 0.0);
        // After the drop the two remaining terminals connect through the
        // hub: cost 2, ratio 1 each, affordable at budget 1.
        assert!(approx_eq(out.shares[0], 1.0));
        assert!(approx_eq(out.shares[2], 1.0));
        assert!(approx_eq(out.cost, 2.0));
    }

    #[test]
    fn everyone_too_poor_yields_empty_outcome() {
        let (g, ts) = star();
        let out = nwst_mechanism(&g, &ts, &[0.01, 0.01, 0.01], None, &NwstConfig::default());
        assert!(out.receivers.is_empty());
        assert_eq!(out.cost, 0.0);
        assert!(out.shares.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn single_terminal_served_for_free() {
        let (g, _) = star();
        let out = nwst_mechanism(&g, &[2], &[0.5], None, &NwstConfig::default());
        assert_eq!(out.receivers, vec![0]);
        assert!(approx_eq(out.cost, 0.0));
    }

    #[test]
    fn free_terminal_pays_nothing_and_is_always_served() {
        let (g, ts) = star();
        // Terminal index 0 (node 1) is the free source.
        let out = nwst_mechanism(&g, &ts, &[0.0, 5.0, 5.0], Some(0), &NwstConfig::default());
        assert!(out.receivers.contains(&0));
        assert_eq!(out.shares[0], 0.0);
        // The other two split the hub cost: ratio 2/2 = 1 each.
        assert!(approx_eq(out.shares[1], 1.0));
        assert!(approx_eq(out.shares[2], 1.0));
    }

    #[test]
    fn revenue_covers_cost_on_acceptance() {
        // Path graph: t0 - a(3) - t1 - b(1) - t2 (terminals weight 0).
        let mut g = NodeWeightedGraph::new(vec![0.0, 3.0, 0.0, 1.0, 0.0]);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let out = nwst_approximate(&g, &[0, 2, 4], &NwstConfig::default());
        let revenue: f64 = out.shares.iter().sum();
        assert!(revenue + 1e-9 >= out.cost);
        assert_eq!(out.receivers, vec![0, 1, 2]);
        assert!(approx_eq(out.cost, 4.0));
    }

    #[test]
    fn klein_ravi_config_also_works() {
        let (g, ts) = star();
        let cfg = NwstConfig {
            min_spider_groups: 2,
            branch_legs: false,
            ..Default::default()
        };
        let out = nwst_approximate(&g, &ts, &cfg);
        assert_eq!(out.receivers, vec![0, 1, 2]);
        assert!(approx_eq(out.cost, 2.0));
    }

    #[test]
    fn shares_are_report_independent_for_receivers() {
        // Raising a receiver's report must not change its share
        // (the strategyproofness core, Theorem 2.3).
        let (g, ts) = star();
        let base = nwst_mechanism(&g, &ts, &[1.0, 1.0, 1.0], None, &NwstConfig::default());
        let raised = nwst_mechanism(&g, &ts, &[1.0, 7.0, 1.0], None, &NwstConfig::default());
        assert_eq!(base.receivers, raised.receivers);
        assert!(approx_eq(base.shares[1], raised.shares[1]));
    }
}
