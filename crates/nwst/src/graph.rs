//! Node-weighted graphs and node-weighted shortest paths.
//!
//! NWST (§2.2): given an undirected graph with non-negative *node* weights
//! and a set of terminals, find a minimum-weight connected subgraph
//! spanning the terminals (cost = sum of the weights of its nodes). The
//! spider algorithms need node-weighted shortest paths: the cost of a path
//! is the sum of the weights of its nodes, with configurable exclusions for
//! already-paid nodes (weight 0 after shrinking).

/// An undirected graph with node weights.
#[derive(Debug, Clone)]
pub struct NodeWeightedGraph {
    weights: Vec<f64>,
    adj: Vec<Vec<usize>>,
}

impl NodeWeightedGraph {
    /// Graph with the given node weights and no edges.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "node weights must be non-negative"
        );
        let n = weights.len();
        Self {
            weights,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of node `v`.
    pub fn weight(&self, v: usize) -> f64 {
        self.weights[v]
    }

    /// Add an undirected edge (idempotent).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "no self loops");
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Multi-source node-weighted Dijkstra. `dist[x]` is the minimum, over
    /// paths from any source to `x`, of the sum of `effective_weight` over
    /// the path nodes *excluding the source itself* (so `dist[source] = 0`
    /// and `dist[x]` includes `x`'s weight). `parent` allows path
    /// reconstruction.
    pub fn dijkstra_from_set(
        &self,
        sources: &[usize],
        effective_weight: &dyn Fn(usize) -> f64,
    ) -> (Vec<f64>, Vec<Option<usize>>) {
        let n = self.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut heap = wmcs_graph::IndexedMinHeap::new(n);
        for &s in sources {
            dist[s] = 0.0;
            heap.push_or_decrease(s, 0.0);
        }
        while let Some((u, du)) = heap.pop() {
            if du > dist[u] {
                continue;
            }
            for &v in &self.adj[u] {
                let nd = du + effective_weight(v);
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = Some(u);
                    heap.push_or_decrease(v, nd);
                }
            }
        }
        (dist, parent)
    }

    /// Reconstruct the path (source → … → `target`) from a `parent` array
    /// produced by [`Self::dijkstra_from_set`].
    pub fn path_from_parents(parent: &[Option<usize>], target: usize) -> Vec<usize> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Total weight of a node set (each node counted once).
    pub fn weight_of_set(&self, nodes: &[usize]) -> f64 {
        let mut seen = vec![false; self.len()];
        let mut total = 0.0;
        for &v in nodes {
            if !seen[v] {
                seen[v] = true;
                total += self.weights[v];
            }
        }
        total
    }

    /// True if `nodes` induces a connected subgraph containing every node
    /// of `must_contain`.
    pub fn is_connected_subgraph(&self, nodes: &[usize], must_contain: &[usize]) -> bool {
        if must_contain.is_empty() {
            return true;
        }
        let mut in_set = vec![false; self.len()];
        for &v in nodes {
            in_set[v] = true;
        }
        if must_contain.iter().any(|&t| !in_set[t]) {
            return false;
        }
        let start = must_contain[0];
        let mut seen = vec![false; self.len()];
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if in_set[v] && !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        must_contain.iter().all(|&t| seen[t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_geom::approx_eq;

    /// Path 0 — 1 — 2 — 3 with weights 0, 5, 1, 0, plus shortcut 0 — 3
    /// through heavy node 4 (weight 10).
    fn fixture() -> NodeWeightedGraph {
        let mut g = NodeWeightedGraph::new(vec![0.0, 5.0, 1.0, 0.0, 10.0]);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(0, 4);
        g.add_edge(4, 3);
        g
    }

    #[test]
    fn dijkstra_counts_node_weights() {
        let g = fixture();
        let (dist, parent) = g.dijkstra_from_set(&[0], &|v| g.weight(v));
        assert!(approx_eq(dist[0], 0.0));
        assert!(approx_eq(dist[1], 5.0));
        assert!(approx_eq(dist[2], 6.0));
        // 0→1→2→3 = 6 beats 0→4→3 = 10.
        assert!(approx_eq(dist[3], 6.0));
        assert_eq!(
            NodeWeightedGraph::path_from_parents(&parent, 3),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn effective_weight_overrides_paid_nodes() {
        let g = fixture();
        // Node 4 already paid → weight 0 → route through it.
        let eff = |v: usize| if v == 4 { 0.0 } else { g.weight(v) };
        let (dist, parent) = g.dijkstra_from_set(&[0], &eff);
        assert!(approx_eq(dist[3], 0.0));
        assert_eq!(
            NodeWeightedGraph::path_from_parents(&parent, 3),
            vec![0, 4, 3]
        );
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = fixture();
        let (dist, _) = g.dijkstra_from_set(&[0, 3], &|v| g.weight(v));
        assert!(approx_eq(dist[2], 1.0)); // from 3
        assert!(approx_eq(dist[1], 5.0)); // from 0
    }

    #[test]
    fn weight_of_set_deduplicates() {
        let g = fixture();
        assert!(approx_eq(g.weight_of_set(&[1, 2, 1]), 6.0));
        assert_eq!(g.weight_of_set(&[]), 0.0);
    }

    #[test]
    fn connectivity_checks() {
        let g = fixture();
        assert!(g.is_connected_subgraph(&[0, 1, 2, 3], &[0, 3]));
        assert!(!g.is_connected_subgraph(&[0, 3], &[0, 3])); // 0–3 not adjacent
        assert!(g.is_connected_subgraph(&[0, 4, 3], &[0, 3]));
        assert!(!g.is_connected_subgraph(&[0, 1], &[0, 3])); // 3 missing
        assert!(g.is_connected_subgraph(&[], &[]));
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut g = NodeWeightedGraph::new(vec![1.0, 1.0]);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = NodeWeightedGraph::new(vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_rejected() {
        let mut g = NodeWeightedGraph::new(vec![1.0]);
        g.add_edge(0, 0);
    }
}
