//! Spiders, branch-spiders and min-ratio oracles (§2.2, after Guha–Khuller
//! \[28\] and Klein–Ravi \[33\]).
//!
//! A *spider* is a tree with at most one node of degree > 2 (the center);
//! a *branch-spider* merges branches (trees with ≤ 3 leaves, one being the
//! root) at a center, so each leg reaches one **or two** terminals. The
//! greedy NWST algorithm repeatedly buys the spider with the smallest
//! `ratio = cost / #terminals` and shrinks it.
//!
//! The oracle here searches every center; legs are node-weighted shortest
//! paths to terminal groups (Klein–Ravi legs) plus, when `branch_legs` is
//! enabled, two-group legs routed through the best meeting node
//! (Guha–Khuller-style branches). Leg assembly is greedy by marginal
//! cost-per-group; overlapping legs may double-count interior nodes, which
//! only *over-estimates* ratios (the bought node set is deduplicated, so
//! accounting stays sound). DESIGN.md §3 records this as the documented
//! engineering rendition of the 1.5 ln k oracle; realised ratios are
//! measured in experiment T2.

use crate::graph::NodeWeightedGraph;
use wmcs_geom::EPS;

/// A (possibly shrunk) terminal group the oracle can target.
#[derive(Debug, Clone)]
pub struct Group {
    /// Stable identifier (index in the driver's group list).
    pub id: usize,
    /// Graph nodes belonging to the group (all effective-weight 0).
    pub nodes: Vec<usize>,
    /// Whether the group counts toward spider ratios (the wireless
    /// reduction's source terminal does not — §2.2.3).
    pub counted: bool,
}

/// A candidate component: a spider / branch-spider / connecting path.
#[derive(Debug, Clone)]
pub struct SpiderCandidate {
    /// The center node (for paths: one endpoint).
    pub center: usize,
    /// Ids of the groups the component touches.
    pub covered_groups: Vec<usize>,
    /// How many of those are counted.
    pub counted_covered: usize,
    /// All nodes of the component (deduplicated, including the center and
    /// the group contact nodes).
    pub nodes: Vec<usize>,
    /// Effective cost charged for the component (≥ true weight of `nodes`).
    pub cost: f64,
    /// `cost / counted_covered`.
    pub ratio: f64,
}

/// One leg candidate during assembly.
struct Leg {
    cost: f64,
    groups: Vec<usize>, // indices into `groups`
    counted: usize,
    nodes: Vec<usize>,
}

/// Find the minimum-ratio spider covering at least `min_total_groups`
/// groups (and ≥ 1 counted group). Returns `None` when no such component
/// exists (e.g. fewer groups remain than `min_total_groups`).
pub fn find_min_ratio_spider(
    g: &NodeWeightedGraph,
    groups: &[Group],
    effective: &dyn Fn(usize) -> f64,
    min_total_groups: usize,
    branch_legs: bool,
) -> Option<SpiderCandidate> {
    if groups.len() < min_total_groups {
        return None;
    }
    let n = g.len();
    // Per-group node-weighted distances (dist includes the target's own
    // effective weight; 0 at group nodes).
    let per_group: Vec<(Vec<f64>, Vec<Option<usize>>)> = groups
        .iter()
        .map(|grp| g.dijkstra_from_set(&grp.nodes, effective))
        .collect();

    // Group owning each node (centers placed on a group's node cover that
    // group for free).
    let mut group_of_node: Vec<Option<usize>> = vec![None; n];
    for (gi, grp) in groups.iter().enumerate() {
        for &v in &grp.nodes {
            group_of_node[v] = Some(gi);
        }
    }

    let mut best: Option<SpiderCandidate> = None;
    for center in 0..n {
        // Distances *from* the center (excluding its weight at the start).
        let (dist_v, parent_v) = if branch_legs {
            let (d, p) = g.dijkstra_from_set(&[center], effective);
            (Some(d), Some(p))
        } else {
            (None, None)
        };
        let mut legs: Vec<Leg> = Vec::new();
        // Single-group legs.
        for (gi, grp) in groups.iter().enumerate() {
            let d = per_group[gi].0[center];
            if !d.is_finite() {
                continue;
            }
            let nodes = NodeWeightedGraph::path_from_parents(&per_group[gi].1, center);
            legs.push(Leg {
                cost: d - effective(center),
                groups: vec![gi],
                counted: usize::from(grp.counted),
                nodes,
            });
        }
        // Two-group branch legs through the best meeting node.
        if let (Some(dist_v), Some(parent_v)) = (&dist_v, &parent_v) {
            for gi in 0..groups.len() {
                for gj in (gi + 1)..groups.len() {
                    let mut best_meet: Option<(f64, usize)> = None;
                    for m in 0..n {
                        let (a, b, c) = (per_group[gi].0[m], per_group[gj].0[m], dist_v[m]);
                        if !(a.is_finite() && b.is_finite() && c.is_finite()) {
                            continue;
                        }
                        // Branch cost excluding the center: v→m path (incl.
                        // m) + both group paths (excl. m's double count).
                        let w = c + (a - effective(m)) + (b - effective(m));
                        if best_meet.is_none_or(|(bw, _)| w < bw - EPS) {
                            best_meet = Some((w, m));
                        }
                    }
                    if let Some((w, m)) = best_meet {
                        let mut nodes = NodeWeightedGraph::path_from_parents(parent_v, m);
                        nodes.extend(NodeWeightedGraph::path_from_parents(&per_group[gi].1, m));
                        nodes.extend(NodeWeightedGraph::path_from_parents(&per_group[gj].1, m));
                        legs.push(Leg {
                            cost: w,
                            groups: vec![gi, gj],
                            counted: usize::from(groups[gi].counted)
                                + usize::from(groups[gj].counted),
                            nodes,
                        });
                    }
                }
            }
        }
        // Greedy assembly by marginal cost per counted group (legs with no
        // counted groups sorted by plain cost, used only to satisfy the
        // structural minimum).
        legs.sort_by(|a, b| {
            let ka = if a.counted > 0 {
                a.cost / a.counted as f64
            } else {
                f64::INFINITY
            };
            let kb = if b.counted > 0 {
                b.cost / b.counted as f64
            } else {
                f64::INFINITY
            };
            ka.total_cmp(&kb).then(a.cost.total_cmp(&b.cost))
        });
        let mut covered = vec![false; groups.len()];
        let mut cum_cost = effective(center);
        let mut cum_counted = 0usize;
        let mut cum_groups: Vec<usize> = Vec::new();
        let mut cum_nodes: Vec<usize> = vec![center];
        if let Some(own) = group_of_node[center] {
            covered[own] = true;
            cum_counted += usize::from(groups[own].counted);
            cum_groups.push(groups[own].id);
        }
        for leg in &legs {
            if leg.groups.iter().any(|&gi| covered[gi]) {
                continue;
            }
            for &gi in &leg.groups {
                covered[gi] = true;
            }
            cum_cost += leg.cost;
            cum_counted += leg.counted;
            cum_groups.extend(leg.groups.iter().map(|&gi| groups[gi].id));
            cum_nodes.extend_from_slice(&leg.nodes);
            if cum_groups.len() >= min_total_groups && cum_counted >= 1 {
                let ratio = cum_cost / cum_counted as f64;
                let better = match &best {
                    None => true,
                    Some(b) => ratio < b.ratio - EPS,
                };
                if better {
                    let mut nodes = cum_nodes.clone();
                    nodes.sort_unstable();
                    nodes.dedup();
                    let mut covered_groups = cum_groups.clone();
                    covered_groups.sort_unstable();
                    best = Some(SpiderCandidate {
                        center,
                        covered_groups,
                        counted_covered: cum_counted,
                        nodes,
                        cost: cum_cost,
                        ratio,
                    });
                }
            }
        }
    }
    best
}

/// Cheapest node-weighted connection between two groups (the "connect them
/// optimally" step once two terminals remain). Returns the component as a
/// pseudo-spider whose ratio counts the counted groups among the two.
pub fn cheapest_connection(
    g: &NodeWeightedGraph,
    a: &Group,
    b: &Group,
    effective: &dyn Fn(usize) -> f64,
) -> Option<SpiderCandidate> {
    let (dist, parent) = g.dijkstra_from_set(&a.nodes, effective);
    let (&target, &d) = b
        .nodes
        .iter()
        .map(|t| (t, &dist[*t]))
        .min_by(|x, y| x.1.total_cmp(y.1))?;
    if !d.is_finite() {
        return None;
    }
    let mut nodes = NodeWeightedGraph::path_from_parents(&parent, target);
    nodes.sort_unstable();
    nodes.dedup();
    let counted = usize::from(a.counted) + usize::from(b.counted);
    if counted == 0 {
        return None;
    }
    Some(SpiderCandidate {
        center: target,
        covered_groups: {
            let mut v = vec![a.id, b.id];
            v.sort_unstable();
            v
        },
        counted_covered: counted,
        nodes,
        cost: d,
        ratio: d / counted as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_geom::approx_eq;

    /// Star: center 0 (weight 2) adjacent to terminals 1, 2, 3 (weight 0);
    /// an expensive alternative center 4 (weight 9) adjacent to the same.
    fn star() -> (NodeWeightedGraph, Vec<Group>) {
        let mut g = NodeWeightedGraph::new(vec![2.0, 0.0, 0.0, 0.0, 9.0]);
        for t in 1..=3 {
            g.add_edge(0, t);
            g.add_edge(4, t);
        }
        let groups = (1..=3)
            .map(|t| Group {
                id: t - 1,
                nodes: vec![t],
                counted: true,
            })
            .collect();
        (g, groups)
    }

    fn eff<'a>(g: &'a NodeWeightedGraph, terminals: &'a [usize]) -> impl Fn(usize) -> f64 + 'a {
        move |v| {
            if terminals.contains(&v) {
                0.0
            } else {
                g.weight(v)
            }
        }
    }

    #[test]
    fn star_center_is_min_ratio() {
        let (g, groups) = star();
        let e = eff(&g, &[1, 2, 3]);
        let sp = find_min_ratio_spider(&g, &groups, &e, 3, false).expect("spider exists");
        assert_eq!(sp.center, 0);
        assert_eq!(sp.counted_covered, 3);
        assert!(approx_eq(sp.ratio, 2.0 / 3.0));
        assert_eq!(sp.covered_groups, vec![0, 1, 2]);
        assert!(sp.nodes.contains(&0) && !sp.nodes.contains(&4));
    }

    #[test]
    fn min_total_groups_is_respected() {
        let (g, groups) = star();
        let e = eff(&g, &[1, 2, 3]);
        assert!(find_min_ratio_spider(&g, &groups[..2], &e, 3, false).is_none());
        let two = find_min_ratio_spider(&g, &groups[..2], &e, 2, false).expect("2-spider");
        assert!(approx_eq(two.ratio, 1.0));
    }

    #[test]
    fn free_group_not_counted_in_ratio() {
        let (g, mut groups) = star();
        groups[0].counted = false; // say terminal 1 is the free source
        let e = eff(&g, &[1, 2, 3]);
        let sp = find_min_ratio_spider(&g, &groups, &e, 3, false).expect("spider");
        assert_eq!(sp.counted_covered, 2);
        assert!(approx_eq(sp.ratio, 1.0));
    }

    #[test]
    fn branch_legs_route_through_meeting_nodes() {
        // Path terminals: t1 - m - t2, with center v adjacent to m only.
        //   v(w=1) — m(w=2) — {t1, t2} and a third terminal t3 — v.
        let mut g = NodeWeightedGraph::new(vec![1.0, 2.0, 0.0, 0.0, 0.0]);
        g.add_edge(0, 1); // v - m
        g.add_edge(1, 2); // m - t1
        g.add_edge(1, 3); // m - t2
        g.add_edge(0, 4); // v - t3
        let groups: Vec<Group> = [2usize, 3, 4]
            .iter()
            .enumerate()
            .map(|(i, &t)| Group {
                id: i,
                nodes: vec![t],
                counted: true,
            })
            .collect();
        let e = eff(&g, &[2, 3, 4]);
        let sp = find_min_ratio_spider(&g, &groups, &e, 3, true).expect("spider");
        // Best: center v (1) + branch through m (2) covering t1, t2 + leg to
        // t3 (0): total 3, ratio 1. Without branch legs the center must be m
        // with ratio (2 + 1)/3 = 1 too — but via v it also works; just check
        // the ratio is 1 and all groups are covered.
        assert!(approx_eq(sp.ratio, 1.0));
        assert_eq!(sp.covered_groups, vec![0, 1, 2]);
    }

    #[test]
    fn connection_finds_cheapest_path() {
        let mut g = NodeWeightedGraph::new(vec![0.0, 5.0, 1.0, 0.0]);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        let a = Group {
            id: 0,
            nodes: vec![0],
            counted: true,
        };
        let b = Group {
            id: 1,
            nodes: vec![3],
            counted: true,
        };
        let e = eff(&g, &[0, 3]);
        let c = cheapest_connection(&g, &a, &b, &e).expect("connected");
        assert!(approx_eq(c.cost, 1.0)); // via node 2
        assert!(approx_eq(c.ratio, 0.5));
        assert!(c.nodes.contains(&2) && !c.nodes.contains(&1));
    }

    #[test]
    fn connection_on_disconnected_graph_is_none() {
        let g = NodeWeightedGraph::new(vec![0.0, 0.0]);
        let a = Group {
            id: 0,
            nodes: vec![0],
            counted: true,
        };
        let b = Group {
            id: 1,
            nodes: vec![1],
            counted: true,
        };
        let e = |_: usize| 0.0;
        assert!(cheapest_connection(&g, &a, &b, &e).is_none());
    }
}
