//! The universal-tree marginal-cost (MC/VCG) mechanism (§2.1): efficient
//! and strategyproof (not group strategyproof).
//!
//! Receiver selection maximises net worth via the `O(n)` bottom-up tree DP
//! ([`wmcs_wireless::incremental::NetWorthOracle`], the index-set engine
//! shared with the Shapley drop loop — no 64-player cap); payments are
//! the VCG externalities `c_i = u_i − (NW(u) − NW(u_{-i}))`, equal under
//! submodularity to the paper's form (3). The oracle answers each
//! `NW(u_{-i})` query in `O(depth)` from one base DP, so a full run is
//! `O(n + Σ depth)` instead of one `O(n)` DP per receiver.

use wmcs_game::{Mechanism, MechanismOutcome};
use wmcs_wireless::{vcg_outcome, McSession, NetWorthOracle, UniversalTree};

/// The MC mechanism over a universal broadcast tree.
#[derive(Debug, Clone)]
pub struct UniversalMcMechanism {
    tree: UniversalTree,
}

impl UniversalMcMechanism {
    /// Wrap a universal tree.
    pub fn new(tree: UniversalTree) -> Self {
        Self { tree }
    }

    /// The universal tree in use.
    pub fn universal_tree(&self) -> &UniversalTree {
        &self.tree
    }

    /// Net worth achieved on a reported profile (`NW(u)`).
    pub fn net_worth(&self, reported: &[f64]) -> f64 {
        self.tree.net_worth(&self.utilities_by_station(reported))
    }

    /// Start a live churn session over this mechanism's universal tree:
    /// the warm-state engine that re-prices the VCG outcome across
    /// `Join`/`Leave`/`Rebid` batches, byte-identical to re-running
    /// [`Mechanism::run`] on the current bid vector after every batch
    /// (both evaluate [`wmcs_wireless::vcg_outcome`]).
    pub fn session(&self) -> McSession {
        McSession::new(&self.tree)
    }

    fn utilities_by_station(&self, reported: &[f64]) -> Vec<f64> {
        let net = self.tree.network();
        let mut u = vec![0.0; net.n_stations()];
        for (p, &v) in reported.iter().enumerate() {
            u[net.station_of_player(p)] = v;
        }
        u
    }
}

impl Mechanism for UniversalMcMechanism {
    fn n_players(&self) -> usize {
        self.tree.network().n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        assert_eq!(reported.len(), self.n_players());
        let u = self.utilities_by_station(reported);
        // The same evaluation path a live McSession's reprice uses, so
        // one-shot runs and warm sessions cannot diverge.
        vcg_outcome(&self.tree, &NetWorthOracle::new(&self.tree, &u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{
        find_unilateral_deviation, verify_no_positive_transfers, verify_voluntary_participation,
    };
    use wmcs_geom::{Point, PowerModel};
    use wmcs_wireless::{SubstrateBuilder, TreeKind, WirelessNetwork};

    fn mechanism(seed: u64, n: usize) -> UniversalMcMechanism {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        UniversalMcMechanism::new(
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Spt)
                .build_universal(),
        )
    }

    #[test]
    fn efficiency_dominates_moulin_shenker_outcomes() {
        // The MC mechanism's net worth is maximal by construction: compare
        // against the welfare of a few arbitrary receiver sets.
        let m = mechanism(1, 7);
        let mut rng = SmallRng::seed_from_u64(77);
        let u: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..10.0)).collect();
        let nw = m.net_worth(&u);
        let net = m.universal_tree().network();
        for mask in 0u64..(1 << 6) {
            let stations: Vec<usize> = (0..6)
                .filter(|&p| mask & (1 << p) != 0)
                .map(|p| net.station_of_player(p))
                .collect();
            let util: f64 = (0..6).filter(|&p| mask & (1 << p) != 0).map(|p| u[p]).sum();
            let w = util - m.universal_tree().multicast_cost(&stations);
            assert!(nw >= w - 1e-9, "mask {mask:b} beats the DP");
        }
    }

    #[test]
    fn never_collects_more_than_cost() {
        // MC runs deficits, not surpluses (§1.1).
        for seed in 0..6 {
            let m = mechanism(seed, 6);
            let mut rng = SmallRng::seed_from_u64(seed + 50);
            let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..20.0)).collect();
            let out = m.run(&u);
            assert!(out.revenue() <= out.served_cost + 1e-9);
        }
    }

    #[test]
    fn strategyproof_empirically() {
        for seed in 0..6 {
            let m = mechanism(seed, 6);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x11);
            let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..15.0)).collect();
            assert!(
                find_unilateral_deviation(&m, &u, 1e-7).is_none(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn axioms_npt_vp() {
        let m = mechanism(9, 6);
        for u in [vec![5.0; 5], vec![0.0, 9.0, 0.0, 9.0, 0.0]] {
            let out = m.run(&u);
            assert!(verify_no_positive_transfers(&out));
            assert!(verify_voluntary_participation(&out, &u));
        }
    }

    #[test]
    fn session_with_everyone_joined_matches_the_one_shot_run() {
        for seed in 20..24 {
            let m = mechanism(seed, 8);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x31c);
            let u: Vec<f64> = (0..7).map(|_| rng.gen_range(0.0..12.0)).collect();
            let batch: Vec<wmcs_wireless::ChurnEvent> = u
                .iter()
                .enumerate()
                .map(|(player, &utility)| wmcs_wireless::ChurnEvent::Join { player, utility })
                .collect();
            let mut session = m.session();
            let live = session.apply_batch(&batch);
            let one_shot = m.run(&u);
            assert_eq!(live.receivers, one_shot.receivers, "seed {seed}");
            assert_eq!(live.shares, one_shot.shares, "seed {seed}");
            assert_eq!(live.served_cost, one_shot.served_cost, "seed {seed}");
        }
    }

    #[test]
    fn free_riders_pay_zero() {
        // A player whose removal does not change the efficient set's cost
        // pays 0 (its externality is its own utility contribution).
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(2.0, 0.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let m = UniversalMcMechanism::new(
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Spt)
                .build_universal(),
        );
        // Player 1 (station 2) drives the cost; player 0 (station 1) rides
        // along the chain for free.
        let out = m.run(&[0.5, 100.0]);
        assert!(out.is_receiver(0));
        assert!(out.shares[0] < 1e-9);
        assert!(out.shares[1] > 0.0);
    }
}
