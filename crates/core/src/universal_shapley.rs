//! The universal-tree Shapley mechanism (§2.1): budget-balanced and group
//! strategyproof.
//!
//! Lemma 2.1 makes the universal-tree cost function non-decreasing and
//! submodular; the Shapley value is then a cross-monotonic method, and the
//! Moulin–Shenker mechanism `M(Shapley)` is BB, group strategyproof and
//! meets NPT, VP, CS \[37, 38\]. The run delegates to the incremental
//! engine ([`wmcs_wireless::incremental`]) through the shared index-set
//! drop-loop driver (`wmcs_game::run_drop_loop`): subtree receiver
//! counts and active-children lists are maintained across rounds, so a
//! full run costs `O(rounds · n + total dropped path length)` instead of
//! the naive `O(n³)` — there is no 64-player cap, and n ≈ 4096 instances
//! run routinely (experiment T10).

use wmcs_game::{Mechanism, MechanismOutcome};
use wmcs_wireless::{incremental, PowerAssignment, ShapleySession, UniversalTree};

/// `M(Shapley)` over a universal broadcast tree.
#[derive(Debug, Clone)]
pub struct UniversalShapleyMechanism {
    tree: UniversalTree,
}

impl UniversalShapleyMechanism {
    /// Wrap a universal tree.
    pub fn new(tree: UniversalTree) -> Self {
        Self { tree }
    }

    /// The universal tree in use.
    pub fn universal_tree(&self) -> &UniversalTree {
        &self.tree
    }

    /// Start a live churn session over this mechanism's universal tree:
    /// the warm-state engine that re-runs the Moulin–Shenker drop loop
    /// from the surviving receiver set across `Join`/`Leave`/`Rebid`
    /// batches, byte-identical to a cold
    /// [`wmcs_wireless::shapley_drop_run_from`] on the current receiver
    /// set after every batch.
    pub fn session(&self) -> ShapleySession {
        ShapleySession::new(&self.tree)
    }

    /// The power assignment that serves the given outcome's receivers.
    pub fn power_assignment(&self, outcome: &MechanismOutcome) -> PowerAssignment {
        let stations: Vec<usize> = outcome
            .receivers
            .iter()
            .map(|&p| self.tree.network().station_of_player(p))
            .collect();
        self.tree.power_assignment(&stations)
    }
}

impl Mechanism for UniversalShapleyMechanism {
    fn n_players(&self) -> usize {
        self.tree.network().n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        incremental::shapley_drop_run(&self.tree, reported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{
        find_group_deviation, find_unilateral_deviation, verify_budget_balance,
        verify_consumer_sovereignty, verify_no_positive_transfers, verify_voluntary_participation,
    };
    use wmcs_geom::{approx_eq, Point, PowerModel};
    use wmcs_wireless::{SubstrateBuilder, TreeKind, WirelessNetwork};

    fn mechanism(seed: u64, n: usize) -> UniversalShapleyMechanism {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        UniversalShapleyMechanism::new(
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Spt)
                .build_universal(),
        )
    }

    #[test]
    fn rich_profile_is_exactly_budget_balanced() {
        let m = mechanism(1, 7);
        let u = vec![100.0; 6];
        let out = m.run(&u);
        assert_eq!(out.receivers.len(), 6);
        assert!(approx_eq(out.revenue(), out.served_cost));
        assert!(verify_budget_balance(&out, 1.0, out.served_cost));
        // The assignment actually reaches everyone.
        let pa = m.power_assignment(&out);
        let stations: Vec<usize> = (1..7).collect();
        assert!(pa.multicasts_to(m.universal_tree().network(), &stations));
    }

    #[test]
    fn axioms_hold_across_profiles() {
        let m = mechanism(2, 6);
        for u in [
            vec![10.0, 0.1, 5.0, 0.0, 2.0],
            vec![0.0; 5],
            vec![3.0, 3.0, 3.0, 3.0, 3.0],
        ] {
            let out = m.run(&u);
            assert!(verify_no_positive_transfers(&out));
            assert!(verify_voluntary_participation(&out, &u));
            assert!(approx_eq(out.revenue(), out.served_cost));
        }
        assert!(verify_consumer_sovereignty(&m, &[1.0; 5], 1e9));
    }

    #[test]
    fn strategyproof_and_group_strategyproof_empirically() {
        for seed in 3..7 {
            let m = mechanism(seed, 6);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xaa);
            let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..30.0)).collect();
            assert!(
                find_unilateral_deviation(&m, &u, 1e-7).is_none(),
                "seed {seed}: unilateral deviation found"
            );
            assert!(
                find_group_deviation(&m, &u, 2, 1e-7).is_none(),
                "seed {seed}: group deviation found"
            );
        }
    }

    #[test]
    fn session_with_everyone_joined_matches_the_one_shot_run() {
        // A session whose only batch joins every player with the same
        // bids is exactly the one-shot mechanism: same receivers, same
        // shares, same served cost, byte for byte.
        for seed in 10..14 {
            let m = mechanism(seed, 9);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e5);
            let u: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..10.0)).collect();
            let batch: Vec<wmcs_wireless::ChurnEvent> = u
                .iter()
                .enumerate()
                .map(|(player, &utility)| wmcs_wireless::ChurnEvent::Join { player, utility })
                .collect();
            let mut session = m.session();
            let live = session.apply_batch(&batch);
            let one_shot = m.run(&u);
            assert_eq!(live.receivers, one_shot.receivers, "seed {seed}");
            assert_eq!(live.shares, one_shot.shares, "seed {seed}");
            assert_eq!(live.served_cost, one_shot.served_cost, "seed {seed}");
        }
    }

    #[test]
    fn dropped_player_prices_recompute_upward_only() {
        // Cross-monotonicity in action: when somebody drops out, the
        // remaining receivers' shares can only rise.
        let m = mechanism(5, 7);
        let rich = m.run(&[1e6; 6]);
        let mut poor_profile = vec![1e6; 6];
        poor_profile[2] = 0.0;
        let poorer = m.run(&poor_profile);
        for &p in &poorer.receivers {
            assert!(poorer.shares[p] + 1e-9 >= rich.shares[p]);
        }
    }
}
