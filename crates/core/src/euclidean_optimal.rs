//! Optimal mechanisms for Euclidean networks with `α = 1` or `d = 1`
//! (§3.1, Theorem 3.2): Shapley → optimally budget balanced (1-BB) and
//! group strategyproof; MC → efficient and strategyproof.
//!
//! The `α = 1` mechanisms run on the true optimal cost function (single
//! source emission, Lemma 3.1 first case — verified against exact MEMT).
//! The `d = 1` mechanisms run on the **chain-form** cost function; see
//! `wmcs-wireless::euclidean::line` for the documented deviation of
//! Lemma 3.1's second case discovered during reproduction.

use wmcs_game::{moulin_shenker, CachedCost, Mechanism, MechanismOutcome, ShapleyMethod};
use wmcs_geom::EPS;
use wmcs_wireless::{AlphaOneSolver, LineCost, LineSolver};

/// `M(Shapley)` for `α = 1` networks, using the closed-form airport-game
/// shares.
#[derive(Debug, Clone)]
pub struct AlphaOneShapleyMechanism {
    solver: AlphaOneSolver,
}

impl AlphaOneShapleyMechanism {
    /// Wrap an `α = 1` solver.
    pub fn new(solver: AlphaOneSolver) -> Self {
        Self { solver }
    }

    /// Access the solver.
    pub fn solver(&self) -> &AlphaOneSolver {
        &self.solver
    }
}

impl Mechanism for AlphaOneShapleyMechanism {
    fn n_players(&self) -> usize {
        self.solver.network().n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        let net = self.solver.network();
        let n = self.n_players();
        assert_eq!(reported.len(), n);
        let mut in_set = vec![true; n];
        loop {
            let stations: Vec<usize> = (0..n)
                .filter(|&p| in_set[p])
                .map(|p| net.station_of_player(p))
                .collect();
            let by_station = self.solver.shapley_shares(&stations);
            let mut dropped = false;
            for p in 0..n {
                if in_set[p] && reported[p] < by_station[net.station_of_player(p)] - EPS {
                    in_set[p] = false;
                    dropped = true;
                }
            }
            if !dropped {
                let receivers: Vec<usize> = (0..n).filter(|&p| in_set[p]).collect();
                let mut shares = vec![0.0; n];
                for &p in &receivers {
                    shares[p] = by_station[net.station_of_player(p)];
                }
                let served_cost = self.solver.optimal_cost(&stations);
                return MechanismOutcome {
                    receivers,
                    shares,
                    served_cost,
                };
            }
        }
    }
}

/// The MC (VCG) mechanism for `α = 1` networks.
#[derive(Debug, Clone)]
pub struct AlphaOneMcMechanism {
    solver: AlphaOneSolver,
}

impl AlphaOneMcMechanism {
    /// Wrap an `α = 1` solver.
    pub fn new(solver: AlphaOneSolver) -> Self {
        Self { solver }
    }

    fn net_worth(&self, u_stations: &[f64]) -> f64 {
        self.solver.largest_efficient_set(u_stations).1
    }
}

impl Mechanism for AlphaOneMcMechanism {
    fn n_players(&self) -> usize {
        self.solver.network().n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        let net = self.solver.network();
        let n = self.n_players();
        let mut u = vec![0.0; net.n_stations()];
        for p in 0..n {
            u[net.station_of_player(p)] = reported[p];
        }
        let (stations, nw) = self.solver.largest_efficient_set(&u);
        let receivers: Vec<usize> = stations
            .iter()
            .filter_map(|&x| net.player_of_station(x))
            .collect();
        let mut shares = vec![0.0; n];
        for &p in &receivers {
            let mut u_minus = u.clone();
            u_minus[net.station_of_player(p)] = 0.0;
            shares[p] = (reported[p] - (nw - self.net_worth(&u_minus))).max(0.0);
        }
        let served_cost = self.solver.optimal_cost(&stations);
        MechanismOutcome {
            receivers,
            shares,
            served_cost,
        }
    }
}

/// `M(Shapley)` for line networks over the chain-form cost function. Uses
/// the exact subset-formula Shapley value (cached); intended for the
/// `n ≤ ~16` instances the theory is validated on.
pub struct LineShapleyMechanism {
    cost: CachedCost<LineCost>,
}

impl LineShapleyMechanism {
    /// Wrap a line solver.
    pub fn new(solver: LineSolver) -> Self {
        Self {
            cost: CachedCost::new(LineCost::new(solver)),
        }
    }
}

impl Mechanism for LineShapleyMechanism {
    fn n_players(&self) -> usize {
        wmcs_game::CostFunction::n_players(&self.cost)
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        let method = ShapleyMethod::new(&self.cost);
        moulin_shenker(&method, reported)
    }
}

/// The MC (VCG) mechanism for line networks (chain-form cost).
#[derive(Debug, Clone)]
pub struct LineMcMechanism {
    solver: LineSolver,
}

impl LineMcMechanism {
    /// Wrap a line solver.
    pub fn new(solver: LineSolver) -> Self {
        Self { solver }
    }
}

impl Mechanism for LineMcMechanism {
    fn n_players(&self) -> usize {
        self.solver.network().n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        let net = self.solver.network();
        let n = self.n_players();
        let mut u = vec![0.0; net.n_stations()];
        for p in 0..n {
            u[net.station_of_player(p)] = reported[p];
        }
        let (stations, nw) = self.solver.largest_efficient_set(&u);
        let receivers: Vec<usize> = stations
            .iter()
            .filter_map(|&x| net.player_of_station(x))
            .collect();
        let mut shares = vec![0.0; n];
        for &p in &receivers {
            let mut u_minus = u.clone();
            u_minus[net.station_of_player(p)] = 0.0;
            let nw_minus = self.solver.largest_efficient_set(&u_minus).1;
            shares[p] = (reported[p] - (nw - nw_minus)).max(0.0);
        }
        let served_cost = self.solver.chain_cost(&stations);
        MechanismOutcome {
            receivers,
            shares,
            served_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{
        find_group_deviation, find_unilateral_deviation, verify_budget_balance,
        verify_no_positive_transfers, verify_voluntary_participation,
    };
    use wmcs_geom::{approx_eq, Point, PowerModel};
    use wmcs_wireless::WirelessNetwork;

    fn alpha_one(seed: u64, n: usize) -> AlphaOneSolver {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)))
            .collect();
        AlphaOneSolver::new(&WirelessNetwork::euclidean(pts, PowerModel::linear(), 0))
    }

    fn line(seed: u64, n: usize) -> LineSolver {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
        xs.sort_by(f64::total_cmp);
        let pts: Vec<Point> = xs.into_iter().map(Point::on_line).collect();
        LineSolver::new(&WirelessNetwork::euclidean(
            pts,
            PowerModel::free_space(),
            n / 2,
        ))
    }

    #[test]
    fn alpha_one_shapley_is_1bb_against_true_optimum() {
        for seed in 0..6 {
            let m = AlphaOneShapleyMechanism::new(alpha_one(seed, 7));
            let out = m.run(&[1e5; 6]);
            let stations: Vec<usize> = (1..7).collect();
            let opt = m.solver().optimal_cost(&stations);
            assert!(approx_eq(out.revenue(), opt), "seed {seed}");
            assert!(verify_budget_balance(&out, 1.0, opt));
        }
    }

    #[test]
    fn alpha_one_shapley_group_strategyproof() {
        for seed in 0..4 {
            let m = AlphaOneShapleyMechanism::new(alpha_one(seed, 6));
            let mut rng = SmallRng::seed_from_u64(seed + 7);
            let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..12.0)).collect();
            assert!(find_unilateral_deviation(&m, &u, 1e-7).is_none());
            assert!(find_group_deviation(&m, &u, 2, 1e-7).is_none());
        }
    }

    #[test]
    fn alpha_one_mc_is_efficient_and_sp() {
        for seed in 0..4 {
            let m = AlphaOneMcMechanism::new(alpha_one(seed, 6));
            let mut rng = SmallRng::seed_from_u64(seed + 17);
            let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..12.0)).collect();
            let out = m.run(&u);
            assert!(verify_no_positive_transfers(&out));
            assert!(verify_voluntary_participation(&out, &u));
            assert!(find_unilateral_deviation(&m, &u, 1e-7).is_none());
            // No budget surplus (MC runs deficits).
            assert!(out.revenue() <= out.served_cost + 1e-9);
        }
    }

    #[test]
    fn line_shapley_is_1bb_against_chain_cost() {
        let solver = line(3, 6);
        let chain_all = solver.chain_cost(
            &(0..6)
                .filter(|&x| x != solver.network().source())
                .collect::<Vec<_>>(),
        );
        let m = LineShapleyMechanism::new(solver);
        let out = m.run(&[1e5; 5]);
        assert!(approx_eq(out.revenue(), chain_all));
        assert!(approx_eq(out.served_cost, chain_all));
    }

    #[test]
    fn line_shapley_group_strategyproof() {
        let m = LineShapleyMechanism::new(line(5, 5));
        for u in [[4.0, 1.0, 9.0, 2.0], [20.0, 20.0, 20.0, 20.0]] {
            assert!(find_unilateral_deviation(&m, &u, 1e-7).is_none());
            assert!(find_group_deviation(&m, &u, 2, 1e-7).is_none());
        }
    }

    #[test]
    fn line_mc_strategyproof_and_efficient() {
        let solver = line(8, 6);
        let m = LineMcMechanism::new(solver);
        let mut rng = SmallRng::seed_from_u64(99);
        let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..15.0)).collect();
        let out = m.run(&u);
        assert!(verify_no_positive_transfers(&out));
        assert!(verify_voluntary_participation(&out, &u));
        assert!(find_unilateral_deviation(&m, &u, 1e-7).is_none());
    }
}
