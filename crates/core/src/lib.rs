//! # wmcs-mechanisms — the paper's cost-sharing mechanisms
//!
//! The primary contribution of Bilò, Flammini, Melideo, Moscardelli,
//! Navarra, *"Sharing the cost of multicast transmissions in wireless
//! networks"* (SPAA 2004 / TCS 2006), implemented end to end on the
//! substrates of this workspace:
//!
//! | mechanism | paper | guarantees |
//! |---|---|---|
//! | [`UniversalShapleyMechanism`] | §2.1 | BB, group-SP, NPT, VP, CS |
//! | [`UniversalMcMechanism`] | §2.1 | efficient, SP, NPT, VP, CS |
//! | [`NwstCostSharingMechanism`] | §2.2.2, Thms 2.2–2.3 | 1.5 ln k-BB, SP (not group-SP: Fig. 1) |
//! | [`WirelessMulticastMechanism`] | §2.2.3 | 3 ln(k+1)-BB, SP |
//! | [`AlphaOneShapleyMechanism`] / [`AlphaOneMcMechanism`] | §3.1, Thm 3.2 | 1-BB group-SP / efficient SP (α = 1) |
//! | [`LineShapleyMechanism`] / [`LineMcMechanism`] | §3.1, Thm 3.2 | ditto, w.r.t. the chain-form cost (d = 1; see DESIGN.md §3a) |
//! | [`EuclideanSteinerMechanism`] | §3.2, Thms 3.6–3.7 | 2(3^d−1)-BB (12 for d = 2), group-SP |
//!
//! plus the paper's two counterexample instances ([`fig1_instance`],
//! [`PentagonInstance`]).

// Every public item carries rustdoc: substrate crates feed the
// mechanism layers above them, and undocumented invariants become
// silent contract drift there.
#![deny(missing_docs)]

pub mod euclidean_optimal;
pub mod euclidean_steiner;
pub mod instances;
pub mod nwst_mechanism;
pub mod universal_mc;
pub mod universal_shapley;
pub mod wireless_mechanism;

pub use euclidean_optimal::{
    AlphaOneMcMechanism, AlphaOneShapleyMechanism, LineMcMechanism, LineShapleyMechanism,
};
pub use euclidean_steiner::{EuclideanSteinerMechanism, SteinerOutcome};
pub use instances::{fig1_instance, PentagonInstance};
pub use nwst_mechanism::NwstCostSharingMechanism;
pub use universal_mc::UniversalMcMechanism;
pub use universal_shapley::UniversalShapleyMechanism;
pub use wireless_mechanism::{WirelessMulticastMechanism, WirelessOutcome};

#[cfg(test)]
mod fig1_tests {
    use super::*;
    use wmcs_game::{find_group_deviation, find_unilateral_deviation, Mechanism};
    use wmcs_geom::approx_eq;

    fn fig1_mechanism() -> NwstCostSharingMechanism {
        let (g, terminals, _) = fig1_instance();
        NwstCostSharingMechanism::new(g, terminals)
    }

    /// The worked example of §2.2.2, truthful run: Sp2 (ratio 1) then the
    /// path 1→4→6 (ratio 3/2): shares all 3/2, welfares (3/2, 3/2, 3/2, 0).
    #[test]
    fn truthful_run_matches_paper_numbers() {
        let (_, _, u) = fig1_instance();
        let m = fig1_mechanism();
        let out = m.run(&u);
        assert_eq!(out.receivers, vec![0, 1, 2, 3]);
        for p in 0..4 {
            assert!(
                approx_eq(out.shares[p], 1.5),
                "player {p}: share {}",
                out.shares[p]
            );
        }
        assert!(approx_eq(out.welfare(0, &u), 1.5));
        assert!(approx_eq(out.welfare(1, &u), 1.5));
        assert!(approx_eq(out.welfare(2, &u), 1.5));
        assert!(approx_eq(out.welfare(3, &u), 0.0));
        // Revenue covers the built tree (A = 3 + C = 3).
        assert!(approx_eq(out.revenue(), 6.0));
        assert!(approx_eq(out.served_cost, 6.0));
    }

    /// The collusion: x7 under-reports 3/2 − ε; the aggregated budget of
    /// the super-terminal fails the 3/2 path, x7 is dropped, and the
    /// restart buys Sp1 (ratio 4/3) — everyone in the coalition weakly
    /// gains, x1/x5/x6 strictly (5/3 > 3/2).
    #[test]
    fn collusion_run_matches_paper_numbers() {
        let (_, _, u) = fig1_instance();
        let m = fig1_mechanism();
        let eps = 0.3;
        let mut v = u.clone();
        v[3] = 1.5 - eps;
        let out = m.run(&v);
        assert_eq!(out.receivers, vec![0, 1, 2], "x7 must be dropped");
        for p in 0..3 {
            assert!(
                approx_eq(out.shares[p], 4.0 / 3.0),
                "player {p}: share {}",
                out.shares[p]
            );
            assert!(approx_eq(out.welfare(p, &u), 3.0 - 4.0 / 3.0));
        }
        assert!(approx_eq(out.welfare(3, &u), 0.0));
    }

    /// Theorem 2.3 + the Fig. 1 point: unilaterally strategyproof, yet a
    /// coalition (here {1, 5, 6, 7}, realised by x7's lie) profits.
    #[test]
    fn strategyproof_but_not_group_strategyproof() {
        let (_, _, u) = fig1_instance();
        let m = fig1_mechanism();
        assert!(
            find_unilateral_deviation(&m, &u, 1e-7).is_none(),
            "must be unilaterally strategyproof"
        );
        let dev =
            find_group_deviation(&m, &u, 4, 1e-7).expect("the Fig. 1 collusion must be discovered");
        // The deviation includes player 3 (x7) lying downward.
        assert!(dev.coalition.contains(&3));
    }
}
