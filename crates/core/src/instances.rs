//! The paper's two counterexample instances.
//!
//! * [`fig1_instance`] — the §2.2.2 worked example (paper Fig. 1): the
//!   NWST mechanism is strategyproof but **not group strategyproof**. The
//!   published figure is not fully specified in the text, so the instance
//!   here is reconstructed from the worked example's numbers; the
//!   regenerated run matches every number the paper reports (ratios 1,
//!   3/2 and 4/3; truthful welfares (3/2, 3/2, 3/2, 0); collusion
//!   welfares (5/3, 5/3, 5/3, 0)).
//! * [`PentagonInstance`] — the Lemma 3.3 construction (paper Fig. 2):
//!   for `α > 1, d > 1` the optimal multicast cost function can have an
//!   **empty core**. Following the paper's own asymptotic reduction
//!   ("only the source and the internal stations can have power > 1 …
//!   contribution negligible"), the instance is the 11-node abstract chain
//!   graph whose edge weights are the relay-chain lengths; `C*` is its
//!   edge-weighted Steiner tree cost (exact, via Dreyfus–Wagner).

use wmcs_game::ExplicitGame;
use wmcs_graph::{dreyfus_wagner_cost, CostMatrix};
use wmcs_nwst::NodeWeightedGraph;

/// The Fig. 1 NWST instance: returns the node-weighted graph, the terminal
/// nodes in the order (t1, t5, t6, t7), and the paper's true utilities
/// (3, 3, 3, 3/2).
///
/// Layout (node ids): `0..=3` are the terminals `t1, t5, t6, t7` (weight
/// 0); `4 = A` and `5 = B` (weight 3) are the twin spider centres `Sp2`,
/// `Sp3` adjacent to `{t1, t5, t7}`; `6 = C` (weight 3) is the
/// "1 → 4 → 6" path node adjacent to `{t1, t6}`; `7 = D` (weight 4) is
/// the `Sp1` centre adjacent to `{t1, t5, t6}`.
pub fn fig1_instance() -> (NodeWeightedGraph, Vec<usize>, Vec<f64>) {
    let mut g = NodeWeightedGraph::new(vec![0.0, 0.0, 0.0, 0.0, 3.0, 3.0, 3.0, 4.0]);
    for hub in [4usize, 5] {
        g.add_edge(hub, 0); // t1
        g.add_edge(hub, 1); // t5
        g.add_edge(hub, 3); // t7
    }
    g.add_edge(6, 0); // C - t1
    g.add_edge(6, 2); // C - t6
    g.add_edge(7, 0); // D - t1
    g.add_edge(7, 1); // D - t5
    g.add_edge(7, 2); // D - t6
    (g, vec![0, 1, 2, 3], vec![3.0, 3.0, 3.0, 1.5])
}

/// The Fig. 2 pentagon instance at scale `m`: the abstract chain graph.
///
/// Nodes: `0 = s` (source), `1..=5` the internal stations `y_0..y_4`,
/// `6..=10` the external stations `x_0..x_4`. Edge weights are chain
/// lengths (`m` for `s–x_j`, `m/2` for `s–y_j`, and the internal↔external
/// geometric distance `m·√(5/4 − cos 36°) ≈ 0.664 m` for each `y_j` and
/// its two adjacent externals).
#[derive(Debug, Clone)]
pub struct PentagonInstance {
    /// The abstract edge-weighted graph.
    pub matrix: CostMatrix,
    /// Source node id (0).
    pub source: usize,
    /// External station node ids (the 5 players).
    pub externals: Vec<usize>,
    /// Scale parameter m.
    pub m: f64,
}

impl PentagonInstance {
    /// Build at scale `m` (the asymptotic argument holds for every
    /// `m > 0` in the abstract graph; `m` only scales the costs).
    pub fn new(m: f64) -> Self {
        assert!(m > 0.0);
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        // Internal–external distance: |y_j − x_i| for adjacent corners,
        // with |y| = m/2, |x| = m and 36° between them.
        let iext = m * (1.25 - (std::f64::consts::PI / 5.0).cos()).sqrt();
        for j in 0..5usize {
            let y = 1 + j;
            let x_a = 6 + j;
            let x_b = 6 + ((j + 1) % 5);
            edges.push((0, y, m / 2.0));
            edges.push((0, x_a, m));
            edges.push((y, x_a, iext));
            edges.push((y, x_b, iext));
        }
        let matrix = CostMatrix::from_edges(11, &edges);
        Self {
            matrix,
            source: 0,
            externals: (6..11).collect(),
            m,
        }
    }

    /// `C*(R)` for a set of players (externals indexed 0..5): the exact
    /// edge-weighted Steiner tree connecting the source to them.
    pub fn optimal_cost(&self, players: &[usize]) -> f64 {
        if players.is_empty() {
            return 0.0;
        }
        let mut terminals: Vec<usize> = vec![self.source];
        terminals.extend(players.iter().map(|&p| self.externals[p]));
        dreyfus_wagner_cost(&self.matrix, &terminals)
    }

    /// The cost game over the 5 external players (tabulated).
    pub fn cost_game(&self) -> ExplicitGame {
        ExplicitGame::from_fn(5, |mask| {
            let players: Vec<usize> = (0..5).filter(|&p| mask & (1 << p) != 0).collect();
            self.optimal_cost(&players)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_game::{core_is_empty, is_submodular, submodularity_violation};
    use wmcs_geom::approx_eq;

    #[test]
    fn pentagon_single_external_is_direct_line() {
        let inst = PentagonInstance::new(10.0);
        // One external: straight chain of length m beats the detour
        // m/2 + 0.664 m.
        assert!(approx_eq(inst.optimal_cost(&[0]), 10.0));
    }

    #[test]
    fn pentagon_adjacent_pair_routes_through_internal() {
        let inst = PentagonInstance::new(10.0);
        let iext = 10.0 * (1.25 - (std::f64::consts::PI / 5.0).cos()).sqrt();
        // Adjacent externals x_0, x_1 share internal y_1 (node 2):
        // m/2 + 2·iext ≈ 18.28 < 2 m = 20.
        let expect = 5.0 + 2.0 * iext;
        assert!(approx_eq(inst.optimal_cost(&[0, 1]), expect));
    }

    #[test]
    fn pentagon_full_set_uses_two_internals_plus_direct() {
        let inst = PentagonInstance::new(10.0);
        let iext = 10.0 * (1.25 - (std::f64::consts::PI / 5.0).cos()).sqrt();
        // Lemma 3.3's optimal structure: two adjacent pairs via internals,
        // one external direct.
        let expect = 2.0 * (5.0 + 2.0 * iext) + 10.0;
        assert!(approx_eq(inst.optimal_cost(&[0, 1, 2, 3, 4]), expect));
    }

    #[test]
    fn lemma_3_3_core_is_empty() {
        let inst = PentagonInstance::new(10.0);
        let game = inst.cost_game();
        assert!(core_is_empty(&game), "the pentagon core must be empty");
        // …hence the cost function cannot be submodular either (§1.1).
        assert!(!is_submodular(&game));
        assert!(submodularity_violation(&game).is_some());
    }

    #[test]
    fn paper_inequalities_hold() {
        // C*({x_j}) > C*(R)/5 and C*({x_0, x_1}) < 2 C*(R)/5 — the two
        // facts the paper's symmetry argument needs.
        let inst = PentagonInstance::new(10.0);
        let full = inst.optimal_cost(&[0, 1, 2, 3, 4]);
        for p in 0..5 {
            assert!(inst.optimal_cost(&[p]) > full / 5.0 + 1e-9);
        }
        assert!(inst.optimal_cost(&[0, 1]) < 2.0 * full / 5.0 - 1e-9);
    }

    #[test]
    fn scale_invariance() {
        // The abstract graph scales linearly in m, so emptiness is
        // scale-free.
        for m in [1.0, 42.0, 1000.0] {
            let inst = PentagonInstance::new(m);
            assert!(core_is_empty(&inst.cost_game()), "m = {m}");
        }
    }

    #[test]
    fn fig1_graph_shape() {
        let (g, terminals, utilities) = fig1_instance();
        assert_eq!(g.len(), 8);
        assert_eq!(terminals, vec![0, 1, 2, 3]);
        assert_eq!(utilities, vec![3.0, 3.0, 3.0, 1.5]);
        for &t in &terminals {
            assert_eq!(g.weight(t), 0.0);
        }
    }
}
