//! The 3 ln(k+1)-BB strategyproof mechanism for multicast in symmetric
//! wireless networks (§2.2.3).
//!
//! Pipeline per outer round, exactly as in the paper:
//! 1. reduce the MEMT instance on the active receiver set to NWST
//!    (§2.2.1), with the source's input node as a free terminal of
//!    infinite utility that never pays and never counts in ratios;
//! 2. run the NWST cost-sharing mechanism (§2.2.2) — it selects the
//!    receivers `R̂` and charges the weakly-connected tree's node weights;
//! 3. back-convert the Steiner tree by BFS numbering into a directed
//!    multicast tree and its power assignment `π`; station powers beyond
//!    the NWST-paid levels `π'` are charged *backward along the
//!    enumeration*: each such station's power is split equally among its
//!    downstream receivers, dropping (and restarting without) anyone who
//!    cannot pay.
//!
//! The outer loop re-runs on the served set until it is a fixed point, so
//! the final shares are computed on exactly the receiver set that is
//! served. (The paper's `while R' ≠ R(v)` loop, read as a fixed-point
//! iteration — re-running on an unchanged set would loop forever.)

use wmcs_game::{Mechanism, MechanismOutcome};
use wmcs_geom::EPS;
use wmcs_nwst::{nwst_mechanism, NwstConfig, ReducedInstance};
use wmcs_wireless::{PowerAssignment, WirelessNetwork};

/// The §2.2.3 mechanism over a symmetric wireless network.
#[derive(Debug, Clone)]
pub struct WirelessMulticastMechanism {
    net: WirelessNetwork,
    reduction: ReducedInstance,
    config: NwstConfig,
}

/// Mechanism outcome plus the built power assignment.
#[derive(Debug, Clone)]
pub struct WirelessOutcome {
    /// Receivers/shares/served cost in player space.
    pub outcome: MechanismOutcome,
    /// The power assignment implementing the multicast.
    pub assignment: PowerAssignment,
}

impl WirelessMulticastMechanism {
    /// Build the mechanism (precomputing the NWST reduction graph).
    pub fn new(net: &WirelessNetwork) -> Self {
        let reduction = ReducedInstance::build(net);
        Self {
            net: net.clone(),
            reduction,
            config: NwstConfig::default(),
        }
    }

    /// Use a non-default spider-oracle configuration.
    pub fn with_config(mut self, config: NwstConfig) -> Self {
        self.config = config;
        self
    }

    /// The underlying network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// Full run, returning the power assignment as well.
    pub fn run_full(&self, reported: &[f64]) -> WirelessOutcome {
        let net = &self.net;
        let n = net.n_players();
        assert_eq!(reported.len(), n);
        let mut active: Vec<usize> = (0..n).filter(|&p| reported[p] > 0.0).collect();
        loop {
            if active.is_empty() {
                return WirelessOutcome {
                    outcome: MechanismOutcome::empty(n),
                    assignment: PowerAssignment::zero(net.n_stations()),
                };
            }
            // (1)+(2): reduction + NWST mechanism. Terminal 0 is the free
            // source input node.
            let stations: Vec<usize> = active.iter().map(|&p| net.station_of_player(p)).collect();
            let terminals = self.reduction.terminals_for(net, &stations);
            let mut budgets = vec![f64::INFINITY];
            budgets.extend(active.iter().map(|&p| reported[p]));
            let nwst_out = nwst_mechanism(
                &self.reduction.graph,
                &terminals,
                &budgets,
                Some(0),
                &self.config,
            );
            let served: Vec<usize> = nwst_out
                .receivers
                .iter()
                .filter(|&&t| t != 0)
                .map(|&t| active[t - 1])
                .collect();
            if served.is_empty() {
                return WirelessOutcome {
                    outcome: MechanismOutcome::empty(n),
                    assignment: PowerAssignment::zero(net.n_stations()),
                };
            }
            if served.len() < active.len() {
                // NWST dropped someone: fixed-point restart on the
                // served set, so shares are computed on it from scratch.
                active = served;
                continue;
            }
            // Shares in player space from the NWST run.
            let mut shares = vec![0.0f64; n];
            for (t, &s) in nwst_out.shares.iter().enumerate() {
                if t != 0 && s != 0.0 {
                    shares[active[t - 1]] = s;
                }
            }
            // (3): back-conversion and backward charging of extra powers.
            let sol = self
                .reduction
                .to_power_assignment(net, &nwst_out.tree_edges);
            let pi = &sol.assignment;
            let paid = &sol.nwst_paid;
            // Directed children lists and a topological (BFS) order.
            let n_st = net.n_stations();
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_st];
            for &(a, b) in &sol.station_edges {
                children[a].push(b);
            }
            let order = bfs_order(net.source(), &children);
            let is_served = {
                let mut v = vec![false; n_st];
                for &p in &active {
                    v[net.station_of_player(p)] = true;
                }
                v
            };
            let mut dropped: Vec<usize> = Vec::new();
            // "Following backward the enumeration": leaves first.
            for &x in order.iter().rev() {
                if pi.power(x) <= paid.power(x) + EPS {
                    continue;
                }
                let downstream = receiver_descendants(x, &children, &is_served);
                if downstream.is_empty() {
                    continue;
                }
                let slice = pi.power(x) / downstream.len() as f64;
                let can_pay = downstream.iter().all(|&st| {
                    let p = net.player_of_station(st).expect("receivers are players");
                    reported[p] - shares[p] >= slice - EPS
                });
                if can_pay {
                    for &st in &downstream {
                        let p = net.player_of_station(st).expect("receivers are players");
                        shares[p] += slice;
                    }
                } else {
                    for &st in &downstream {
                        let p = net.player_of_station(st).expect("receivers are players");
                        if reported[p] - shares[p] < slice - EPS {
                            dropped.push(p);
                        }
                    }
                    break;
                }
            }
            if !dropped.is_empty() {
                active.retain(|p| !dropped.contains(p));
                continue;
            }
            let receivers = {
                let mut r = active.clone();
                r.sort_unstable();
                r
            };
            debug_assert!(pi.multicasts_to(
                net,
                &receivers
                    .iter()
                    .map(|&p| net.station_of_player(p))
                    .collect::<Vec<_>>()
            ));
            return WirelessOutcome {
                outcome: MechanismOutcome {
                    receivers,
                    shares,
                    served_cost: pi.total_cost(),
                },
                assignment: sol.assignment,
            };
        }
    }
}

fn bfs_order(root: usize, children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::from([root]);
    let mut seen = vec![false; children.len()];
    seen[root] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &c in &children[v] {
            if !seen[c] {
                seen[c] = true;
                queue.push_back(c);
            }
        }
    }
    order
}

fn receiver_descendants(x: usize, children: &[Vec<usize>], is_served: &[bool]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack: Vec<usize> = children[x].to_vec();
    let mut seen = vec![false; children.len()];
    while let Some(v) = stack.pop() {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        if is_served[v] {
            out.push(v);
        }
        stack.extend(children[v].iter().copied());
    }
    out.sort_unstable();
    out
}

impl Mechanism for WirelessMulticastMechanism {
    fn n_players(&self) -> usize {
        self.net.n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        self.run_full(reported).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{
        find_unilateral_deviation, verify_no_positive_transfers, verify_voluntary_participation,
    };
    use wmcs_geom::{Point, PowerModel};
    use wmcs_wireless::memt_exact;

    fn mechanism(seed: u64, n: usize) -> WirelessMulticastMechanism {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        WirelessMulticastMechanism::new(&net)
    }

    #[test]
    fn rich_profile_serves_everyone_feasibly() {
        let m = mechanism(1, 6);
        let out = m.run_full(&[1e6; 5]);
        assert_eq!(out.outcome.receivers, vec![0, 1, 2, 3, 4]);
        let stations: Vec<usize> = (1..6).collect();
        assert!(out.assignment.multicasts_to(m.network(), &stations));
        // Cost recovery.
        assert!(out.outcome.revenue() + 1e-9 >= out.outcome.served_cost);
    }

    #[test]
    fn beta_bound_against_exact_optimum() {
        // 3 ln(k+1)-approximate competitiveness (small-k analytic floor of
        // 2·2 = 4 applied: the ln bound is asymptotic; experiment T3
        // tabulates realised ratios, far below).
        for seed in 0..8 {
            let m = mechanism(seed, 6);
            let out = m.run_full(&[1e6; 5]);
            let stations: Vec<usize> = (1..6).collect();
            let (opt, _) = memt_exact(m.network(), &stations);
            let k = 5.0f64;
            let bound = (3.0 * (k + 1.0).ln()).max(4.0);
            assert!(
                out.outcome.revenue() <= bound * opt + 1e-6,
                "seed {seed}: revenue {} vs bound {} (opt {opt})",
                out.outcome.revenue(),
                bound * opt
            );
        }
    }

    #[test]
    fn poor_players_are_dropped_not_overcharged() {
        let m = mechanism(3, 6);
        let mut u = vec![1e6; 5];
        u[2] = 1e-6;
        let out = m.run_full(&u);
        assert!(!out.outcome.receivers.contains(&2));
        assert!(verify_voluntary_participation(&out.outcome, &u));
        assert!(verify_no_positive_transfers(&out.outcome));
        // The others are still served.
        assert!(out.outcome.receivers.len() >= 3);
    }

    #[test]
    fn all_zero_profile_serves_nobody() {
        let m = mechanism(4, 5);
        let out = m.run(&[0.0; 4]);
        assert!(out.receivers.is_empty());
        assert_eq!(out.revenue(), 0.0);
    }

    #[test]
    fn strategyproof_empirically() {
        for seed in 0..4 {
            let m = mechanism(seed, 5);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let u: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..40.0)).collect();
            assert!(
                find_unilateral_deviation(&m, &u, 1e-6).is_none(),
                "seed {seed}: profitable deviation found"
            );
        }
    }

    #[test]
    fn served_assignment_is_feasible_on_random_profiles() {
        for seed in 0..10 {
            let m = mechanism(seed + 20, 6);
            let mut rng = SmallRng::seed_from_u64(seed);
            let u: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..60.0)).collect();
            let out = m.run_full(&u);
            let stations: Vec<usize> = out
                .outcome
                .receivers
                .iter()
                .map(|&p| m.network().station_of_player(p))
                .collect();
            assert!(
                out.assignment.multicasts_to(m.network(), &stations),
                "seed {seed}"
            );
            assert!(out.outcome.revenue() + 1e-9 >= out.outcome.served_cost);
        }
    }
}
