//! The 1.5 ln k-BB strategyproof mechanism for non-cooperative NWST
//! (§2.2.2, Theorems 2.2–2.3), wrapped in the common [`Mechanism`]
//! interface. Players are the instance's terminals.

use wmcs_game::{Mechanism, MechanismOutcome};
use wmcs_nwst::{nwst_mechanism, BudgetAggregation, NodeWeightedGraph, NwstConfig, NwstOutcome};

/// The NWST cost-sharing mechanism over a fixed node-weighted instance.
#[derive(Debug, Clone)]
pub struct NwstCostSharingMechanism {
    graph: NodeWeightedGraph,
    terminals: Vec<usize>,
    config: NwstConfig,
}

impl NwstCostSharingMechanism {
    /// Wrap an instance; `terminals[i]` is player `i`'s node.
    pub fn new(graph: NodeWeightedGraph, terminals: Vec<usize>) -> Self {
        Self {
            graph,
            terminals,
            config: NwstConfig::default(),
        }
    }

    /// Use a non-default oracle configuration (e.g. Klein–Ravi spiders).
    pub fn with_config(mut self, config: NwstConfig) -> Self {
        self.config = config;
        self
    }

    /// Extension (this reproduction's mitigation of DESIGN.md §3a finding
    /// 2): replace the Eq. (5) scalar aggregation with tight per-member
    /// residual checks and one-at-a-time eviction — serves weakly more
    /// agents and cuts measured SP violations ~3× (experiment T9).
    pub fn with_tight_budgets(mut self) -> Self {
        self.config.aggregation = BudgetAggregation::TightMemberResiduals;
        self
    }

    /// The underlying instance.
    pub fn graph(&self) -> &NodeWeightedGraph {
        &self.graph
    }

    /// Raw driver output (tree nodes/edges included) for a profile.
    pub fn run_raw(&self, reported: &[f64]) -> NwstOutcome {
        nwst_mechanism(&self.graph, &self.terminals, reported, None, &self.config)
    }
}

impl Mechanism for NwstCostSharingMechanism {
    fn n_players(&self) -> usize {
        self.terminals.len()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        let out = self.run_raw(reported);
        MechanismOutcome {
            receivers: out.receivers,
            shares: out.shares,
            served_cost: out.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_game::{
        find_unilateral_deviation, verify_consumer_sovereignty, verify_no_positive_transfers,
        verify_voluntary_participation,
    };
    use wmcs_nwst::nwst_exact_cost;

    /// Hub-and-spoke with a decoy: see wmcs-nwst tests.
    fn star_mechanism() -> NwstCostSharingMechanism {
        let mut g = NodeWeightedGraph::new(vec![2.0, 0.0, 0.0, 0.0, 9.0]);
        for t in 1..=3 {
            g.add_edge(0, t);
            g.add_edge(4, t);
        }
        NwstCostSharingMechanism::new(g, vec![1, 2, 3])
    }

    #[test]
    fn theorem_2_2_budget_bound_on_star() {
        let m = star_mechanism();
        let out = m.run(&[5.0, 5.0, 5.0]);
        assert_eq!(out.receivers, vec![0, 1, 2]);
        let exact =
            nwst_exact_cost(m.graph(), &[1, 2, 3]).expect("star instance connects its terminals");
        // Cost recovery and the (small-k floored) ln bound.
        assert!(out.revenue() + 1e-9 >= out.served_cost);
        let bound = (1.5 * 3.0f64.ln()).max(2.0);
        assert!(out.revenue() <= bound * exact + 1e-6);
    }

    #[test]
    fn theorem_2_3_strategyproof_on_profiles() {
        let m = star_mechanism();
        for u in [
            [5.0, 5.0, 5.0],
            [0.5, 0.9, 3.0],
            [2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0],
            [0.0, 0.0, 10.0],
        ] {
            assert!(
                find_unilateral_deviation(&m, &u, 1e-7).is_none(),
                "profile {u:?} manipulable"
            );
        }
    }

    /// Reproduction finding, pinned (DESIGN.md §3a, experiment T2): the
    /// paper's Theorem 2.3 claims strategyproofness, arguing that a
    /// receiver's share is independent of its report and that VP bounds
    /// the charge by the *true* utility. The second step is not airtight:
    /// the Eq. (5) acceptance check compares the full ratio against the
    /// aggregated budget `v_t = |T_Sp| · min residual`, which undercounts
    /// the group's wealth (`|T_Sp| ≤ |N_t^+|`), so a borderline terminal
    /// can be dropped although its counterfactual charge
    /// (`ratio / |N_t^+|`) was affordable — and *inflating* the report is
    /// then profitable. On this instance player 0 (u ≈ 0.976) is dropped
    /// when truthful but, reporting ≈ 2.95, is served for ≈ 0.964 < u.
    #[test]
    fn eq5_thresholds_are_not_tight_finding() {
        let weights = vec![
            0.0,
            4.306033081975212,
            3.637937320692719,
            0.0,
            2.7015759528865204,
            3.174428980405332,
            0.0,
            1.3424116848400522,
            0.7843059593888575,
            0.5848505178702936,
        ];
        let mut g = NodeWeightedGraph::new(weights);
        for (a, b) in [
            (0, 1),
            (0, 9),
            (0, 5),
            (0, 4),
            (1, 2),
            (1, 9),
            (2, 3),
            (2, 8),
            (3, 4),
            (4, 5),
            (5, 6),
            (5, 7),
            (6, 7),
            (7, 8),
            (7, 9),
            (8, 9),
        ] {
            g.add_edge(a, b);
        }
        let m = NwstCostSharingMechanism::new(g, vec![0, 3, 6]);
        let u = [0.9760449285010226, 0.8605792307473061, 2.540302869636565];
        let truthful = m.run(&u);
        assert!(!truthful.is_receiver(0), "player 0 dropped when truthful");
        let mut v = u;
        v[0] = 2.9520898570020453;
        let lied = m.run(&v);
        assert!(lied.is_receiver(0), "inflated report gets served");
        assert!(
            lied.shares[0] < u[0],
            "served share {} is below the true utility {} — profitable lie",
            lied.shares[0],
            u[0]
        );
        // The extension fixes it: with tight per-member checks the same
        // instance admits no profitable unilateral deviation.
        let tight = m.clone().with_tight_budgets();
        assert!(
            find_unilateral_deviation(&tight, &u, 1e-7).is_none(),
            "tight aggregation must be strategyproof on the pinned instance"
        );
    }

    #[test]
    fn axioms_npt_vp_cs() {
        let m = star_mechanism();
        for u in [[5.0, 5.0, 5.0], [0.1, 0.1, 0.1], [1.0, 0.0, 1.0]] {
            let out = m.run(&u);
            assert!(verify_no_positive_transfers(&out));
            assert!(verify_voluntary_participation(&out, &u));
        }
        assert!(verify_consumer_sovereignty(&m, &[0.1, 0.1, 0.1], 1e9));
    }
}
