//! The 2(3^d − 1)-BB group-strategyproof mechanisms for Euclidean networks
//! with `α ≥ d > 1` (§3.2, Theorems 3.6 and 3.7).
//!
//! Construction: the Jain–Vazirani 2-BB cross-monotonic Steiner cost
//! shares (implemented in `wmcs-graph::jv_shares`) applied to the wireless
//! cost graph, driven through the Moulin–Shenker loop. The built Steiner
//! tree is turned into a power assignment by the Steiner heuristic
//! (downward orientation), which never exceeds the tree cost; Lemmas
//! 3.4/3.5 bound the minimum Steiner tree by `(3^d − 1) · C*(R)` — so the
//! shares recover the built assignment and stay within `2(3^d − 1) · C*`
//! (12 for d = 2, via Ambühl's constant 6).

use wmcs_game::{Mechanism, MechanismOutcome};
use wmcs_geom::EPS;
use wmcs_graph::{jv_steiner_shares, JvSharing, RootedTree};
use wmcs_wireless::{PowerAssignment, WirelessNetwork};

/// Theorem 3.6's mechanism family (equal-split JV member).
#[derive(Debug, Clone)]
pub struct EuclideanSteinerMechanism {
    net: WirelessNetwork,
}

/// Outcome plus the built power assignment.
#[derive(Debug, Clone)]
pub struct SteinerOutcome {
    /// Receivers/shares/served cost in player space.
    pub outcome: MechanismOutcome,
    /// Power assignment implementing the multicast.
    pub assignment: PowerAssignment,
}

impl EuclideanSteinerMechanism {
    /// Wrap a Euclidean network (any dimension; the approximation *bound*
    /// requires `α ≥ d`, the mechanism itself runs for any costs).
    pub fn new(net: &WirelessNetwork) -> Self {
        Self { net: net.clone() }
    }

    /// The underlying network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// The claimed budget-balance factor `2(3^d − 1)` for this network's
    /// dimension (12 for d = 2 via Ambühl \[1\]).
    pub fn bb_factor(&self) -> f64 {
        let d = self.net.points().map(|pts| pts[0].dim()).unwrap_or(2);
        if d == 2 {
            12.0
        } else {
            2.0 * (3f64.powi(i32::try_from(d).expect("scenario dimension fits i32")) - 1.0)
        }
    }

    /// Full run, also returning the built power assignment.
    pub fn run_full(&self, reported: &[f64]) -> SteinerOutcome {
        let net = &self.net;
        let n = net.n_players();
        assert_eq!(reported.len(), n);
        let s = net.source();
        let mut in_set = vec![true; n];
        loop {
            let stations: Vec<usize> = (0..n)
                .filter(|&p| in_set[p])
                .map(|p| net.station_of_player(p))
                .collect();
            if stations.is_empty() {
                return SteinerOutcome {
                    outcome: MechanismOutcome::empty(n),
                    assignment: PowerAssignment::zero(net.n_stations()),
                };
            }
            let jv = jv_steiner_shares(net.costs(), s, &stations, JvSharing::Equal, None);
            let mut dropped = false;
            for p in 0..n {
                if in_set[p] && reported[p] < jv.share[net.station_of_player(p)] - EPS {
                    in_set[p] = false;
                    dropped = true;
                }
            }
            if dropped {
                continue;
            }
            let receivers: Vec<usize> = (0..n).filter(|&p| in_set[p]).collect();
            let mut shares = vec![0.0; n];
            for &p in &receivers {
                shares[p] = jv.share[net.station_of_player(p)];
            }
            // Steiner heuristic: orient the tree downward from the source.
            let rooted = RootedTree::from_undirected_edges(net.n_stations(), s, &jv.tree.edges);
            let assignment = PowerAssignment::from_tree(net, &rooted);
            debug_assert!(assignment.multicasts_to(net, &stations));
            let served_cost = assignment.total_cost();
            return SteinerOutcome {
                outcome: MechanismOutcome {
                    receivers,
                    shares,
                    served_cost,
                },
                assignment,
            };
        }
    }
}

impl Mechanism for EuclideanSteinerMechanism {
    fn n_players(&self) -> usize {
        self.net.n_players()
    }

    fn run(&self, reported: &[f64]) -> MechanismOutcome {
        self.run_full(reported).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{
        find_group_deviation, find_unilateral_deviation, verify_no_positive_transfers,
        verify_voluntary_participation,
    };
    use wmcs_geom::{Point, PowerModel};
    use wmcs_wireless::memt_exact;

    fn mechanism(seed: u64, n: usize) -> EuclideanSteinerMechanism {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        EuclideanSteinerMechanism::new(&net)
    }

    #[test]
    fn bb_factor_for_two_dimensions_is_twelve() {
        let m = mechanism(0, 4);
        assert_eq!(m.bb_factor(), 12.0);
    }

    #[test]
    fn theorem_3_6_bb_bound_on_random_instances() {
        for seed in 0..10 {
            let m = mechanism(seed, 7);
            let out = m.run_full(&[1e6; 6]);
            let stations: Vec<usize> = (1..7).collect();
            assert!(out.assignment.multicasts_to(m.network(), &stations));
            // Cost recovery...
            assert!(
                out.outcome.revenue() + 1e-6 >= out.outcome.served_cost,
                "seed {seed}"
            );
            // ...and 12-approximate competitiveness vs the exact optimum.
            let (opt, _) = memt_exact(m.network(), &stations);
            assert!(
                out.outcome.revenue() <= m.bb_factor() * opt + 1e-6,
                "seed {seed}: revenue {} vs 12·opt {}",
                out.outcome.revenue(),
                m.bb_factor() * opt
            );
        }
    }

    #[test]
    fn group_strategyproof_empirically() {
        for seed in 0..3 {
            let m = mechanism(seed, 5);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e);
            let u: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..50.0)).collect();
            assert!(
                find_unilateral_deviation(&m, &u, 1e-7).is_none(),
                "seed {seed}: unilateral"
            );
            assert!(
                find_group_deviation(&m, &u, 2, 1e-7).is_none(),
                "seed {seed}: group"
            );
        }
    }

    #[test]
    fn axioms_npt_vp_hold() {
        let m = mechanism(7, 6);
        for u in [
            vec![100.0, 0.1, 100.0, 0.1, 100.0],
            vec![0.0; 5],
            vec![2.0; 5],
        ] {
            let out = m.run(&u);
            assert!(verify_no_positive_transfers(&out));
            assert!(verify_voluntary_participation(&out, &u));
        }
    }

    #[test]
    fn unaffordable_players_get_dropped_and_rest_served() {
        let m = mechanism(11, 6);
        let rich = m.run(&[1e6; 5]);
        assert_eq!(rich.receivers.len(), 5);
        let mut u = vec![1e6; 5];
        // Make player 3 unable to pay even a sliver of its rich-case share.
        u[3] = rich.shares[3] * 1e-6;
        let out = m.run(&u);
        if rich.shares[3] > 1e-9 {
            assert!(!out.receivers.contains(&3));
        }
        assert!(out.receivers.len() >= 4);
    }
}
