//! Rooted trees over a vertex universe `0..n`.
//!
//! Multicast trees `T(R)`, universal broadcast trees (§2.1), Steiner trees
//! and the directed trees produced by the MEMT↔NWST reduction (§2.2.1) are
//! all rooted trees that span a *subset* of the vertices, so membership is
//! explicit: a vertex is in the tree iff it is the root or has a parent.

/// A rooted tree spanning a subset of `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct RootedTree {
    n: usize,
    root: usize,
    parent: Vec<Option<usize>>,
}

impl RootedTree {
    /// Tree containing only the root.
    pub fn new(n: usize, root: usize) -> Self {
        assert!(root < n);
        Self {
            n,
            root,
            parent: vec![None; n],
        }
    }

    /// Build from a parent array (`parent[root]` must be `None`; vertices
    /// with `None` other than the root are simply not in the tree).
    /// Panics on cycles or edges into absent parents.
    pub fn from_parents(root: usize, parent: Vec<Option<usize>>) -> Self {
        let t = Self {
            n: parent.len(),
            root,
            parent,
        };
        assert!(t.parent[root].is_none(), "root cannot have a parent");
        // Validate in O(n): every member's parent chain reaches the root
        // acyclically. Each vertex is walked at most once — a chain stops
        // as soon as it hits a vertex already proven good (state 2), and
        // meeting the current walk (state 1) is a cycle.
        let mut state = vec![0u8; t.n];
        state[root] = 2;
        let mut chain = Vec::new();
        for v in 0..t.n {
            if state[v] != 0 || t.parent[v].is_none() {
                continue;
            }
            let mut cur = v;
            loop {
                match state[cur] {
                    2 => break,
                    1 => panic!("cycle detected in parent array"),
                    _ => {}
                }
                state[cur] = 1;
                chain.push(cur);
                match t.parent[cur] {
                    Some(p) => cur = p,
                    None => panic!("vertex {v} does not reach the root"),
                }
            }
            for &w in &chain {
                state[w] = 2;
            }
            chain.clear();
        }
        t
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The root vertex.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `v` (None for the root or for non-members).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// True if `v` belongs to the tree.
    pub fn contains(&self, v: usize) -> bool {
        v == self.root || self.parent[v].is_some()
    }

    /// Attach `child` under `parent`; `parent` must already be a member.
    pub fn attach(&mut self, parent: usize, child: usize) {
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert!(!self.contains(child), "child {child} already in tree");
        assert!(child != self.root);
        self.parent[child] = Some(parent);
    }

    /// Members of the tree, ascending.
    pub fn nodes(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| self.contains(v)).collect()
    }

    /// Number of members.
    pub fn node_count(&self) -> usize {
        (0..self.n).filter(|&v| self.contains(v)).count()
    }

    /// Directed edges `(parent, child)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        (0..self.n)
            .filter_map(|v| self.parent[v].map(|p| (p, v)))
            .collect()
    }

    /// Children lists in flat CSR form — see [`CsrChildren`]. One `O(n)`
    /// counting pass, no nested `Vec`s; within each vertex the children
    /// come out in ascending vertex order.
    pub fn csr_children(&self) -> CsrChildren {
        CsrChildren::from_parents(&self.parent)
    }

    /// Path from the root to `v` (inclusive). Panics if `v` is absent.
    pub fn path_from_root(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v), "vertex {v} not in tree");
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Breadth-first order from the root; also the "BFS numbering" used by
    /// the reduction of §2.2.1 to orient NWST solutions into multicast trees.
    pub fn bfs_order(&self) -> Vec<usize> {
        self.csr_children().bfs_order(self.root, self.node_count())
    }

    /// Vertices of the subtree rooted at `v` (including `v`).
    pub fn subtree(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v));
        let ch = self.csr_children();
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(ch.children(u).iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: usize) -> usize {
        self.path_from_root(v).len() - 1
    }

    /// The sub-tree of `self` induced by the union of root-paths of
    /// `targets` — exactly the paper's `T(R)` obtained from a universal tree
    /// `T(S\{s})` (§2.1): keep a vertex iff it lies on a path from the root
    /// to some target.
    pub fn steiner_subtree(&self, targets: &[usize]) -> RootedTree {
        let mut keep = vec![false; self.n];
        keep[self.root] = true;
        for &t in targets {
            for v in self.path_from_root(t) {
                keep[v] = true;
            }
        }
        let parent = (0..self.n)
            .map(|v| if keep[v] { self.parent[v] } else { None })
            .collect();
        RootedTree::from_parents(self.root, parent)
    }

    /// Root an undirected edge set at `root` (the edges must form a forest;
    /// only the component containing `root` is kept).
    pub fn from_undirected_edges(n: usize, root: usize, edges: &[(usize, usize)]) -> RootedTree {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut parent = vec![None; n];
        let mut visited = vec![false; n];
        visited[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = Some(v);
                    queue.push_back(u);
                }
            }
        }
        RootedTree::from_parents(root, parent)
    }
}

/// Children lists of a rooted tree in flat **CSR** (compressed sparse
/// row) form: the children of vertex `v` are the contiguous slice
/// `child_array[offsets[v]..offsets[v+1]]`, and `pos_in_parent[v]` is
/// `v`'s index within its parent's slice.
///
/// Compared to the nested `Vec<Vec<usize>>` this replaces, a CSR form is
/// one allocation per field, cache-friendly to walk, and cheap to share:
/// the universal-tree substrate in `wmcs-wireless` builds one cost-sorted
/// instance and serves every multicast group from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrChildren {
    /// `offsets[v]..offsets[v+1]` delimits `v`'s children; length `n+1`.
    offsets: Vec<usize>,
    /// All children, concatenated per parent; length = number of edges.
    child_array: Vec<usize>,
    /// Index of `v` within its parent's slice (0 for the root and for
    /// vertices outside the tree).
    pos_in_parent: Vec<usize>,
}

impl CsrChildren {
    /// Build from a parent array (the representation [`RootedTree`]
    /// stores). Two counting passes, `O(n)`; children of each vertex come
    /// out in ascending vertex order.
    pub fn from_parents(parent: &[Option<usize>]) -> Self {
        let n = parent.len();
        let mut offsets = vec![0usize; n + 1];
        for p in parent.iter().flatten() {
            offsets[p + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut child_array = vec![0usize; offsets[n]];
        let mut pos_in_parent = vec![0usize; n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = *p {
                pos_in_parent[v] = cursor[p] - offsets[p];
                child_array[cursor[p]] = v;
                cursor[p] += 1;
            }
        }
        Self {
            offsets,
            child_array,
            pos_in_parent,
        }
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The children of `v`, as a contiguous slice.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.child_array[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of children of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Start of `v`'s slice in the child array — the base index for flat
    /// per-child side arrays allocated with [`CsrChildren::n_edges`]
    /// entries (the pattern the net-worth oracle's prefix/suffix maxima
    /// use).
    pub fn offset(&self, v: usize) -> usize {
        self.offsets[v]
    }

    /// Total number of parent→child edges (= length of the child array).
    pub fn n_edges(&self) -> usize {
        self.child_array.len()
    }

    /// Index of `v` within its parent's child slice (0 for the root and
    /// for non-members).
    pub fn pos_in_parent(&self, v: usize) -> usize {
        self.pos_in_parent[v]
    }

    /// Re-sort every child slice with `better(parent, a, b)` as the
    /// strict-weak ordering, then rebuild `pos_in_parent`. Used by the
    /// universal-tree substrate to put each station's children in
    /// ascending edge-cost order once, for every consumer.
    pub fn sort_children_by<F>(&mut self, mut cmp: F)
    where
        F: FnMut(usize, usize, usize) -> std::cmp::Ordering,
    {
        let n = self.universe();
        for v in 0..n {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            self.child_array[lo..hi].sort_by(|&a, &b| cmp(v, a, b));
            for (j, &c) in self.child_array[lo..hi].iter().enumerate() {
                self.pos_in_parent[c] = j;
            }
        }
    }

    /// Breadth-first order from `root`, visiting each vertex's children
    /// in slice order; `capacity` is a size hint for the output.
    pub fn bfs_order(&self, root: usize, capacity: usize) -> Vec<usize> {
        let mut order = Vec::with_capacity(capacity);
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            queue.extend(self.children(v).iter().copied());
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixture:      0
    ///                      / \
    ///                     1   2
    ///                    / \
    ///                   3   4
    fn fixture() -> RootedTree {
        RootedTree::from_parents(0, vec![None, Some(0), Some(0), Some(1), Some(1), None])
    }

    #[test]
    fn membership_and_counts() {
        let t = fixture();
        assert!(t.contains(0));
        assert!(t.contains(4));
        assert!(!t.contains(5));
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.nodes(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edges_and_children() {
        let t = fixture();
        assert_eq!(t.edges(), vec![(0, 1), (0, 2), (1, 3), (1, 4)]);
        let ch = t.csr_children();
        assert_eq!(ch.children(0), &[1, 2]);
        assert_eq!(ch.children(1), &[3, 4]);
        assert!(ch.children(3).is_empty());
    }

    #[test]
    fn csr_form_matches_the_parent_array() {
        let t = fixture();
        let ch = t.csr_children();
        assert_eq!(ch.universe(), 6);
        assert_eq!(ch.n_edges(), 4);
        assert_eq!(ch.degree(0), 2);
        assert_eq!(ch.degree(5), 0);
        // pos_in_parent inverts the child slices.
        for v in 0..6 {
            for (j, &c) in ch.children(v).iter().enumerate() {
                assert_eq!(t.parent(c), Some(v));
                assert_eq!(ch.pos_in_parent(c), j);
            }
        }
        // offset() bases flat side arrays: slices tile [0, n_edges).
        let mut covered = vec![false; ch.n_edges()];
        for v in 0..6 {
            for j in 0..ch.degree(v) {
                covered[ch.offset(v) + j] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn csr_sort_children_reorders_slices_and_positions() {
        let t = fixture();
        let mut ch = t.csr_children();
        // Sort every slice in descending vertex order.
        ch.sort_children_by(|_, a, b| b.cmp(&a));
        assert_eq!(ch.children(0), &[2, 1]);
        assert_eq!(ch.children(1), &[4, 3]);
        assert_eq!(ch.pos_in_parent(2), 0);
        assert_eq!(ch.pos_in_parent(1), 1);
        assert_eq!(ch.pos_in_parent(4), 0);
        assert_eq!(ch.pos_in_parent(3), 1);
        // BFS through the re-sorted CSR visits children in slice order.
        assert_eq!(ch.bfs_order(0, 5), vec![0, 2, 1, 4, 3]);
    }

    #[test]
    fn paths_and_depths() {
        let t = fixture();
        assert_eq!(t.path_from_root(4), vec![0, 1, 4]);
        assert_eq!(t.depth(4), 2);
        assert_eq!(t.depth(0), 0);
    }

    #[test]
    fn bfs_starts_at_root_and_respects_levels() {
        let t = fixture();
        let order = t.bfs_order();
        assert_eq!(order[0], 0);
        let pos = |v: usize| {
            order
                .iter()
                .position(|&x| x == v)
                .expect("BFS order visits every vertex of the fixture")
        };
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4) || pos(1) < pos(4));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn subtree_collects_descendants() {
        let t = fixture();
        assert_eq!(t.subtree(1), vec![1, 3, 4]);
        assert_eq!(t.subtree(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.subtree(2), vec![2]);
    }

    #[test]
    fn steiner_subtree_is_union_of_root_paths() {
        let t = fixture();
        let sub = t.steiner_subtree(&[3]);
        assert_eq!(sub.nodes(), vec![0, 1, 3]);
        let sub2 = t.steiner_subtree(&[3, 2]);
        assert_eq!(sub2.nodes(), vec![0, 1, 2, 3]);
        let empty = t.steiner_subtree(&[]);
        assert_eq!(empty.nodes(), vec![0]);
    }

    #[test]
    fn attach_grows_tree() {
        let mut t = RootedTree::new(4, 2);
        t.attach(2, 0);
        t.attach(0, 1);
        assert_eq!(t.path_from_root(1), vec![2, 0, 1]);
        assert!(!t.contains(3));
    }

    #[test]
    fn from_undirected_edges_orients_toward_root() {
        let t = RootedTree::from_undirected_edges(5, 2, &[(0, 1), (1, 2), (3, 2)]);
        assert_eq!(t.parent(1), Some(2));
        assert_eq!(t.parent(0), Some(1));
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.root(), 2);
    }

    #[test]
    fn from_undirected_edges_drops_other_components() {
        let t = RootedTree::from_undirected_edges(5, 0, &[(0, 1), (3, 4)]);
        assert!(t.contains(1));
        assert!(!t.contains(3));
        assert!(!t.contains(4));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_rejected() {
        // 1 -> 2 -> 3 -> 1 cycle detached from root 0.
        let _ = RootedTree::from_parents(0, vec![None, Some(3), Some(1), Some(2)]);
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn double_attach_rejected() {
        let mut t = RootedTree::new(3, 0);
        t.attach(0, 1);
        t.attach(0, 1);
    }
}
