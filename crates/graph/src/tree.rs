//! Rooted trees over a vertex universe `0..n`.
//!
//! Multicast trees `T(R)`, universal broadcast trees (§2.1), Steiner trees
//! and the directed trees produced by the MEMT↔NWST reduction (§2.2.1) are
//! all rooted trees that span a *subset* of the vertices, so membership is
//! explicit: a vertex is in the tree iff it is the root or has a parent.

/// A rooted tree spanning a subset of `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct RootedTree {
    n: usize,
    root: usize,
    parent: Vec<Option<usize>>,
}

impl RootedTree {
    /// Tree containing only the root.
    pub fn new(n: usize, root: usize) -> Self {
        assert!(root < n);
        Self {
            n,
            root,
            parent: vec![None; n],
        }
    }

    /// Build from a parent array (`parent[root]` must be `None`; vertices
    /// with `None` other than the root are simply not in the tree).
    /// Panics on cycles or edges into absent parents.
    pub fn from_parents(root: usize, parent: Vec<Option<usize>>) -> Self {
        let t = Self {
            n: parent.len(),
            root,
            parent,
        };
        assert!(t.parent[root].is_none(), "root cannot have a parent");
        // Validate: every member's parent chain reaches the root acyclically.
        for v in 0..t.n {
            if v != root && t.parent[v].is_some() {
                let mut cur = v;
                let mut steps = 0;
                while let Some(p) = t.parent[cur] {
                    cur = p;
                    steps += 1;
                    assert!(steps <= t.n, "cycle detected in parent array");
                }
                assert_eq!(cur, root, "vertex {v} does not reach the root");
            }
        }
        t
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The root vertex.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `v` (None for the root or for non-members).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// True if `v` belongs to the tree.
    pub fn contains(&self, v: usize) -> bool {
        v == self.root || self.parent[v].is_some()
    }

    /// Attach `child` under `parent`; `parent` must already be a member.
    pub fn attach(&mut self, parent: usize, child: usize) {
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert!(!self.contains(child), "child {child} already in tree");
        assert!(child != self.root);
        self.parent[child] = Some(parent);
    }

    /// Members of the tree, ascending.
    pub fn nodes(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| self.contains(v)).collect()
    }

    /// Number of members.
    pub fn node_count(&self) -> usize {
        (0..self.n).filter(|&v| self.contains(v)).count()
    }

    /// Directed edges `(parent, child)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        (0..self.n)
            .filter_map(|v| self.parent[v].map(|p| (p, v)))
            .collect()
    }

    /// Children lists indexed by vertex.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.n];
        for v in 0..self.n {
            if let Some(p) = self.parent[v] {
                ch[p].push(v);
            }
        }
        ch
    }

    /// Path from the root to `v` (inclusive). Panics if `v` is absent.
    pub fn path_from_root(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v), "vertex {v} not in tree");
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Breadth-first order from the root; also the "BFS numbering" used by
    /// the reduction of §2.2.1 to orient NWST solutions into multicast trees.
    pub fn bfs_order(&self) -> Vec<usize> {
        let ch = self.children();
        let mut order = Vec::with_capacity(self.node_count());
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &ch[v] {
                queue.push_back(c);
            }
        }
        order
    }

    /// Vertices of the subtree rooted at `v` (including `v`).
    pub fn subtree(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v));
        let ch = self.children();
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(ch[u].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: usize) -> usize {
        self.path_from_root(v).len() - 1
    }

    /// The sub-tree of `self` induced by the union of root-paths of
    /// `targets` — exactly the paper's `T(R)` obtained from a universal tree
    /// `T(S\{s})` (§2.1): keep a vertex iff it lies on a path from the root
    /// to some target.
    pub fn steiner_subtree(&self, targets: &[usize]) -> RootedTree {
        let mut keep = vec![false; self.n];
        keep[self.root] = true;
        for &t in targets {
            for v in self.path_from_root(t) {
                keep[v] = true;
            }
        }
        let parent = (0..self.n)
            .map(|v| if keep[v] { self.parent[v] } else { None })
            .collect();
        RootedTree::from_parents(self.root, parent)
    }

    /// Root an undirected edge set at `root` (the edges must form a forest;
    /// only the component containing `root` is kept).
    pub fn from_undirected_edges(n: usize, root: usize, edges: &[(usize, usize)]) -> RootedTree {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut parent = vec![None; n];
        let mut visited = vec![false; n];
        visited[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = Some(v);
                    queue.push_back(u);
                }
            }
        }
        RootedTree::from_parents(root, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixture:      0
    ///                      / \
    ///                     1   2
    ///                    / \
    ///                   3   4
    fn fixture() -> RootedTree {
        RootedTree::from_parents(0, vec![None, Some(0), Some(0), Some(1), Some(1), None])
    }

    #[test]
    fn membership_and_counts() {
        let t = fixture();
        assert!(t.contains(0));
        assert!(t.contains(4));
        assert!(!t.contains(5));
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.nodes(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edges_and_children() {
        let t = fixture();
        assert_eq!(t.edges(), vec![(0, 1), (0, 2), (1, 3), (1, 4)]);
        let ch = t.children();
        assert_eq!(ch[0], vec![1, 2]);
        assert_eq!(ch[1], vec![3, 4]);
        assert!(ch[3].is_empty());
    }

    #[test]
    fn paths_and_depths() {
        let t = fixture();
        assert_eq!(t.path_from_root(4), vec![0, 1, 4]);
        assert_eq!(t.depth(4), 2);
        assert_eq!(t.depth(0), 0);
    }

    #[test]
    fn bfs_starts_at_root_and_respects_levels() {
        let t = fixture();
        let order = t.bfs_order();
        assert_eq!(order[0], 0);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4) || pos(1) < pos(4));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn subtree_collects_descendants() {
        let t = fixture();
        assert_eq!(t.subtree(1), vec![1, 3, 4]);
        assert_eq!(t.subtree(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.subtree(2), vec![2]);
    }

    #[test]
    fn steiner_subtree_is_union_of_root_paths() {
        let t = fixture();
        let sub = t.steiner_subtree(&[3]);
        assert_eq!(sub.nodes(), vec![0, 1, 3]);
        let sub2 = t.steiner_subtree(&[3, 2]);
        assert_eq!(sub2.nodes(), vec![0, 1, 2, 3]);
        let empty = t.steiner_subtree(&[]);
        assert_eq!(empty.nodes(), vec![0]);
    }

    #[test]
    fn attach_grows_tree() {
        let mut t = RootedTree::new(4, 2);
        t.attach(2, 0);
        t.attach(0, 1);
        assert_eq!(t.path_from_root(1), vec![2, 0, 1]);
        assert!(!t.contains(3));
    }

    #[test]
    fn from_undirected_edges_orients_toward_root() {
        let t = RootedTree::from_undirected_edges(5, 2, &[(0, 1), (1, 2), (3, 2)]);
        assert_eq!(t.parent(1), Some(2));
        assert_eq!(t.parent(0), Some(1));
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.root(), 2);
    }

    #[test]
    fn from_undirected_edges_drops_other_components() {
        let t = RootedTree::from_undirected_edges(5, 0, &[(0, 1), (3, 4)]);
        assert!(t.contains(1));
        assert!(!t.contains(3));
        assert!(!t.contains(4));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_rejected() {
        // 1 -> 2 -> 3 -> 1 cycle detached from root 0.
        let _ = RootedTree::from_parents(0, vec![None, Some(3), Some(1), Some(2)]);
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn double_attach_rejected() {
        let mut t = RootedTree::new(3, 0);
        t.attach(0, 1);
        t.attach(0, 1);
    }
}
