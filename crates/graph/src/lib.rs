//! # wmcs-graph — graph algorithm substrate
//!
//! From-scratch graph machinery for the wireless multicast cost-sharing
//! reproduction (Bilò et al., SPAA 2004 / TCS 2006):
//!
//! * [`dense::CostMatrix`] — the paper's symmetric cost graph `(S, c)`;
//! * [`union_find::UnionFind`], [`heap::IndexedMinHeap`] — classic
//!   work-horses;
//! * [`mst`] — Prim/Kruskal spanning trees (MST broadcast heuristic, KMB);
//! * [`shortest_path`] — Dijkstra, shortest-path trees, metric closure;
//! * [`spatial`] — canonical SPT/MST growth: a dense `O(n²)` reference
//!   and a grid-index candidate-stream path that matches it byte for
//!   byte while scaling to 10⁶ stations;
//! * [`tree::RootedTree`] — rooted multicast/universal trees with the
//!   `T(R)` (union-of-root-paths) operation of §2.1;
//! * [`steiner`] — KMB 2-approximation + exact Dreyfus–Wagner reference;
//! * [`moat`] — Goemans–Williamson moat growing with per-terminal dual
//!   shares, the engine of the Jain–Vazirani 2-BB cost-sharing family used
//!   by Theorem 3.6.

// Index loops over multiple parallel arrays are idiomatic in this
// numeric code; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Every public item carries rustdoc: substrate crates feed the
// mechanism layers above them, and undocumented invariants become
// silent contract drift there.
#![deny(missing_docs)]

pub mod dense;
pub mod heap;
pub mod jv_shares;
pub mod moat;
pub mod mst;
pub mod shortest_path;
pub mod spatial;
pub mod steiner;
pub mod tree;
pub mod union_find;

pub use dense::CostMatrix;
pub use heap::IndexedMinHeap;
pub use jv_shares::{jv_steiner_shares, JvShares, JvSharing};
pub use moat::{moat_growing, MoatResult};
pub use mst::{kruskal, prim_mst, prim_mst_subset, SpanningTree};
pub use shortest_path::{dijkstra, MetricClosure, ShortestPaths};
pub use spatial::{grow_tree_dense, grow_tree_spatial, GrowthKind};
pub use steiner::{dreyfus_wagner_cost, kmb_steiner, SteinerTree};
pub use tree::{CsrChildren, RootedTree};
pub use union_find::UnionFind;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use wmcs_geom::{approx_eq, Point, PowerModel};

    #[test]
    fn pipeline_points_to_steiner_tree() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(2.0, 0.0),
            Point::xy(0.0, 2.0),
            Point::xy(2.0, 2.0),
            Point::xy(1.0, 1.0),
        ];
        let m = CostMatrix::from_points(&pts, &PowerModel::linear());
        let st = kmb_steiner(&m, &[0, 1, 2, 3]);
        let opt = dreyfus_wagner_cost(&m, &[0, 1, 2, 3]);
        assert!(st.cost <= 2.0 * opt + 1e-9);
        // The central hub makes the optimal tree the 4-star through vertex 4.
        assert!(approx_eq(opt, 4.0 * std::f64::consts::SQRT_2));
    }

    #[test]
    fn mst_vs_spt_differ_on_asymmetric_instances() {
        let m = CostMatrix::from_edges(3, &[(0, 1, 2.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let mst = prim_mst(&m);
        assert!(approx_eq(mst.cost, 4.0));
        let spt = dijkstra(&m, 0).tree();
        // SPT from 0 uses the direct 0-2 edge (3 < 4).
        assert_eq!(spt.parent(2), Some(0));
    }
}
