//! Edge-weighted Steiner trees: the KMB 2-approximation and the exact
//! Dreyfus–Wagner dynamic program.
//!
//! §3.2 of the paper builds its 2(3^d − 1)-BB mechanisms on Steiner trees in
//! the cost graph (Lemma 3.5, Theorem 3.6); \[29\]'s 2-BB methods start from
//! the classical MST-based Steiner approximation \[34\] = Kou–Markowsky–Berman.
//! The exact DP is the optimum reference for the approximation-ratio tables.

use crate::dense::CostMatrix;
use crate::mst::{kruskal, prim_mst_subset};
use crate::shortest_path::MetricClosure;

/// A Steiner tree as an undirected edge list in the original graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// Undirected edges `(u, v)` with `u < v`.
    pub edges: Vec<(usize, usize)>,
    /// Total edge cost.
    pub cost: f64,
}

impl SteinerTree {
    /// Vertices touched by the tree.
    pub fn nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Kou–Markowsky–Berman 2-approximate Steiner tree spanning `terminals`.
///
/// 1. metric closure on the terminals, 2. MST of the closure, 3. expand
///    closure edges into shortest paths, 4. MST of the union subgraph,
///    5. prune non-terminal leaves.
pub fn kmb_steiner(costs: &CostMatrix, terminals: &[usize]) -> SteinerTree {
    assert!(!terminals.is_empty());
    if terminals.len() == 1 {
        return SteinerTree {
            edges: vec![],
            cost: 0.0,
        };
    }
    let n = costs.len();
    let closure = MetricClosure::of(costs);
    // MST of the terminal closure graph.
    let mut closure_edges: Vec<(usize, usize, f64)> = Vec::new();
    for (a, &u) in terminals.iter().enumerate() {
        for &v in &terminals[a + 1..] {
            let w = closure.dist[u][v];
            assert!(w.is_finite(), "terminals {u} and {v} are disconnected");
            closure_edges.push((u, v, w));
        }
    }
    // Work in terminal-index space for kruskal. A dense station → terminal
    // index table keeps the reindexing free of hashed containers (the
    // `nondeterministic-iteration` audit rule) and is O(n) on graphs whose
    // cost matrix is already O(n²).
    let mut tidx = vec![usize::MAX; n];
    for (i, &t) in terminals.iter().enumerate() {
        tidx[t] = i;
    }
    let reindexed: Vec<(usize, usize, f64)> = closure_edges
        .iter()
        .map(|&(u, v, w)| (tidx[u], tidx[v], w))
        .collect();
    let closure_mst = kruskal(terminals.len(), &reindexed);
    // Expand into original-graph paths; collect the union of vertices.
    let mut used = vec![false; n];
    for &(a, b) in &closure_mst.edges {
        for v in closure.expand_path(terminals[a], terminals[b]) {
            used[v] = true;
        }
    }
    let union: Vec<usize> = (0..n).filter(|&v| used[v]).collect();
    // MST of the induced union subgraph, then prune non-terminal leaves.
    let sub_mst = prim_mst_subset(costs, &union);
    prune_non_terminal_leaves(costs, sub_mst.edges, terminals)
}

/// Iteratively remove degree-1 vertices that are not terminals.
fn prune_non_terminal_leaves(
    costs: &CostMatrix,
    mut edges: Vec<(usize, usize)>,
    terminals: &[usize],
) -> SteinerTree {
    let n = costs.len();
    let mut is_terminal = vec![false; n];
    for &t in terminals {
        is_terminal[t] = true;
    }
    loop {
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let before = edges.len();
        edges.retain(|&(u, v)| {
            let u_leaf = degree[u] == 1 && !is_terminal[u];
            let v_leaf = degree[v] == 1 && !is_terminal[v];
            !(u_leaf || v_leaf)
        });
        if edges.len() == before {
            break;
        }
    }
    let cost = costs.total_cost(&edges);
    SteinerTree { edges, cost }
}

/// Exact minimum Steiner tree cost by the Dreyfus–Wagner dynamic program.
/// `O(3^k n + 2^k n^2)` — intended for `k ≤ ~12` terminals as the optimum
/// reference in the benches.
pub fn dreyfus_wagner_cost(costs: &CostMatrix, terminals: &[usize]) -> f64 {
    let k = terminals.len();
    assert!(k <= 20, "Dreyfus–Wagner is exponential in |terminals|");
    if k <= 1 {
        return 0.0;
    }
    let n = costs.len();
    let closure = MetricClosure::of(costs);
    let d = &closure.dist;
    let full: usize = (1 << k) - 1;
    // dp[mask][v] = min cost of a tree connecting terminal set `mask` ∪ {v}.
    let mut dp = vec![vec![f64::INFINITY; n]; 1 << k];
    for (i, &t) in terminals.iter().enumerate() {
        for v in 0..n {
            dp[1 << i][v] = d[t][v];
        }
    }
    for mask in 1..=full {
        if mask.count_ones() <= 1 {
            continue;
        }
        // Merge two sub-trees at v.
        for v in 0..n {
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                if sub < mask - sub {
                    break; // each unordered pair once
                }
                let a = dp[sub][v];
                let b = dp[mask ^ sub][v];
                if a + b < dp[mask][v] {
                    dp[mask][v] = a + b;
                }
                sub = (sub - 1) & mask;
            }
        }
        // Relax through the metric closure: dp[mask][v] = min_u dp[mask][u] + d(u, v).
        // One Bellman-style pass over the closure suffices because d is metric.
        let snapshot: Vec<f64> = dp[mask].clone();
        for v in 0..n {
            let mut best = snapshot[v];
            for u in 0..n {
                let c = snapshot[u] + d[u][v];
                if c < best {
                    best = c;
                }
            }
            dp[mask][v] = best;
        }
    }
    terminals
        .iter()
        .map(|&t| dp[full][t])
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{approx_eq, Point, PowerModel};

    /// The classic Steiner example: 3 terminals at corners of an equilateral
    /// triangle with a central hub vertex; the hub tree beats the MST.
    fn hub_instance() -> (CostMatrix, Vec<usize>) {
        // Terminals 0, 1, 2 pairwise distance 2; hub 3 at distance 1.1 from each.
        let m = CostMatrix::from_edges(
            4,
            &[
                (0, 1, 2.0),
                (0, 2, 2.0),
                (1, 2, 2.0),
                (0, 3, 1.1),
                (1, 3, 1.1),
                (2, 3, 1.1),
            ],
        );
        (m, vec![0, 1, 2])
    }

    #[test]
    fn exact_uses_hub() {
        let (m, t) = hub_instance();
        assert!(approx_eq(dreyfus_wagner_cost(&m, &t), 3.3));
    }

    #[test]
    fn kmb_is_within_factor_two_on_hub() {
        let (m, t) = hub_instance();
        let kmb = kmb_steiner(&m, &t);
        let opt = dreyfus_wagner_cost(&m, &t);
        assert!(kmb.cost >= opt - 1e-9);
        assert!(kmb.cost <= 2.0 * opt + 1e-9);
    }

    #[test]
    fn two_terminals_reduce_to_shortest_path() {
        let m = CostMatrix::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0)]);
        let st = kmb_steiner(&m, &[0, 2]);
        assert!(approx_eq(st.cost, 2.0));
        assert!(approx_eq(dreyfus_wagner_cost(&m, &[0, 2]), 2.0));
    }

    #[test]
    fn single_terminal_is_free() {
        let (m, _) = hub_instance();
        assert_eq!(kmb_steiner(&m, &[1]).cost, 0.0);
        assert_eq!(dreyfus_wagner_cost(&m, &[1]), 0.0);
    }

    #[test]
    fn steiner_tree_nodes_contains_terminals() {
        let (m, t) = hub_instance();
        let st = kmb_steiner(&m, &t);
        let nodes = st.nodes();
        for ti in t {
            assert!(nodes.contains(&ti));
        }
    }

    #[test]
    fn pruning_removes_dangling_paths() {
        // Star: terminal 0 - hub 1 - terminal 2, plus a dangling 1-3 edge
        // that an unpruned union could retain.
        let m = CostMatrix::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (1, 3, 0.1)]);
        let st = kmb_steiner(&m, &[0, 2]);
        assert!(!st.nodes().contains(&3));
        assert!(approx_eq(st.cost, 2.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn kmb_within_2x_of_exact_on_random_euclidean(seed in 0u64..1000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..9);
            let k = rng.gen_range(2usize..=n.min(5));
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
            let terminals: Vec<usize> = (0..k).collect();
            let opt = dreyfus_wagner_cost(&m, &terminals);
            let apx = kmb_steiner(&m, &terminals);
            prop_assert!(apx.cost + 1e-9 >= opt,
                "approximation beat the optimum: {} < {}", apx.cost, opt);
            prop_assert!(apx.cost <= 2.0 * opt + 1e-6,
                "KMB exceeded factor 2: {} vs {}", apx.cost, opt);
        }

        #[test]
        fn exact_cost_is_monotone_in_terminal_set(seed in 0u64..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..8);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::linear());
            let small: Vec<usize> = vec![0, 1];
            let large: Vec<usize> = vec![0, 1, 2, 3];
            prop_assert!(
                dreyfus_wagner_cost(&m, &small) <= dreyfus_wagner_cost(&m, &large) + 1e-9
            );
        }
    }
}
