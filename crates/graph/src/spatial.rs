//! Canonical universal-tree growth: a dense `O(n²)` reference and an
//! `~O(n log n)` spatial-index path that is **byte-identical** to it.
//!
//! [`crate::shortest_path::dijkstra`] and [`crate::mst::prim_mst`] leave
//! their tie-breaking to heap pop order, so no sub-quadratic
//! reimplementation could promise the same parent array bit for bit.
//! This module instead fixes one *canonical* growth process per tree
//! kind and implements it twice:
//!
//! * [`grow_tree_dense`] — an `O(n²)` scan (no heap). Each step selects
//!   the non-finalised vertex minimising the lexicographic triple
//!   `(key, via, vertex)` — `key` is the tentative distance (SPT) or the
//!   connecting edge cost (MST), `via` the smallest finalised vertex
//!   achieving it — then relaxes its neighbours, preferring a smaller
//!   `via` on exact key ties.
//! * [`grow_tree_spatial`] — the same abstract process run lazily over a
//!   [`GridIndex`]: every finalised vertex owns a *candidate stream*
//!   that emits its neighbours in ascending `(cost, id)` order by
//!   expanding grid shells, and a global priority queue of per-stream
//!   head candidates `(key, via, vertex)` replays exactly the dense
//!   selection order. Keys are computed with the identical float
//!   expressions (`cost` from the same [`PowerModel::cost`] calls,
//!   `dist + cost` sums in the same order), so the two paths agree in
//!   every byte of the parent array — the contract experiment T13 and
//!   the `builder_props` proptests gate.
//!
//! Equivalence argument (why lazy = scan): the global queue pops in
//! ascending `(key, via, vertex)` order, and a popped head immediately
//! re-arms its stream, so whenever a candidate `(k, u, y)` would be the
//! dense scan's selection, every stream candidate lexicographically
//! smaller has already been popped — in particular `u`'s stream has
//! already emitted `y`, and no unexpanded shell can hide a smaller
//! candidate because shell lower bounds are conservative
//! ([`GridIndex::shell_min_dist`]) and [`PowerModel::cost_of_distance`]
//! is monotone. The argument needs no genericity assumptions: duplicate
//! points (zero-cost edges) and exact float key ties replay identically
//! on both sides because both sides break them with the same total
//! order.
//!
//! Two prunings keep the replay cheap without touching that order:
//!
//! * **Finalised targets are skipped.** A candidate aimed at an
//!   already-finalised vertex would pop as a no-op, so streams drop
//!   such points at shell expansion and again at the local heap top.
//! * **Shell expansion is marker-driven.** When a stream cannot yet
//!   certify its local head (an unexpanded shell might contain
//!   something cheaper), it queues a *bound marker* at the shell's
//!   lower-bound key instead of expanding eagerly; the shell is
//!   expanded only when that marker reaches the global minimum.
//!   Markers sort after real candidates at an equal `(key, via)` pair
//!   (their vertex slot is `u32::MAX`), and a marker's key is a lower
//!   bound on everything its expansion can produce, so deferral never
//!   changes which candidate pops next — only how much work was spent
//!   to certify it.

use crate::dense::CostMatrix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wmcs_geom::{GridIndex, Point, PowerModel};

/// Which canonical universal tree to grow from the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthKind {
    /// Shortest-path tree: keys are tentative source distances.
    ShortestPath,
    /// Minimum spanning tree (Prim): keys are connecting edge costs.
    Mst,
}

/// Total-order wrapper for finite non-negative keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Canonical dense growth: `O(n²)` scan over a cost matrix. Returns the
/// parent array (`None` exactly at `source`). Panics if the finite-cost
/// graph does not span all vertices from `source`.
pub fn grow_tree_dense(costs: &CostMatrix, source: usize, kind: GrowthKind) -> Vec<Option<usize>> {
    let n = costs.len();
    assert!(source < n, "source out of range");
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut key = vec![f64::INFINITY; n];
    let mut via = vec![usize::MAX; n];
    let mut done = vec![false; n];
    key[source] = 0.0;
    via[source] = source;
    for _ in 0..n {
        // Select the non-finalised vertex with the lexicographically
        // smallest (key, via, vertex); ascending scan makes the vertex
        // id the final tie level for free.
        let mut best: Option<usize> = None;
        for y in 0..n {
            if done[y] || !key[y].is_finite() {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => match key[y].total_cmp(&key[b]) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => via[y] < via[b],
                },
            };
            if better {
                best = Some(y);
            }
        }
        let y = best.expect("tree growth requires a graph connected from the source");
        done[y] = true;
        if y != source {
            parent[y] = Some(via[y]);
        }
        for z in 0..n {
            if done[z] || z == y {
                continue;
            }
            let c = costs.cost(y, z);
            if !c.is_finite() {
                continue;
            }
            let k = match kind {
                GrowthKind::ShortestPath => key[y] + c,
                GrowthKind::Mst => c,
            };
            if k < key[z] {
                key[z] = k;
                via[z] = y;
            } else if k == key[z] && y < via[z] {
                via[z] = y;
            }
        }
    }
    parent
}

/// What a candidate stream offers the global queue next.
enum StreamStep {
    /// A concrete neighbour: the cheapest not-yet-finalised expanded
    /// candidate, certainly no worse than anything unexpanded.
    Candidate(f64, u32),
    /// No emittable candidate yet; the unexpanded shells are bounded
    /// below by this cost. The caller queues a *bound marker* and the
    /// stream only expands when that marker reaches the global minimum.
    Bound(f64),
    /// Exhausted: every other point was emitted or finalised.
    Dead,
}

/// A lazy neighbour stream: emits the not-yet-finalised points in
/// ascending `(cost, id)` order by expanding grid shells on demand,
/// holding the already-expanded candidates in a local min-heap.
///
/// Two laziness levels keep total work near-linear on the swept
/// layouts: finalised vertices are skipped (at insertion and again at
/// the heap top, for entries that were finalised while pending), and a
/// shell is only expanded when the stream's lower bound is the *global*
/// queue minimum — not eagerly whenever the local head is uncertain.
#[derive(Debug)]
struct NeighborStream {
    ring: usize,
    exhausted: bool,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
}

impl NeighborStream {
    fn new() -> Self {
        Self {
            ring: 0,
            exhausted: false,
            heap: BinaryHeap::new(),
        }
    }

    /// The stream's next move, without expanding anything.
    fn step(&mut self, idx: &GridIndex, model: &PowerModel, done: &[bool], u: usize) -> StreamStep {
        loop {
            let top = self.heap.peek().map(|&Reverse((OrdF64(c), y))| (c, y));
            if let Some((_, y)) = top {
                // Finalised while pending in this local heap: discard.
                if done[y as usize] {
                    self.heap.pop();
                    continue;
                }
            }
            if self.exhausted {
                return match top {
                    Some((c, y)) => {
                        self.heap.pop();
                        StreamStep::Candidate(c, y)
                    }
                    None => StreamStep::Dead,
                };
            }
            // A held candidate may only be emitted once it is strictly
            // cheaper than anything an unexpanded shell could contain
            // (on an exact cost tie, an unseen point with a smaller id
            // could still exist — defer to the bound marker).
            let bound = model.cost_of_distance(idx.shell_min_dist(u, self.ring));
            return match top {
                Some((c, y)) if c < bound => {
                    self.heap.pop();
                    StreamStep::Candidate(c, y)
                }
                _ => StreamStep::Bound(bound),
            };
        }
    }

    /// Expand the next shell, inserting its not-yet-finalised points.
    fn expand(
        &mut self,
        idx: &GridIndex,
        points: &[Point],
        model: &PowerModel,
        done: &[bool],
        u: usize,
    ) {
        debug_assert!(!self.exhausted, "markers are only queued for live streams");
        idx.for_shell(u, self.ring, |p| {
            if p as usize != u && !done[p as usize] {
                let c = model.cost(&points[u], &points[p as usize]);
                self.heap.push(Reverse((OrdF64(c), p)));
            }
        });
        if self.ring >= idx.last_shell(u) {
            self.exhausted = true;
        }
        self.ring += 1;
    }
}

/// Canonical spatial growth over a Euclidean point set: the same
/// abstract process as [`grow_tree_dense`] on
/// `CostMatrix::from_points(points, model)`, run in `~O(n log n)` for
/// the layout families the workspace sweeps, without materialising any
/// `O(n²)` state. Returns a byte-identical parent array.
pub fn grow_tree_spatial(
    points: &[Point],
    model: &PowerModel,
    source: usize,
    kind: GrowthKind,
) -> Vec<Option<usize>> {
    let n = points.len();
    assert!(source < n, "source out of range");
    u32::try_from(n).expect("spatial growth point count fits in u32");
    let mut parent: Vec<Option<usize>> = vec![None; n];
    if n == 1 {
        return parent;
    }
    let idx = GridIndex::new(points);
    let mut dist = vec![0.0f64; n];
    let mut done = vec![false; n];
    let mut streams: Vec<Option<NeighborStream>> = (0..n).map(|_| None).collect();
    // Global queue of per-stream entries (key, via, vertex): real
    // candidates carry the target's id, bound markers carry MARKER.
    // MARKER exceeds every vertex id, so at an exact (key, via) tie the
    // real candidate pops first — deferral never reorders selections.
    const MARKER: u32 = u32::MAX;
    let mut pq: BinaryHeap<Reverse<(OrdF64, u32, u32)>> = BinaryHeap::new();

    let arm = |v: usize,
               streams: &mut Vec<Option<NeighborStream>>,
               pq: &mut BinaryHeap<Reverse<(OrdF64, u32, u32)>>,
               dist: &[f64],
               done: &[bool]| {
        let s = streams[v].get_or_insert_with(NeighborStream::new);
        let (c, y) = match s.step(&idx, model, done, v) {
            StreamStep::Candidate(c, y) => (c, y),
            StreamStep::Bound(b) => (b, MARKER),
            StreamStep::Dead => return,
        };
        let k = match kind {
            GrowthKind::ShortestPath => dist[v] + c,
            GrowthKind::Mst => c,
        };
        pq.push(Reverse((
            OrdF64(k),
            u32::try_from(v).expect("vertex id fits in u32"),
            y,
        )));
    };

    done[source] = true;
    let mut finalized = 1usize;
    arm(source, &mut streams, &mut pq, &dist, &done);

    while finalized < n {
        let Reverse((OrdF64(k), u, y)) = pq
            .pop()
            .expect("complete Euclidean graphs keep a candidate pending until spanning");
        let u = u as usize;
        if y == MARKER {
            // The stream's unexpanded bound reached the global minimum:
            // now (and only now) expand the next shell and re-offer.
            streams[u]
                .as_mut()
                .expect("markers come from armed streams")
                .expand(&idx, points, model, &done, u);
            arm(u, &mut streams, &mut pq, &dist, &done);
            continue;
        }
        let y = y as usize;
        // Re-arm the popped stream so its next head re-enters the queue.
        arm(u, &mut streams, &mut pq, &dist, &done);
        if done[y] {
            continue;
        }
        done[y] = true;
        parent[y] = Some(u);
        dist[y] = k;
        finalized += 1;
        arm(y, &mut streams, &mut pq, &dist, &done);
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::prim_mst;
    use crate::shortest_path::dijkstra;
    use crate::tree::RootedTree;

    fn deterministic_points(seed: u64, n: usize, dim: usize) -> Vec<Point> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 * 10.0
        };
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| next()).collect()))
            .collect()
    }

    #[test]
    fn spatial_equals_dense_bit_for_bit() {
        for dim in [1usize, 2, 3] {
            for seed in 0..6u64 {
                let n = 40 + 17 * (seed as usize % 3);
                let pts = deterministic_points(seed * 77 + dim as u64, n, dim);
                let model = PowerModel::with_alpha(if seed % 2 == 0 { 2.0 } else { 4.0 });
                let m = CostMatrix::from_points(&pts, &model);
                for kind in [GrowthKind::ShortestPath, GrowthKind::Mst] {
                    let dense = grow_tree_dense(&m, 0, kind);
                    let spatial = grow_tree_spatial(&pts, &model, 0, kind);
                    assert_eq!(dense, spatial, "d = {dim}, seed = {seed}, {kind:?}");
                }
            }
        }
    }

    #[test]
    fn spatial_equals_dense_with_duplicate_points() {
        // Zero-cost edges: the total order must still replay identically.
        let mut pts = deterministic_points(5, 30, 2);
        pts[7] = pts[3].clone();
        pts[19] = pts[3].clone();
        pts[11] = pts[22].clone();
        let model = PowerModel::free_space();
        let m = CostMatrix::from_points(&pts, &model);
        for kind in [GrowthKind::ShortestPath, GrowthKind::Mst] {
            assert_eq!(
                grow_tree_dense(&m, 0, kind),
                grow_tree_spatial(&pts, &model, 0, kind),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn dense_spt_matches_dijkstra_distances() {
        let pts = deterministic_points(11, 60, 2);
        let model = PowerModel::free_space();
        let m = CostMatrix::from_points(&pts, &model);
        let parent = grow_tree_dense(&m, 0, GrowthKind::ShortestPath);
        let tree = RootedTree::from_parents(0, parent);
        let sp = dijkstra(&m, 0);
        for v in 0..60 {
            // Sum the canonical tree's root path; it must realise the
            // Dijkstra distance (up to fp association on the path sum).
            let path = tree.path_from_root(v);
            let mut d = 0.0;
            for w in path.windows(2) {
                d += m.cost(w[0], w[1]);
            }
            assert!((d - sp.dist[v]).abs() <= 1e-9 * (1.0 + sp.dist[v]));
        }
    }

    #[test]
    fn dense_mst_matches_prim_cost() {
        let pts = deterministic_points(23, 50, 2);
        let model = PowerModel::with_alpha(4.0);
        let m = CostMatrix::from_points(&pts, &model);
        let parent = grow_tree_dense(&m, 0, GrowthKind::Mst);
        let cost: f64 = (0..50)
            .filter_map(|v| parent[v].map(|p| m.cost(p, v)))
            .sum();
        let reference = prim_mst(&m).cost;
        assert!((cost - reference).abs() <= 1e-9 * (1.0 + reference));
    }

    #[test]
    fn nonzero_source_and_tiny_inputs() {
        for n in [1usize, 2, 3] {
            let pts = deterministic_points(3, n, 2);
            let model = PowerModel::linear();
            let m = CostMatrix::from_points(&pts, &model);
            for kind in [GrowthKind::ShortestPath, GrowthKind::Mst] {
                let source = n - 1;
                let dense = grow_tree_dense(&m, source, kind);
                let spatial = grow_tree_spatial(&pts, &model, source, kind);
                assert_eq!(dense, spatial);
                assert!(dense[source].is_none());
                assert_eq!(dense.iter().filter(|p| p.is_some()).count(), n - 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn dense_growth_rejects_disconnected_graphs() {
        let m = CostMatrix::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let _ = grow_tree_dense(&m, 0, GrowthKind::ShortestPath);
    }
}
