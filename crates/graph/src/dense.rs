//! Dense symmetric cost matrices.
//!
//! The paper's cost graph `(S, c)` is a complete graph with a symmetric
//! transmission-cost function (§1); a dense `n × n` matrix is the natural
//! representation. Sparse graphs (the NWST instances of §2.2) use
//! `f64::INFINITY` entries for absent edges.

use wmcs_geom::{Point, PowerModel};

/// Symmetric cost matrix over vertices `0..n`, diagonal fixed at 0 and
/// missing edges stored as `f64::INFINITY`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    n: usize,
    /// Row-major `n * n` storage.
    c: Vec<f64>,
}

impl CostMatrix {
    /// Matrix with no edges (all off-diagonal entries infinite).
    pub fn disconnected(n: usize) -> Self {
        let mut c = vec![f64::INFINITY; n * n];
        for i in 0..n {
            c[i * n + i] = 0.0;
        }
        Self { n, c }
    }

    /// Complete matrix from a symmetric cost closure.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::disconnected(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Complete Euclidean power-cost matrix: `c(i, j) = κ · dist(i, j)^α`.
    pub fn from_points(points: &[Point], model: &PowerModel) -> Self {
        Self::from_fn(points.len(), |i, j| model.cost(&points[i], &points[j]))
    }

    /// Matrix from an explicit undirected edge list; absent edges stay
    /// infinite, duplicate edges keep the cheapest cost.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut m = Self::disconnected(n);
        for &(u, v, w) in edges {
            if w < m.cost(u, v) {
                m.set(u, v, w);
            }
        }
        m
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cost of the undirected edge `{i, j}` (0 when `i == j`, infinite when
    /// absent).
    #[inline]
    pub fn cost(&self, i: usize, j: usize) -> f64 {
        self.c[i * self.n + j]
    }

    /// Set the symmetric cost of `{i, j}`.
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "diagonal is fixed at zero");
        assert!(w >= 0.0, "costs must be non-negative");
        self.c[i * self.n + j] = w;
        self.c[j * self.n + i] = w;
    }

    /// True if the edge `{i, j}` exists (finite cost).
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        i != j && self.cost(i, j).is_finite()
    }

    /// All undirected edges `(i < j, cost)` with finite cost.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let w = self.cost(i, j);
                if w.is_finite() {
                    out.push((i, j, w));
                }
            }
        }
        out
    }

    /// Finite-cost neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.n).filter(move |&u| u != v).filter_map(move |u| {
            let w = self.cost(v, u);
            w.is_finite().then_some((u, w))
        })
    }

    /// The distinct finite transmission costs incident to `v`, sorted
    /// ascending — the paper's `C_i^1 < … < C_i^{n_i}` power levels used by
    /// both the exact MEMT solver and the NWST reduction (§2.2.1).
    pub fn power_levels(&self, v: usize) -> Vec<f64> {
        let mut levels: Vec<f64> = self.neighbors(v).map(|(_, w)| w).collect();
        levels.sort_by(f64::total_cmp);
        levels.dedup_by(|a, b| wmcs_geom::approx_eq(*a, *b));
        levels
    }

    /// Restriction of the matrix to a vertex subset; returns the submatrix
    /// and the mapping `new index -> old index`.
    pub fn induced(&self, vertices: &[usize]) -> (CostMatrix, Vec<usize>) {
        let map: Vec<usize> = vertices.to_vec();
        let sub = CostMatrix::from_fn(map.len(), |a, b| self.cost(map[a], map[b]));
        (sub, map)
    }

    /// Total cost of an edge set (panics on absent edges in debug builds).
    pub fn total_cost(&self, edges: &[(usize, usize)]) -> f64 {
        edges
            .iter()
            .map(|&(u, v)| {
                let w = self.cost(u, v);
                debug_assert!(w.is_finite(), "edge ({u}, {v}) is absent");
                w
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_geom::approx_eq;

    #[test]
    fn disconnected_has_no_edges() {
        let m = CostMatrix::disconnected(3);
        assert!(m.edges().is_empty());
        assert!(!m.has_edge(0, 1));
        assert_eq!(m.cost(1, 1), 0.0);
    }

    #[test]
    fn from_fn_builds_symmetric_matrix() {
        let m = CostMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert!(approx_eq(m.cost(0, 1), 1.0));
        assert!(approx_eq(m.cost(1, 0), 1.0));
        assert!(approx_eq(m.cost(1, 2), 3.0));
        assert_eq!(m.edges().len(), 3);
    }

    #[test]
    fn from_points_matches_power_model() {
        let pts = vec![Point::xy(0.0, 0.0), Point::xy(3.0, 4.0)];
        let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
        assert!(approx_eq(m.cost(0, 1), 25.0));
    }

    #[test]
    fn from_edges_keeps_cheapest_duplicate() {
        let m = CostMatrix::from_edges(3, &[(0, 1, 5.0), (1, 0, 2.0), (1, 2, 1.0)]);
        assert!(approx_eq(m.cost(0, 1), 2.0));
        assert!(!m.has_edge(0, 2));
    }

    #[test]
    fn power_levels_sorted_and_deduped() {
        let m = CostMatrix::from_edges(4, &[(0, 1, 2.0), (0, 2, 1.0), (0, 3, 2.0)]);
        assert_eq!(m.power_levels(0), vec![1.0, 2.0]);
        assert_eq!(m.power_levels(3), vec![2.0]);
    }

    #[test]
    fn induced_submatrix_remaps_indices() {
        let m = CostMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        let (sub, map) = m.induced(&[1, 3]);
        assert_eq!(map, vec![1, 3]);
        assert_eq!(sub.len(), 2);
        assert!(approx_eq(sub.cost(0, 1), 13.0));
    }

    #[test]
    fn neighbors_skip_missing_edges() {
        let m = CostMatrix::from_edges(4, &[(0, 1, 1.0), (0, 3, 2.0)]);
        let nb: Vec<_> = m.neighbors(0).collect();
        assert_eq!(nb, vec![(1, 1.0), (3, 2.0)]);
    }

    #[test]
    fn total_cost_sums_edges() {
        let m = CostMatrix::from_fn(3, |_, _| 2.0);
        assert!(approx_eq(m.total_cost(&[(0, 1), (1, 2)]), 4.0));
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        let mut m = CostMatrix::disconnected(2);
        m.set(1, 1, 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let mut m = CostMatrix::disconnected(2);
        m.set(0, 1, -1.0);
    }
}
