//! Dijkstra shortest paths and shortest-path trees.

use crate::dense::CostMatrix;
use crate::heap::IndexedMinHeap;
use crate::tree::RootedTree;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source vertex.
    pub source: usize,
    /// `dist[v]` = cost of the cheapest path `source → v` (infinite if
    /// unreachable).
    pub dist: Vec<f64>,
    /// Predecessor on a cheapest path (None for the source / unreachable).
    pub parent: Vec<Option<usize>>,
}

impl ShortestPaths {
    /// Reconstruct the cheapest path `source → v`, or `None` if unreachable.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if v != self.source && self.parent[v].is_none() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// The shortest-path tree as a [`RootedTree`] (spanning the reachable
    /// vertices). This is the "pre-computed shortest path tree … used as a
    /// (universal) tree" suggestion of Penna–Ventre discussed in §2.1.
    pub fn tree(&self) -> RootedTree {
        RootedTree::from_parents(self.source, self.parent.clone())
    }
}

/// Dijkstra on a dense cost matrix. `O(n^2 log n)` with the indexed heap,
/// which is fine for the `n ≤ ~500` instances exercised in the benches.
pub fn dijkstra(costs: &CostMatrix, source: usize) -> ShortestPaths {
    let n = costs.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = IndexedMinHeap::new(n);
    dist[source] = 0.0;
    heap.push_or_decrease(source, 0.0);
    while let Some((u, du)) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (v, w) in costs.neighbors(u) {
            if !done[v] && du + w < dist[v] {
                dist[v] = du + w;
                parent[v] = Some(u);
                heap.push_or_decrease(v, dist[v]);
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// All-pairs shortest-path distances and a midpoint matrix for path
/// reconstruction (the *metric closure* used by the KMB Steiner
/// approximation). Runs `n` Dijkstras.
#[derive(Debug, Clone)]
pub struct MetricClosure {
    /// `dist[u][v]` = shortest-path cost between `u` and `v`.
    pub dist: Vec<Vec<f64>>,
    /// `via[u][v]` = predecessor of `v` on the cheapest `u → v` path.
    pub via: Vec<Vec<Option<usize>>>,
}

impl MetricClosure {
    /// Compute the closure of a cost matrix.
    pub fn of(costs: &CostMatrix) -> Self {
        let n = costs.len();
        let mut dist = Vec::with_capacity(n);
        let mut via = Vec::with_capacity(n);
        for s in 0..n {
            let sp = dijkstra(costs, s);
            dist.push(sp.dist);
            via.push(sp.parent);
        }
        Self { dist, via }
    }

    /// Expand the closure edge `{u, v}` back into the underlying path.
    pub fn expand_path(&self, u: usize, v: usize) -> Vec<usize> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != u {
            cur = self.via[u][cur].expect("vertices must be connected");
            path.push(cur);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmcs_geom::approx_eq;

    /// Path graph 0 -1- 1 -1- 2 -1- 3 plus a costly shortcut 0-3.
    fn path_with_shortcut() -> CostMatrix {
        CostMatrix::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)])
    }

    #[test]
    fn dijkstra_prefers_multi_hop_over_shortcut() {
        let sp = dijkstra(&path_with_shortcut(), 0);
        assert!(approx_eq(sp.dist[3], 3.0));
        assert_eq!(sp.path_to(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn dijkstra_unreachable_vertices_stay_infinite() {
        let m = CostMatrix::from_edges(3, &[(0, 1, 1.0)]);
        let sp = dijkstra(&m, 0);
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.path_to(2), None);
        assert_eq!(sp.path_to(0), Some(vec![0]));
    }

    #[test]
    fn shortest_path_tree_spans_reachable_set() {
        let sp = dijkstra(&path_with_shortcut(), 0);
        let t = sp.tree();
        assert_eq!(t.nodes(), vec![0, 1, 2, 3]);
        assert_eq!(t.path_from_root(3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn closure_distances_are_metric() {
        let mc = MetricClosure::of(&path_with_shortcut());
        assert!(approx_eq(mc.dist[0][3], 3.0));
        assert!(approx_eq(mc.dist[3][0], 3.0));
        for u in 0..4 {
            assert_eq!(mc.dist[u][u], 0.0);
            for v in 0..4 {
                for w in 0..4 {
                    assert!(mc.dist[u][w] <= mc.dist[u][v] + mc.dist[v][w] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn closure_paths_expand_correctly() {
        let mc = MetricClosure::of(&path_with_shortcut());
        assert_eq!(mc.expand_path(0, 3), vec![0, 1, 2, 3]);
        assert_eq!(mc.expand_path(3, 0), vec![3, 2, 1, 0]);
        assert_eq!(mc.expand_path(1, 1), vec![1]);
    }

    #[test]
    fn dense_complete_graph_shortest_paths() {
        // On a complete metric graph the direct edge is always shortest.
        let pts: Vec<wmcs_geom::Point> = (0..6)
            .map(|i| wmcs_geom::Point::xy(i as f64, (i * i % 3) as f64))
            .collect();
        let m = CostMatrix::from_points(&pts, &wmcs_geom::PowerModel::linear());
        let sp = dijkstra(&m, 0);
        for v in 1..6 {
            assert!(approx_eq(sp.dist[v], m.cost(0, v)));
        }
    }
}
