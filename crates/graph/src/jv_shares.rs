//! Jain–Vazirani cross-monotonic 2-budget-balanced Steiner cost shares \[29\].
//!
//! The paper's Theorem 3.6 lifts the 2-BB cross-monotonic cost-sharing
//! family of Jain and Vazirani (built on the classical MST-based Steiner
//! approximation \[34\] and Edmonds' primal–dual branching algorithm \[16\]) to
//! wireless multicast. The construction implemented here:
//!
//! 1. take the **metric closure** of the cost graph and restrict it to
//!    `R ∪ {root}`;
//! 2. grow a dual (moat) of uniform rate around every component not yet
//!    containing the root — with uniform growth, closure edge `{u, v}` goes
//!    tight exactly at time `c(u, v)`, so the merge schedule is Kruskal's;
//! 3. while a terminal's component does not contain the root, the terminal
//!    accrues share at rate `1 / |terminals in its component|` (the equal
//!    split is the canonical member of the JV family `F`, which is
//!    parameterised by one monotone mapping `f_i` per user — see
//!    [`JvSharing`]);
//! 4. the output tree expands the used closure edges into original-graph
//!    shortest paths (pruned).
//!
//! Invariants (verified by the tests below):
//! * `Σ shares = w(MST of the closure on R ∪ {root})` — telescoping of the
//!   component-count integral over the Kruskal timeline;
//! * `tree_cost ≤ Σ shares ≤ 2 · OPT_Steiner(R ∪ {root})` — 2-approximate
//!   budget balance in the sense of \[29\];
//! * shares are **cross-monotonic**: enlarging `R` never raises the share
//!   of an existing terminal (merge times are fixed edge costs, so
//!   components only get more terminals and capture the root earlier).

use crate::dense::CostMatrix;
use crate::mst::prim_mst_subset;
use crate::shortest_path::MetricClosure;
use crate::steiner::SteinerTree;
use crate::union_find::UnionFind;

/// Parameterisation of the JV family `F`: how a component's unit growth is
/// split among the terminals inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JvSharing {
    /// Equal split (the canonical choice; cross-monotonic).
    Equal,
    /// Weighted by fixed per-terminal positive weights: terminal `i` gets
    /// `w_i / Σ_{j in comp} w_j` of the growth. With constant weights this
    /// degenerates to [`JvSharing::Equal`]; any fixed weights preserve
    /// cross-monotonicity (the denominator only grows with `R`).
    Weighted,
}

/// Result of the JV share computation for a terminal set `R`.
#[derive(Debug, Clone)]
pub struct JvShares {
    /// Steiner tree in the original graph connecting `root` to the
    /// terminals (closure MST expanded and pruned).
    pub tree: SteinerTree,
    /// Weight of the MST of the metric closure on `R ∪ {root}`; equals the
    /// sum of all shares.
    pub closure_mst_cost: f64,
    /// Per-vertex share (zero for vertices outside `R`).
    pub share: Vec<f64>,
}

/// Compute the JV cross-monotonic cost shares for `terminals` w.r.t. `root`.
///
/// `weights` supplies the per-terminal weights for [`JvSharing::Weighted`]
/// (indexed by vertex id; ignored for [`JvSharing::Equal`]). All weights
/// must be positive.
pub fn jv_steiner_shares(
    costs: &CostMatrix,
    root: usize,
    terminals: &[usize],
    sharing: JvSharing,
    weights: Option<&[f64]>,
) -> JvShares {
    let n = costs.len();
    let mut share = vec![0.0_f64; n];
    if terminals.is_empty() {
        return JvShares {
            tree: SteinerTree {
                edges: vec![],
                cost: 0.0,
            },
            closure_mst_cost: 0.0,
            share,
        };
    }
    let closure = MetricClosure::of(costs);
    let mut members: Vec<usize> = terminals.to_vec();
    members.push(root);
    members.sort_unstable();
    members.dedup();
    assert!(
        members.len() == terminals.len() + 1,
        "terminals must be distinct and different from the root"
    );
    for &t in terminals {
        assert!(
            closure.dist[root][t].is_finite(),
            "terminal {t} cannot reach the root"
        );
    }
    let weight_of = |v: usize| -> f64 {
        match sharing {
            JvSharing::Equal => 1.0,
            JvSharing::Weighted => {
                let w = weights.expect("Weighted sharing requires weights")[v];
                assert!(w > 0.0, "weights must be positive");
                w
            }
        }
    };

    // Kruskal timeline over the closure restricted to `members`.
    let mut events: Vec<(f64, usize, usize)> = Vec::new();
    for (a, &u) in members.iter().enumerate() {
        for &v in &members[a + 1..] {
            events.push((closure.dist[u][v], u, v));
        }
    }
    events.sort_by(|x, y| x.0.total_cmp(&y.0).then((x.1, x.2).cmp(&(y.1, y.2))));

    let mut is_terminal = vec![false; n];
    for &t in terminals {
        is_terminal[t] = true;
    }
    let mut uf = UnionFind::new(n);
    let mut t_prev = 0.0_f64;
    let mut mst_edges: Vec<(usize, usize)> = Vec::new();
    let mut closure_mst_cost = 0.0;
    let mut joined_root = terminals.is_empty();
    for &(t_ev, u, v) in &events {
        if joined_root {
            break;
        }
        let dt = t_ev - t_prev;
        if dt > 0.0 {
            // Accrue shares over [t_prev, t_ev): every component without the
            // root splits its unit growth among its terminals.
            accrue(
                &mut uf,
                &members,
                &is_terminal,
                root,
                dt,
                &mut share,
                &weight_of,
            );
            t_prev = t_ev;
        }
        if uf.find(u) != uf.find(v) {
            uf.union(u, v);
            mst_edges.push((u, v));
            closure_mst_cost += t_ev;
            joined_root = terminals.iter().all(|&t| uf.connected(t, root));
        }
    }
    debug_assert!(joined_root, "Kruskal must connect all terminals");

    // Expand the closure MST into an original-graph Steiner tree.
    let mut used = vec![false; n];
    for &(u, v) in &mst_edges {
        for w in closure.expand_path(u, v) {
            used[w] = true;
        }
    }
    let union: Vec<usize> = (0..n).filter(|&v| used[v]).collect();
    let sub = prim_mst_subset(costs, &union);
    let tree = prune_to_terminals(costs, sub.edges, root, terminals);
    JvShares {
        tree,
        closure_mst_cost,
        share,
    }
}

fn accrue(
    uf: &mut UnionFind,
    members: &[usize],
    is_terminal: &[bool],
    root: usize,
    dt: f64,
    share: &mut [f64],
    weight_of: &dyn Fn(usize) -> f64,
) {
    use std::collections::BTreeMap;
    let root_rep = uf.find(root);
    let mut comp_weight: BTreeMap<usize, f64> = BTreeMap::new();
    for &m in members {
        if is_terminal[m] {
            let rep = uf.find(m);
            if rep != root_rep {
                *comp_weight.entry(rep).or_insert(0.0) += weight_of(m);
            }
        }
    }
    for &m in members {
        if is_terminal[m] {
            let rep = uf.find(m);
            if rep != root_rep {
                share[m] += dt * weight_of(m) / comp_weight[&rep];
            }
        }
    }
}

fn prune_to_terminals(
    costs: &CostMatrix,
    mut edges: Vec<(usize, usize)>,
    root: usize,
    terminals: &[usize],
) -> SteinerTree {
    let n = costs.len();
    let mut keep = vec![false; n];
    keep[root] = true;
    for &t in terminals {
        keep[t] = true;
    }
    loop {
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let before = edges.len();
        edges.retain(|&(u, v)| {
            let drop_u = degree[u] == 1 && !keep[u];
            let drop_v = degree[v] == 1 && !keep[v];
            !(drop_u || drop_v)
        });
        if edges.len() == before {
            break;
        }
    }
    let cost = costs.total_cost(&edges);
    SteinerTree { edges, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::dreyfus_wagner_cost;
    use crate::union_find::UnionFind;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{approx_eq, Point, PowerModel};

    fn connects(n: usize, root: usize, terminals: &[usize], edges: &[(usize, usize)]) -> bool {
        let mut uf = UnionFind::new(n);
        for &(u, v) in edges {
            uf.union(u, v);
        }
        terminals.iter().all(|&t| uf.connected(t, root))
    }

    #[test]
    fn single_terminal_pays_its_path() {
        // root -1- a -1- b: terminal b pays the 2-hop shortest path.
        let m = CostMatrix::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let r = jv_steiner_shares(&m, 0, &[2], JvSharing::Equal, None);
        assert!(approx_eq(r.share[2], 2.0));
        assert!(approx_eq(r.closure_mst_cost, 2.0));
        assert!(approx_eq(r.tree.cost, 2.0));
        assert!(connects(3, 0, &[2], &r.tree.edges));
    }

    #[test]
    fn far_pair_splits_shared_segment() {
        // Terminals a, b mutually at distance 1, both at distance 10 from
        // the root: they merge at t = 1, then share the trek to the root.
        let m = CostMatrix::from_edges(3, &[(0, 1, 10.0), (0, 2, 10.0), (1, 2, 1.0)]);
        let r = jv_steiner_shares(&m, 0, &[1, 2], JvSharing::Equal, None);
        // Each grows alone in [0, 1): +1 each. Merged comp in [1, 10): +4.5
        // each. Sum = 11 = MST(closure) = 1 + 10.
        assert!(approx_eq(r.share[1], 5.5));
        assert!(approx_eq(r.share[2], 5.5));
        assert!(approx_eq(r.closure_mst_cost, 11.0));
    }

    #[test]
    fn shares_sum_to_closure_mst() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(2.0, 1.0),
            Point::xy(4.0, 0.0),
            Point::xy(1.0, 3.0),
            Point::xy(3.0, 3.0),
        ];
        let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
        let terminals = [1, 2, 3, 4];
        let r = jv_steiner_shares(&m, 0, &terminals, JvSharing::Equal, None);
        let sum: f64 = r.share.iter().sum();
        assert!(approx_eq(sum, r.closure_mst_cost));
    }

    #[test]
    fn weighted_sharing_tilts_split() {
        let m = CostMatrix::from_edges(3, &[(0, 1, 10.0), (0, 2, 10.0), (1, 2, 1.0)]);
        let weights = vec![1.0, 3.0, 1.0];
        let r = jv_steiner_shares(&m, 0, &[1, 2], JvSharing::Weighted, Some(&weights));
        // Solo phase [0,1): each accrues 1 (alone in its component).
        // Merged phase [1,10): split 3:1 → terminal 1 gets 6.75, 2 gets 2.25.
        assert!(approx_eq(r.share[1], 1.0 + 6.75));
        assert!(approx_eq(r.share[2], 1.0 + 2.25));
        let sum: f64 = r.share.iter().sum();
        assert!(approx_eq(sum, r.closure_mst_cost));
    }

    #[test]
    fn empty_terminal_set_is_free() {
        let m = CostMatrix::from_edges(2, &[(0, 1, 1.0)]);
        let r = jv_steiner_shares(&m, 0, &[], JvSharing::Equal, None);
        assert_eq!(r.tree.cost, 0.0);
        assert!(r.share.iter().all(|&s| s == 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn two_approximate_budget_balance(seed in 0u64..1000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..9);
            let k = rng.gen_range(1usize..n);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
            let terminals: Vec<usize> = (1..=k).collect();
            let r = jv_steiner_shares(&m, 0, &terminals, JvSharing::Equal, None);
            let sum: f64 = r.share.iter().sum();
            // Cost recovery for the built tree…
            prop_assert!(sum + 1e-6 >= r.tree.cost,
                "shares {} below tree cost {}", sum, r.tree.cost);
            // …and 2-approximate competitiveness against the true optimum.
            let mut all = terminals.clone();
            all.push(0);
            let opt = dreyfus_wagner_cost(&m, &all);
            prop_assert!(sum <= 2.0 * opt + 1e-6,
                "shares {} exceed 2 OPT = {}", sum, 2.0 * opt);
            // Feasibility.
            prop_assert!(connects(n, 0, &terminals, &r.tree.edges));
        }

        #[test]
        fn shares_are_cross_monotonic(seed in 0u64..500) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..10);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
            let k = rng.gen_range(1usize..(n - 1));
            let small: Vec<usize> = (1..=k).collect();
            let large: Vec<usize> = (1..=k + 1).collect();
            let rs = jv_steiner_shares(&m, 0, &small, JvSharing::Equal, None);
            let rl = jv_steiner_shares(&m, 0, &large, JvSharing::Equal, None);
            for &t in &small {
                prop_assert!(rl.share[t] <= rs.share[t] + 1e-6,
                    "share of {} rose from {} to {}", t, rs.share[t], rl.share[t]);
            }
        }

        #[test]
        fn share_is_independent_of_terminal_order(seed in 0u64..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..9);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
            let fwd: Vec<usize> = (1..n).collect();
            let mut rev = fwd.clone();
            rev.reverse();
            let a = jv_steiner_shares(&m, 0, &fwd, JvSharing::Equal, None);
            let b = jv_steiner_shares(&m, 0, &rev, JvSharing::Equal, None);
            for v in 0..n {
                prop_assert!(approx_eq(a.share[v], b.share[v]));
            }
        }
    }
}
