//! Indexed binary min-heap keyed by `f64` priorities.
//!
//! `std::collections::BinaryHeap` offers no decrease-key, which Dijkstra and
//! Prim want; this heap tracks element positions so priorities can be lowered
//! in `O(log n)` without lazy-deletion churn.

/// Min-heap over element ids `0..capacity` with `f64` keys and decrease-key.
#[derive(Debug, Clone)]
pub struct IndexedMinHeap {
    /// Heap array of element ids.
    heap: Vec<usize>,
    /// `pos[e]` = index of element `e` in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
    /// Current key per element (valid only while the element is present).
    key: Vec<f64>,
}

const ABSENT: usize = usize::MAX;

impl IndexedMinHeap {
    /// Empty heap able to hold element ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            key: vec![f64::INFINITY; capacity],
        }
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True if element `e` is currently queued.
    pub fn contains(&self, e: usize) -> bool {
        self.pos[e] != ABSENT
    }

    /// Current key of a queued element.
    pub fn key_of(&self, e: usize) -> Option<f64> {
        self.contains(e).then(|| self.key[e])
    }

    /// Insert `e` with the given key, or lower its key if already queued with
    /// a larger one. Returns `true` if the stored key changed.
    pub fn push_or_decrease(&mut self, e: usize, k: f64) -> bool {
        if self.contains(e) {
            if k < self.key[e] {
                self.key[e] = k;
                self.sift_up(self.pos[e]);
                true
            } else {
                false
            }
        } else {
            self.key[e] = k;
            self.pos[e] = self.heap.len();
            self.heap.push(e);
            self.sift_up(self.heap.len() - 1);
            true
        }
    }

    /// Pop the minimum-key element.
    pub fn pop(&mut self) -> Option<(usize, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let k = self.key[top];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0);
        }
        Some((top, k))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key[self.heap[i]] < self.key[self.heap[parent]] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.key[self.heap[l]] < self.key[self.heap[smallest]] {
                smallest = l;
            }
            if r < self.heap.len() && self.key[self.heap[r]] < self.key[self.heap[smallest]] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i;
        self.pos[self.heap[j]] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = IndexedMinHeap::new(5);
        h.push_or_decrease(0, 3.0);
        h.push_or_decrease(1, 1.0);
        h.push_or_decrease(2, 2.0);
        assert_eq!(h.pop(), Some((1, 1.0)));
        assert_eq!(h.pop(), Some((2, 2.0)));
        assert_eq!(h.pop(), Some((0, 3.0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedMinHeap::new(3);
        h.push_or_decrease(0, 10.0);
        h.push_or_decrease(1, 5.0);
        assert!(h.push_or_decrease(0, 1.0));
        assert_eq!(h.pop(), Some((0, 1.0)));
    }

    #[test]
    fn increase_attempt_is_ignored() {
        let mut h = IndexedMinHeap::new(2);
        h.push_or_decrease(0, 1.0);
        assert!(!h.push_or_decrease(0, 5.0));
        assert_eq!(h.key_of(0), Some(1.0));
    }

    #[test]
    fn contains_tracks_membership() {
        let mut h = IndexedMinHeap::new(2);
        assert!(!h.contains(1));
        h.push_or_decrease(1, 0.5);
        assert!(h.contains(1));
        h.pop();
        assert!(!h.contains(1));
        assert!(h.is_empty());
    }

    proptest! {
        #[test]
        fn heap_sorts_arbitrary_keys(keys in proptest::collection::vec(0.0..1000.0f64, 1..60)) {
            let mut h = IndexedMinHeap::new(keys.len());
            for (i, &k) in keys.iter().enumerate() {
                h.push_or_decrease(i, k);
            }
            let mut popped = Vec::new();
            while let Some((_, k)) = h.pop() {
                popped.push(k);
            }
            let mut sorted = keys.clone();
            sorted.sort_by(f64::total_cmp);
            prop_assert_eq!(popped, sorted);
        }

        #[test]
        fn random_decreases_preserve_order(
            keys in proptest::collection::vec(10.0..1000.0f64, 1..40),
            dec in proptest::collection::vec((0usize..40, 0.0..10.0f64), 0..40)
        ) {
            let n = keys.len();
            let mut h = IndexedMinHeap::new(n);
            let mut reference = keys.clone();
            for (i, &k) in keys.iter().enumerate() {
                h.push_or_decrease(i, k);
            }
            for (e, k) in dec {
                let e = e % n;
                if k < reference[e] {
                    reference[e] = k;
                }
                h.push_or_decrease(e, k);
            }
            let mut popped = Vec::new();
            while let Some((_, k)) = h.pop() {
                popped.push(k);
            }
            reference.sort_by(f64::total_cmp);
            prop_assert_eq!(popped, reference);
        }
    }
}
