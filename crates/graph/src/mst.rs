//! Minimum spanning trees (Prim on dense matrices, Kruskal on edge lists).
//!
//! MSTs appear throughout the paper: the MST broadcast heuristic of
//! Wieselthier et al. (§1, §3.2), the KMB Steiner approximation, and the
//! Jain–Vazirani cost-sharing substrate all reduce to spanning-tree
//! computations.

use crate::dense::CostMatrix;
use crate::heap::IndexedMinHeap;
use crate::tree::RootedTree;
use crate::union_find::UnionFind;

/// A spanning tree (or forest) as an undirected edge list with total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningTree {
    /// Undirected edges `(u, v)` with `u < v`.
    pub edges: Vec<(usize, usize)>,
    /// Sum of edge costs.
    pub cost: f64,
}

impl SpanningTree {
    /// Orient the tree away from `root` (vertices outside the tree's
    /// component are dropped).
    pub fn rooted_at(&self, n: usize, root: usize) -> RootedTree {
        RootedTree::from_undirected_edges(n, root, &self.edges)
    }
}

/// Prim's algorithm over the vertex subset `vertices` of a dense matrix.
/// Panics if the induced subgraph is disconnected. `O(|V|^2)` via the
/// indexed heap on dense inputs.
pub fn prim_mst_subset(costs: &CostMatrix, vertices: &[usize]) -> SpanningTree {
    assert!(!vertices.is_empty(), "MST of an empty vertex set");
    let mut in_set = vec![false; costs.len()];
    for &v in vertices {
        in_set[v] = true;
    }
    let start = vertices[0];
    let mut heap = IndexedMinHeap::new(costs.len());
    let mut best_edge: Vec<Option<usize>> = vec![None; costs.len()];
    let mut in_tree = vec![false; costs.len()];
    let mut edges = Vec::with_capacity(vertices.len().saturating_sub(1));
    let mut cost = 0.0;
    heap.push_or_decrease(start, 0.0);
    while let Some((u, w)) = heap.pop() {
        if in_tree[u] {
            continue;
        }
        in_tree[u] = true;
        cost += w;
        if let Some(p) = best_edge[u] {
            edges.push((p.min(u), p.max(u)));
        }
        for (v, wuv) in costs.neighbors(u) {
            if in_set[v] && !in_tree[v] {
                let improved = match heap.key_of(v) {
                    Some(k) => wuv < k,
                    None => true,
                };
                if improved {
                    heap.push_or_decrease(v, wuv);
                    best_edge[v] = Some(u);
                }
            }
        }
    }
    let spanned = vertices.iter().filter(|&&v| in_tree[v]).count();
    assert_eq!(
        spanned,
        vertices.len(),
        "induced subgraph is disconnected: spanned {spanned} of {}",
        vertices.len()
    );
    SpanningTree { edges, cost }
}

/// Prim's algorithm over all vertices.
pub fn prim_mst(costs: &CostMatrix) -> SpanningTree {
    let all: Vec<usize> = (0..costs.len()).collect();
    prim_mst_subset(costs, &all)
}

/// Kruskal's algorithm over an explicit edge list; returns a minimum
/// spanning forest when the graph is disconnected.
pub fn kruskal(n: usize, edges: &[(usize, usize, f64)]) -> SpanningTree {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        edges[a]
            .2
            .total_cmp(&edges[b].2)
            .then_with(|| (edges[a].0, edges[a].1).cmp(&(edges[b].0, edges[b].1)))
    });
    let mut uf = UnionFind::new(n);
    let mut out = Vec::new();
    let mut cost = 0.0;
    for i in order {
        let (u, v, w) = edges[i];
        if uf.union(u, v) {
            out.push((u.min(v), u.max(v)));
            cost += w;
        }
    }
    SpanningTree { edges: out, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::approx_eq;

    fn square_matrix() -> CostMatrix {
        // Unit square with diagonals; MST cost = 3 unit edges.
        let pts = vec![
            wmcs_geom::Point::xy(0.0, 0.0),
            wmcs_geom::Point::xy(1.0, 0.0),
            wmcs_geom::Point::xy(1.0, 1.0),
            wmcs_geom::Point::xy(0.0, 1.0),
        ];
        CostMatrix::from_points(&pts, &wmcs_geom::PowerModel::linear())
    }

    #[test]
    fn prim_on_unit_square() {
        let t = prim_mst(&square_matrix());
        assert_eq!(t.edges.len(), 3);
        assert!(approx_eq(t.cost, 3.0));
    }

    #[test]
    fn kruskal_agrees_with_prim_on_square() {
        let m = square_matrix();
        let k = kruskal(4, &m.edges());
        let p = prim_mst(&m);
        assert!(approx_eq(k.cost, p.cost));
    }

    #[test]
    fn subset_mst_ignores_other_vertices() {
        let m = square_matrix();
        let t = prim_mst_subset(&m, &[0, 2]);
        assert_eq!(t.edges, vec![(0, 2)]);
        assert!(approx_eq(t.cost, std::f64::consts::SQRT_2));
    }

    #[test]
    fn singleton_subset_has_empty_mst() {
        let t = prim_mst_subset(&square_matrix(), &[1]);
        assert!(t.edges.is_empty());
        assert_eq!(t.cost, 0.0);
    }

    #[test]
    fn rooted_at_orients_edges() {
        let t = prim_mst(&square_matrix());
        let r = t.rooted_at(4, 0);
        assert_eq!(r.root(), 0);
        assert_eq!(r.node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn prim_rejects_disconnected_input() {
        let m = CostMatrix::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let _ = prim_mst(&m);
    }

    #[test]
    fn kruskal_returns_forest_on_disconnected_input() {
        let t = kruskal(4, &[(0, 1, 1.0), (2, 3, 2.0)]);
        assert_eq!(t.edges.len(), 2);
        assert!(approx_eq(t.cost, 3.0));
    }

    proptest! {
        #[test]
        fn prim_and_kruskal_costs_agree_on_random_metric_graphs(seed in 0u64..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(2usize..12);
            let pts: Vec<wmcs_geom::Point> = (0..n)
                .map(|_| wmcs_geom::Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &wmcs_geom::PowerModel::free_space());
            let p = prim_mst(&m);
            let k = kruskal(n, &m.edges());
            prop_assert!(approx_eq(p.cost, k.cost));
            prop_assert_eq!(p.edges.len(), n - 1);
            prop_assert_eq!(k.edges.len(), n - 1);
        }

        #[test]
        fn mst_cost_is_monotone_under_vertex_removal_upper_bound(seed in 0u64..100) {
            // Removing a vertex can raise or lower MST cost in general, but
            // the MST over a subset can never beat the cheapest edge bound:
            // here we just check MST(subset) <= MST(all) + diameter as a
            // sanity band and that subset MSTs are well-formed.
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..10);
            let pts: Vec<wmcs_geom::Point> = (0..n)
                .map(|_| wmcs_geom::Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &wmcs_geom::PowerModel::linear());
            let subset: Vec<usize> = (0..n).filter(|&v| v % 2 == 0).collect();
            let t = prim_mst_subset(&m, &subset);
            prop_assert_eq!(t.edges.len(), subset.len() - 1);
            for &(u, v) in &t.edges {
                prop_assert!(subset.contains(&u) && subset.contains(&v));
            }
        }
    }
}
