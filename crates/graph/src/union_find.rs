//! Disjoint-set forest (union–find) with union by rank and path compression.
//!
//! Used by Kruskal's MST, the Goemans–Williamson moat growing, and the
//! spider-shrinking loop of the NWST algorithm.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Representative without mutation (no compression); useful when only a
    /// shared reference is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Groups the elements by representative. The groups are sorted by their
    /// smallest element for determinism.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut gs: Vec<Vec<usize>> = by_root.into_values().collect();
        gs.sort_by_key(|g| g[0]);
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn groups_partition_elements() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let gs = uf.groups();
        assert_eq!(gs, vec![vec![0, 3], vec![1], vec![2], vec![4, 5]]);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut uf = UnionFind::new(8);
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(5, 6);
        for i in 0..8 {
            let imm = uf.find_immutable(i);
            assert_eq!(imm, uf.find(i));
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    proptest! {
        #[test]
        fn component_count_is_n_minus_successful_unions(
            ops in proptest::collection::vec((0usize..20, 0usize..20), 0..60)
        ) {
            let mut uf = UnionFind::new(20);
            let mut successes = 0;
            for (a, b) in ops {
                if uf.union(a, b) {
                    successes += 1;
                }
            }
            prop_assert_eq!(uf.component_count(), 20 - successes);
        }

        #[test]
        fn connectivity_is_equivalence(
            ops in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
            probe in (0usize..12, 0usize..12, 0usize..12)
        ) {
            let mut uf = UnionFind::new(12);
            for (a, b) in ops {
                uf.union(a, b);
            }
            let (x, y, z) = probe;
            // transitivity
            if uf.connected(x, y) && uf.connected(y, z) {
                prop_assert!(uf.connected(x, z));
            }
            // symmetry + reflexivity
            prop_assert!(uf.connected(x, x));
            prop_assert_eq!(uf.connected(x, y), uf.connected(y, x));
        }
    }
}
