//! Goemans–Williamson "moat growing" (primal–dual) for rooted Steiner trees.
//!
//! Duals (moats) grow uniformly around active components on the *full*
//! graph; an edge goes tight when the moats of its endpoints meet; tight
//! edges merge components; a component deactivates when it captures the
//! root. Each terminal accumulates a *dual share* — its slice of the growth
//! of every component it belonged to, split equally among the component's
//! terminals.
//!
//! Guarantees (classical): the pruned forest `T` connecting the terminals to
//! the root satisfies `cost(T) ≤ 2 · Σ duals ≤ 2 · OPT_Steiner`.
//!
//! **Note**: these full-graph shares are *not* cross-monotonic in general
//! (Steiner vertices let an added terminal re-route moats both ways); the
//! cross-monotonic Jain–Vazirani family used by Theorem 3.6 instead grows
//! duals Kruskal-style on the metric closure restricted to the terminals —
//! see [`crate::jv_shares`]. This module remains the alternative (often
//! cheaper) tree builder and is compared against the JV one in the ablation
//! benches.

use crate::dense::CostMatrix;
use crate::union_find::UnionFind;
use wmcs_geom::EPS;

/// Output of the moat-growing run.
#[derive(Debug, Clone)]
pub struct MoatResult {
    /// Pruned tree edges connecting every terminal to the root.
    pub tree_edges: Vec<(usize, usize)>,
    /// Total cost of `tree_edges`.
    pub tree_cost: f64,
    /// Per-vertex dual share (non-zero only for terminals): terminal `t`'s
    /// accumulated slice of moat growth.
    pub dual_share: Vec<f64>,
    /// Total dual Σ y_S grown (equals the sum of all terminals' shares).
    pub total_dual: f64,
}

/// Run moat growing on `costs` for the given `root` and `terminals`.
///
/// Requires the subgraph on finite-cost edges to connect all terminals to
/// the root. `O(n^2)` per merge event, `O(n^3)` total — fine for the bench
/// sizes (n ≤ ~500).
pub fn moat_growing(costs: &CostMatrix, root: usize, terminals: &[usize]) -> MoatResult {
    let n = costs.len();
    let mut is_terminal = vec![false; n];
    for &t in terminals {
        assert!(t != root, "the root is not a terminal");
        is_terminal[t] = true;
    }
    let mut uf = UnionFind::new(n);
    // Accumulated potential a(v): total growth of components containing v.
    let mut potential = vec![0.0_f64; n];
    let mut dual_share = vec![0.0_f64; n];
    let mut total_dual = 0.0;
    let mut forest: Vec<(usize, usize)> = Vec::new();

    // Component bookkeeping keyed by representative.
    let comp_terminals = |uf: &mut UnionFind, rep: usize, is_terminal: &[bool]| -> Vec<usize> {
        (0..n)
            .filter(|&v| is_terminal[v] && uf.find(v) == rep)
            .collect()
    };
    let is_active = |uf: &mut UnionFind, rep: usize, is_terminal: &[bool]| -> bool {
        let has_terminal = (0..n).any(|v| is_terminal[v] && uf.find(v) == rep);
        has_terminal && uf.find(root) != rep
    };

    loop {
        // Collect current component representatives and their activity.
        let reps: Vec<usize> = {
            let mut seen = std::collections::BTreeSet::new();
            for v in 0..n {
                seen.insert(uf.find(v));
            }
            seen.into_iter().collect()
        };
        let active: std::collections::BTreeSet<usize> = reps
            .iter()
            .copied()
            .filter(|&r| is_active(&mut uf, r, &is_terminal))
            .collect();
        if active.is_empty() {
            break;
        }
        // Find the next tight edge: min over inter-component edges of
        // (c(u,v) - a(u) - a(v)) / (act(comp(u)) + act(comp(v))).
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            let cu = uf.find(u);
            for v in (u + 1)..n {
                let w = costs.cost(u, v);
                if !w.is_finite() {
                    continue;
                }
                let cv = uf.find(v);
                if cu == cv {
                    continue;
                }
                let rate =
                    f64::from(u8::from(active.contains(&cu)) + u8::from(active.contains(&cv)));
                if rate == 0.0 {
                    continue;
                }
                let slack = (w - potential[u] - potential[v]).max(0.0);
                let dt = slack / rate;
                if best.is_none_or(|(bt, _, _)| dt < bt - EPS) {
                    best = Some((dt, u, v));
                }
            }
        }
        let (dt, eu, ev) = best.expect("terminals must be connectable to the root");
        // Advance time: grow active moats, accrue dual shares.
        if dt > 0.0 {
            for &rep in &active {
                let members: Vec<usize> = (0..n).filter(|&v| uf.find(v) == rep).collect();
                for &m in &members {
                    potential[m] += dt;
                }
                let ts = comp_terminals(&mut uf, rep, &is_terminal);
                let slice = dt / ts.len() as f64;
                for t in ts {
                    dual_share[t] += slice;
                }
                total_dual += dt;
            }
        }
        // Merge along the tight edge.
        forest.push((eu.min(ev), eu.max(ev)));
        uf.union(eu, ev);
    }

    // Prune: keep only edges on paths between terminals/root within the
    // root's component; iteratively drop non-terminal, non-root leaves.
    let pruned = prune(n, root, &is_terminal, &forest);
    let tree_cost = costs.total_cost(&pruned);
    MoatResult {
        tree_edges: pruned,
        tree_cost,
        dual_share,
        total_dual,
    }
}

fn prune(
    n: usize,
    root: usize,
    is_terminal: &[bool],
    forest: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    // Restrict to the root's component first.
    let mut uf = UnionFind::new(n);
    for &(u, v) in forest {
        uf.union(u, v);
    }
    let root_rep = uf.find(root);
    let mut edges: Vec<(usize, usize)> = forest
        .iter()
        .copied()
        .filter(|&(u, _)| uf.find(u) == root_rep)
        .collect();
    loop {
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let before = edges.len();
        edges.retain(|&(u, v)| {
            let drop_u = degree[u] == 1 && !is_terminal[u] && u != root;
            let drop_v = degree[v] == 1 && !is_terminal[v] && v != root;
            !(drop_u || drop_v)
        });
        if edges.len() == before {
            return edges;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::dreyfus_wagner_cost;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{approx_eq, Point, PowerModel};

    fn connects(n: usize, root: usize, terminals: &[usize], edges: &[(usize, usize)]) -> bool {
        let mut uf = UnionFind::new(n);
        for &(u, v) in edges {
            uf.union(u, v);
        }
        terminals.iter().all(|&t| uf.connected(t, root))
    }

    #[test]
    fn two_point_instance_charges_the_single_terminal() {
        let m = CostMatrix::from_edges(2, &[(0, 1, 4.0)]);
        let r = moat_growing(&m, 0, &[1]);
        assert_eq!(r.tree_edges, vec![(0, 1)]);
        assert!(approx_eq(r.tree_cost, 4.0));
        // Terminal's moat and the root's... only the terminal component is
        // active, so it grows alone until the edge is tight: share = 4.
        assert!(approx_eq(r.dual_share[1], 4.0));
        assert!(approx_eq(r.total_dual, 4.0));
    }

    #[test]
    fn symmetric_pair_splits_growth() {
        // Root in the middle, terminals at ±1: both moats grow at rate 1 and
        // meet the root simultaneously; each terminal pays its own edge's
        // tightening share.
        let m = CostMatrix::from_edges(3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 2.0)]);
        let r = moat_growing(&m, 0, &[1, 2]);
        assert!(connects(3, 0, &[1, 2], &r.tree_edges));
        assert!(approx_eq(r.tree_cost, 2.0));
        assert!(approx_eq(r.dual_share[1], r.dual_share[2]));
        assert!(approx_eq(r.total_dual, r.dual_share[1] + r.dual_share[2]));
    }

    #[test]
    fn tree_connects_all_terminals() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.2),
            Point::xy(2.0, -0.1),
            Point::xy(3.0, 0.0),
            Point::xy(1.5, 2.0),
        ];
        let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
        let terminals = [1, 3, 4];
        let r = moat_growing(&m, 0, &terminals);
        assert!(connects(5, 0, &terminals, &r.tree_edges));
    }

    #[test]
    fn shares_are_nonzero_only_for_terminals() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(1.0, 1.0),
        ];
        let m = CostMatrix::from_points(&pts, &PowerModel::linear());
        let r = moat_growing(&m, 0, &[3]);
        assert_eq!(r.dual_share[1], 0.0);
        assert_eq!(r.dual_share[2], 0.0);
        assert!(r.dual_share[3] > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn gw_invariants_on_random_instances(seed in 0u64..500) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..9);
            let k = rng.gen_range(1usize..n);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
            let terminals: Vec<usize> = (1..=k).collect();
            let r = moat_growing(&m, 0, &terminals);

            // (1) Feasibility.
            prop_assert!(connects(n, 0, &terminals, &r.tree_edges));
            // (2) Dual shares sum to the total dual.
            let sum: f64 = r.dual_share.iter().sum();
            prop_assert!(approx_eq(sum, r.total_dual));
            // (3) The classical 2x guarantees, vs the exact optimum.
            let mut all = terminals.clone();
            all.push(0);
            let opt = dreyfus_wagner_cost(&m, &all);
            prop_assert!(r.tree_cost <= 2.0 * r.total_dual + 1e-6,
                "tree cost {} exceeds 2 * dual {}", r.tree_cost, r.total_dual);
            prop_assert!(r.total_dual <= opt + 1e-6,
                "dual {} exceeds OPT {}", r.total_dual, opt);
            // (4) Therefore 2 * shares covers the tree and is within 2 OPT.
            prop_assert!(2.0 * sum + 1e-6 >= r.tree_cost);
            prop_assert!(2.0 * sum <= 2.0 * opt + 1e-6);
        }

        #[test]
        fn shares_cover_at_least_half_the_tree(seed in 0u64..200) {
            // The defining GW inequality, rephrased per terminal: the sum of
            // dual shares is at least half the pruned-tree cost, so charging
            // 2x the share always recovers the built tree.
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..9);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let m = CostMatrix::from_points(&pts, &PowerModel::free_space());
            let k = rng.gen_range(1usize..(n - 1));
            let terminals: Vec<usize> = (1..=k).collect();
            let r = moat_growing(&m, 0, &terminals);
            let sum: f64 = r.dual_share.iter().sum();
            prop_assert!(2.0 * sum + 1e-6 >= r.tree_cost);
        }
    }
}
