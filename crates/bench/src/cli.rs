//! Shared argument parsing for the sweep binaries.
//!
//! Every `table_*` / `fig*` binary is a two-liner that resolves its
//! experiment through the registry and delegates to [`table_main`]; all
//! sweeping goes through [`crate::engine::run_sweep`], so no binary
//! carries its own seed loop or output-format sniffing.
//! `all_experiments` shares the positional-SEEDS handling via
//! [`try_seeds_arg`].

use crate::engine::{run_sweep, SweepConfig};
use crate::harness::OutputMode;
use crate::registry;

/// Try to consume `arg` as the positional SEEDS value. Returns `false`
/// when `arg` is not a number (the caller handles its own flags); exits
/// with status 2 (printing `usage`) when SEEDS is zero or given twice.
pub fn try_seeds_arg(arg: &str, seeds: &mut Option<u64>, usage: &str) -> bool {
    let Ok(n) = arg.parse::<u64>() else {
        return false;
    };
    if n == 0 {
        eprintln!("SEEDS must be at least 1\n{usage}");
        std::process::exit(2);
    }
    if let Some(prev) = seeds.replace(n) {
        eprintln!("SEEDS given twice ({prev}, then {n})\n{usage}");
        std::process::exit(2);
    }
    true
}

/// Parse `[SEEDS] [--json]` and run the single experiment `id`,
/// emitting its table to stdout in the requested mode. Exits with
/// status 2 on bad arguments (unknown flag, zero or repeated SEEDS).
pub fn table_main(id: &str) {
    let program = std::env::args()
        .next()
        .as_deref()
        .and_then(|p| p.rsplit(['/', '\\']).next().map(str::to_string))
        .unwrap_or_else(|| id.to_lowercase());
    let usage = format!("usage: {program} [SEEDS] [--json]");
    let mut seeds: Option<u64> = None;
    let mut mode = OutputMode::Text;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            mode = OutputMode::Json;
        } else if !try_seeds_arg(&arg, &mut seeds, &usage) {
            eprintln!("unrecognised argument `{arg}`\n{usage}");
            std::process::exit(2);
        }
    }
    let exp = registry::find(id).unwrap_or_else(|| panic!("experiment {id} is not registered"));
    let run = run_sweep(&[exp], &SweepConfig::with_seeds(seeds.unwrap_or(20)));
    run.experiments[0].table.emit(mode);
}
