//! T14 — stream table: epoch-pipelined streaming ingestion gated
//! byte-identical to single-threaded batch replay, with exact latency
//! percentiles.
//!
//! The streaming layer ([`wmcs_wireless::StreamService`]) ingests one
//! interleaved `(group, event)` stream per `(scenario, seed)` cell — the
//! round-robin interleaving of the same deterministic
//! [`MultiGroupProcess`] workload T12 serves batch-wise — under **two**
//! regimes:
//!
//! * **watermark regime** (capacity ≫ watermark): every epoch is a
//!   count-watermark seal; admission must never reject;
//! * **saturation regime** (capacity < watermark): every full epoch is a
//!   backpressure seal; with retry-on-busy submission a group admitting
//!   `m` events must see exactly `⌊(m−1)/capacity⌋` deterministic
//!   [`wmcs_wireless::Admission::Busy`] rejections, each retried once.
//!
//! Both runs are gated **byte-identical** to replaying each group's
//! [`wmcs_wireless::epoch_plan`] chunks through a fresh single-threaded
//! [`MulticastService`] (`with_threads(1)` — the pinned reference), and
//! after **every epoch** the cell gates exact budget balance of each
//! Shapley group's charges against its served subtree plus voluntary
//! participation of every group's charges against the reference bid
//! profile.
//!
//! The watermark run's virtual-clock samples feed the exact
//! nearest-rank percentile harness ([`crate::latency`]): p50/p99/p999
//! per event class (join, leave, rebid, reprice) land in the table and
//! the sweep JSON as informational cells — deterministic integer math,
//! identical on every machine and thread count. The ≥ 1M events/s
//! throughput SLO at G = 4096 × n = 10⁵ lives in the release-mode
//! `stream_slo` example and the `stream_throughput` criterion bench
//! (see EXPERIMENTS.md), not in this table.

use crate::harness::scenario_network;
use crate::latency::{EventClass, LatencyRecorder};
use crate::registry::{all_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{ChurnEvent, LayoutFamily, MultiGroupProcess, Scenario, BB_TOL, EPS, VP_TOL};
use wmcs_wireless::{
    epoch_plan, GroupMechanism, MulticastService, StreamConfig, StreamReport, StreamService,
    SubstrateBuilder, TreeKind, UniversalTree,
};

/// Churn batches per group (after the per-group warm-up batch).
const BATCHES: usize = 4;
/// Count watermark sealing an epoch in both regimes.
const WATERMARK: usize = 8;
/// Watermark-regime queue capacity (≫ watermark: no rejection ever).
const WIDE_CAPACITY: usize = 64;
/// Saturation-regime queue capacity (< watermark: every full epoch is a
/// backpressure seal).
const TIGHT_CAPACITY: usize = 4;

/// The T14 experiment (registered as `"T14"`).
pub struct T14;

/// Drive `stream` through a fresh streaming service under `config`.
fn run_stream(
    ut: &UniversalTree,
    mechanisms: &[GroupMechanism],
    stream: &[(usize, ChurnEvent)],
    config: StreamConfig,
) -> StreamReport {
    let mut svc = StreamService::new(ut, config);
    for &m in mechanisms {
        svc.add_group(m);
    }
    let ((), report) = svc.drive(|h| {
        for &(group, ev) in stream {
            h.submit_blocking(group, ev);
        }
    });
    report
}

impl Experiment for T14 {
    fn id(&self) -> &'static str {
        "T14"
    }

    fn title(&self) -> &'static str {
        "stream: epoch-pipelined ingestion ≡ batch replay, exact latency percentiles"
    }

    fn claim(&self) -> &'static str {
        "epoch-pipelined streaming ingestion with bounded queues and deterministic \
         count-watermark sealing is byte-identical to single-threaded batch replay of the \
         epoch plan, with exact per-epoch BB and VP, exact Busy accounting under \
         saturation, and exact virtual-clock p50/p99/p999 per event class"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "events",
            "epochs",
            "join p50/99/999",
            "leave p50/99/999",
            "rebid p50/99/999",
            "repr p50/99/999",
            "max rel |Σφ−C|",
            "stream≡batch",
            "busy/VP",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(&LayoutFamily::ALL, &[64, 256], &[2], &[2.0, 4.0])
            .into_iter()
            .map(|sc| sc.with_groups(sc.n / 4))
            .collect()
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        let net = ut.network();
        let n_players = net.n_players();
        let g = scenario.groups;
        let broadcast = ut.multicast_cost(&net.non_source_stations());
        let hi = (2.0 * broadcast / n_players as f64).max(EPS);
        let trace = MultiGroupProcess::new(n_players, g, BATCHES, hi, seed ^ 0x7a14).generate();
        let stream = trace.interleaved();
        let mechanisms: Vec<GroupMechanism> = (0..g).map(GroupMechanism::alternating).collect();

        let mut stream_ok = true;
        let mut busy_ok = true;
        let mut vp_ok = true;
        let mut max_bb = 0.0f64;
        let mut epochs_watermark = 0usize;
        let mut rec = LatencyRecorder::new();

        for (wide, config) in [
            (true, StreamConfig::new(WATERMARK, WIDE_CAPACITY, 2)),
            (false, StreamConfig::new(WATERMARK, TIGHT_CAPACITY, 3)),
        ] {
            let report = run_stream(&ut, &mechanisms, &stream, config);
            if wide {
                epochs_watermark = report.n_epochs();
                rec.record_stream(&report.latencies());
            }
            // The single-threaded pinned reference, replayed per group
            // along the pure epoch plan. Groups are independent, so one
            // reference service can serve every group's chunk sequence.
            let mut reference = MulticastService::new(&ut).with_threads(1);
            for &m in &mechanisms {
                reference.add_group(m);
            }
            for gr in &report.groups {
                let events: Vec<ChurnEvent> = stream
                    .iter()
                    .filter(|&&(eg, _)| eg == gr.group)
                    .map(|&(_, ev)| ev)
                    .collect();
                // Deterministic admission accounting: everything admitted,
                // Busy exactly at the saturation boundaries (each retried
                // once by submit_blocking), nothing in the wide regime.
                busy_ok &= gr.accepted == events.len() as u64;
                let expect_busy = if config.capacity < config.watermark && !events.is_empty() {
                    ((events.len() - 1) / config.capacity) as u64
                } else {
                    0
                };
                busy_ok &= gr.rejected == expect_busy && gr.retries == expect_busy;

                let plan = epoch_plan(&events, &config);
                stream_ok &= gr.epochs.len() == plan.len();
                for (k, chunk) in plan.iter().enumerate() {
                    let expect = reference
                        .step(&[(gr.group, chunk)])
                        .pop()
                        .expect("one outcome per addressed group")
                        .outcome;
                    let Some(got) = gr.epochs.get(k) else {
                        stream_ok = false;
                        continue;
                    };
                    stream_ok &= got.outcome == expect && got.n_events == chunk.len();
                    // Exact BB for Shapley groups, against the group's
                    // own served subtree, after every epoch.
                    if gr.mechanism == GroupMechanism::Shapley {
                        let stations: Vec<usize> = got
                            .outcome
                            .receivers
                            .iter()
                            .map(|&p| net.station_of_player(p))
                            .collect();
                        let cost = ut.multicast_cost(&stations);
                        max_bb = max_bb.max((got.outcome.revenue() - cost).abs() / cost.max(1.0));
                    }
                    // VP for every group after every epoch: nobody is
                    // charged beyond its reference bid.
                    let bids = reference.reported_profile(gr.group);
                    vp_ok &= got.outcome.receivers.iter().all(|&p| {
                        got.outcome.shares[p] <= bids[p] + VP_TOL * (1.0 + bids[p].abs())
                    });
                }
            }
        }

        let mut obs = vec![
            stream.len() as f64,
            epochs_watermark as f64,
            f64::from(stream_ok),
            f64::from(busy_ok),
            max_bb,
            f64::from(vp_ok),
        ];
        for class in EventClass::ALL {
            let s = rec.summary(class);
            obs.extend([s.p50 as f64, s.p99 as f64, s.p999 as f64]);
        }
        obs
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let stream = all_true(obs, 2);
        let busy = all_true(obs, 3);
        let bb = fmax(obs, 4);
        let vp = all_true(obs, 5);
        let pct = |base: usize| {
            format!(
                "{:.0}/{:.0}/{:.0}",
                fmax(obs, base),
                fmax(obs, base + 1),
                fmax(obs, base + 2)
            )
        };
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.0}", mean(obs, 0)),
                format!("{:.0}", mean(obs, 1)),
                pct(6),
                pct(9),
                pct(12),
                pct(15),
                format!("{bb:.2e}"),
                stream.to_string(),
                format!("{busy}/{vp}"),
            ],
            bb < BB_TOL && stream && busy && vp,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "streaming ingestion is byte-identical to single-threaded batch replay of the \
             epoch plan on every layout, in both the watermark and the saturation regime, \
             with exact per-epoch BB and VP and exact deterministic Busy accounting"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
