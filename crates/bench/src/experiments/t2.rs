//! T2 — Theorems 2.2/2.3: the NWST mechanism's budget-balance factor
//! against the exact optimum, plus strategyproofness sweeps, on
//! layout-driven node-weighted instances.

use crate::harness::{nwst_terminals_for, random_nwst_scenario, random_utilities};
use crate::registry::{all_true, count_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_game::{find_unilateral_deviation, Mechanism};
use wmcs_geom::{LayoutFamily, Scenario, REL_TOL, SP_TOL_APPROX, VP_TOL};
use wmcs_mechanisms::NwstCostSharingMechanism;
use wmcs_nwst::nwst_exact_cost;

/// The T2 experiment (registered as `"T2"`).
pub struct T2;

impl Experiment for T2 {
    fn id(&self) -> &'static str {
        "T2"
    }

    fn title(&self) -> &'static str {
        "NWST mechanism budget balance (Thms 2.2/2.3)"
    }

    fn claim(&self) -> &'static str {
        "revenue covers the built tree and stays within 1.5 ln k of the NWST optimum; \
         strategyproof"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "k",
            "seeds",
            "mean Σc/OPT",
            "max Σc/OPT",
            "bound max(1.5 ln k, 2)",
            "max tree/OPT",
            "cost recovery",
            "deviations",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        let mut v = Scenario::matrix(
            &[
                LayoutFamily::UniformBox,
                LayoutFamily::Clustered,
                LayoutFamily::Grid,
                LayoutFamily::Circle,
            ],
            &[8, 12],
            &[2],
            &[2.0],
        );
        v.push(Scenario::new(LayoutFamily::UniformBox, 14, 2, 2.0));
        v
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let k = nwst_terminals_for(scenario.n);
        let (g, terminals) = random_nwst_scenario(scenario, seed, k);
        let Some(exact) = nwst_exact_cost(&g, &terminals) else {
            return vec![];
        };
        if exact < REL_TOL {
            // Degenerate draw: the terminals connect for free, so the
            // competitiveness ratio is undefined. Skip.
            return vec![];
        }
        let mech = NwstCostSharingMechanism::new(g, terminals);
        // Rich profile: everyone is served, so revenue/OPT is the
        // mechanism's realised competitiveness factor.
        let out = mech.run(&vec![1e9; k]);
        let ratio = out.revenue() / exact;
        let tree_ratio = out.served_cost / exact;
        let recovered = out.revenue() + VP_TOL >= out.served_cost;
        // Strategyproofness on a random modest profile.
        let u = random_utilities(seed ^ 0xfee1, k, 6.0);
        let deviation = find_unilateral_deviation(&mech, &u, SP_TOL_APPROX).is_some();
        vec![
            ratio,
            tree_ratio,
            f64::from(recovered),
            f64::from(deviation),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        // A cell whose draws were all degenerate passes vacuously
        // (`obs` empty ⇒ fmax = 0 ≤ bound). That is deliberate: failing
        // it would break the monotone-under-seed-subsetting contract (a
        // passing 20-seed baseline could drift against a 3-seed CI run
        // whose few draws all happened to be degenerate). The rendered
        // `seeds` column exposes the effective sample size.
        let k = nwst_terminals_for(scenario.n);
        let bound = (1.5 * (k as f64).ln()).max(2.0);
        let max = fmax(obs, 0);
        let recovered = all_true(obs, 2);
        RowSummary::gated(
            vec![
                scenario.label(),
                k.to_string(),
                obs.len().to_string(),
                format!("{:.3}", mean(obs, 0)),
                format!("{max:.3}"),
                format!("{bound:.3}"),
                format!("{:.3}", fmax(obs, 1)),
                recovered.to_string(),
                count_true(obs, 3).to_string(),
            ],
            max <= bound + REL_TOL && recovered,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "ln-bound and cost recovery reproduce on every layout; SP deviations on random \
             profiles are the Eq. (5) threshold-tightness finding (DESIGN.md §3a), pinned as a \
             test in wmcs-mechanisms::nwst_mechanism"
                .into()
        } else {
            "MISMATCH on the BB claims".into()
        }
    }
}
