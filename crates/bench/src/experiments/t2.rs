//! T2 — Theorems 2.2/2.3: the NWST mechanism's budget-balance factor
//! against the exact optimum, plus strategyproofness sweeps.

use crate::harness::{parallel_map_seeds, random_nwst, random_utilities, Table};
use wmcs_game::{find_unilateral_deviation, Mechanism};
use wmcs_mechanisms::NwstCostSharingMechanism;
use wmcs_nwst::nwst_exact_cost;

struct Row {
    ratio: f64,
    tree_ratio: f64,
    recovered: bool,
    deviation: bool,
}

fn one(seed: u64, n: usize, k: usize) -> Option<Row> {
    let (g, terminals) = random_nwst(seed, n, k);
    let exact = nwst_exact_cost(&g, &terminals)?;
    if exact < 1e-6 {
        return None;
    }
    let mech = NwstCostSharingMechanism::new(g, terminals);
    // Rich profile: everyone is served, so revenue/OPT is the mechanism's
    // realised competitiveness factor.
    let rich = vec![1e9; k];
    let out = mech.run(&rich);
    let ratio = out.revenue() / exact;
    let tree_ratio = out.served_cost / exact;
    let recovered = out.revenue() + 1e-9 >= out.served_cost;
    // Strategyproofness on a random modest profile.
    let u = random_utilities(seed ^ 0xfee1, k, 6.0);
    let deviation = find_unilateral_deviation(&mech, &u, 1e-6).is_some();
    Some(Row {
        ratio,
        tree_ratio,
        recovered,
        deviation,
    })
}

/// Run T2.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T2",
        "NWST mechanism budget balance (Thms 2.2/2.3)",
        "revenue covers the built tree and stays within 1.5 ln k of the NWST optimum; strategyproof",
        &[
            "k",
            "n",
            "seeds",
            "mean Σc/OPT",
            "max Σc/OPT",
            "bound max(1.5 ln k, 2)",
            "max tree/OPT",
            "cost recovery",
            "deviations",
        ],
    );
    let mut all_good = true;
    let mut total_devs = 0usize;
    let mut total_profiles = 0usize;
    for &(n, k) in &[(8usize, 3usize), (10, 4), (12, 5), (14, 6)] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 101 + k as u64).collect();
        let rows: Vec<Row> = parallel_map_seeds(&seeds, |seed| one(seed, n, k))
            .into_iter()
            .flatten()
            .collect();
        let count = rows.len();
        let mean = rows.iter().map(|r| r.ratio).sum::<f64>() / count as f64;
        let max = rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
        let max_tree = rows.iter().map(|r| r.tree_ratio).fold(0.0, f64::max);
        let bound = (1.5 * (k as f64).ln()).max(2.0);
        let recovered = rows.iter().all(|r| r.recovered);
        let devs = rows.iter().filter(|r| r.deviation).count();
        total_devs += devs;
        total_profiles += count;
        all_good &= max <= bound + 1e-6 && recovered;
        t.push_row(vec![
            k.to_string(),
            n.to_string(),
            count.to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{bound:.3}"),
            format!("{max_tree:.3}"),
            recovered.to_string(),
            devs.to_string(),
        ]);
    }
    t.verdict = if all_good {
        format!(
            "ln-bound and cost recovery reproduce exactly; SP deviations on {total_devs}/{total_profiles} \
             random profiles — the Eq. (5) threshold-tightness finding (DESIGN.md §3a), pinned as a test \
             in wmcs-mechanisms::nwst_mechanism"
        )
    } else {
        "MISMATCH on the BB claims".into()
    };
    t
}
