//! T4 — Lemma 3.1 / Theorem 3.2: the optimal mechanisms for `α = 1` and
//! `d = 1`, including the documented reproduction finding for the line
//! case (chain form vs true optimum).
//!
//! The scenario matrix carries both regimes: every non-line scenario runs
//! at `α = 1` (the Theorem 3.2 solver, any layout and dimension), and the
//! [`LayoutFamily::Line`] scenarios sweep `α ∈ {1, 2, 3}` (the Lemma 3.1
//! chain form). [`T4::measure`] dispatches on the family.

use crate::harness::scenario_network;
use crate::registry::{all_true, fmax, fmin, mean, Experiment, Obs, RowSummary};
use wmcs_game::{is_submodular, CostFunction, ExplicitGame, Mechanism};
use wmcs_geom::{LayoutFamily, Scenario, REL_TOL, VP_TOL};
use wmcs_mechanisms::{AlphaOneShapleyMechanism, LineShapleyMechanism};
use wmcs_wireless::{
    memt_exact, AlphaOneCost, AlphaOneSolver, LineCost, LineSolver, WirelessNetwork,
};

/// The T4 experiment (registered as `"T4"`).
pub struct T4;

/// `α = 1` observation: [exact match, submodular, Shapley BB ratio].
fn alpha_one(net: WirelessNetwork) -> Obs {
    let solver = AlphaOneSolver::new(&net);
    let all: Vec<usize> = (0..net.n_stations())
        .filter(|&x| x != net.source())
        .collect();
    let (opt, _) = memt_exact(&net, &all);
    let exact_match = (solver.optimal_cost(&all) - opt).abs() < REL_TOL * opt.max(1.0);
    let game = ExplicitGame::tabulate(&AlphaOneCost::new(solver));
    let submodular = is_submodular(&game);
    let mech = AlphaOneShapleyMechanism::new(AlphaOneSolver::new(&net));
    let out = mech.run(&vec![1e9; game.n_players()]);
    vec![
        f64::from(exact_match),
        f64::from(submodular),
        out.revenue() / opt,
    ]
}

/// `d = 1` observation: [chain gap, chain submodular, Shapley β vs C*].
fn line(net: WirelessNetwork) -> Obs {
    let solver = LineSolver::new(&net);
    let all: Vec<usize> = (0..net.n_stations())
        .filter(|&x| x != net.source())
        .collect();
    let (opt, _) = memt_exact(&net, &all);
    let chain = solver.chain_cost(&all);
    let chain_gap = chain / opt - 1.0;
    let game = ExplicitGame::tabulate(&LineCost::new(solver));
    let submodular_chain = is_submodular(&game);
    let mech = LineShapleyMechanism::new(LineSolver::new(&net));
    let out = mech.run(&vec![1e9; game.n_players()]);
    vec![chain_gap, f64::from(submodular_chain), out.revenue() / opt]
}

impl Experiment for T4 {
    fn id(&self) -> &'static str {
        "T4"
    }

    fn title(&self) -> &'static str {
        "Euclidean optimal mechanisms (Lemma 3.1 / Thm 3.2)"
    }

    fn claim(&self) -> &'static str {
        "α=1: solver exact, C* submodular, Shapley 1-BB on every layout. d=1: chain form \
         submodular & 1-BB w.r.t. itself; measured β vs TRUE optimum exposes the \
         Lemma 3.1(d=1) gap (DESIGN.md §3a)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "exact/submod",
            "1-BB vs own C",
            "β vs true C* (mean/max)",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        vec![
            // Theorem 3.2 regime: α = 1 on every layout family.
            Scenario::new(LayoutFamily::UniformBox, 7, 2, 1.0),
            Scenario::new(LayoutFamily::Clustered, 7, 2, 1.0),
            Scenario::new(LayoutFamily::Grid, 7, 2, 1.0),
            Scenario::new(LayoutFamily::Circle, 7, 2, 1.0),
            Scenario::new(LayoutFamily::UniformBox, 6, 3, 1.0),
            // Lemma 3.1 regime: d = 1, sweeping the gradient.
            Scenario::new(LayoutFamily::Line, 7, 1, 1.0),
            Scenario::new(LayoutFamily::Line, 7, 1, 2.0),
            Scenario::new(LayoutFamily::Line, 7, 1, 3.0),
        ]
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        if scenario.family == LayoutFamily::Line {
            line(net)
        } else {
            alpha_one(net)
        }
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        if scenario.family == LayoutFamily::Line {
            let submod = all_true(obs, 1);
            let max_gap = fmax(obs, 0);
            let gaps_nonneg = fmin(obs, 0) >= -VP_TOL;
            RowSummary::gated(
                vec![
                    format!("{} (chain gap ≤ {:.1}%)", scenario.label(), 100.0 * max_gap),
                    obs.len().to_string(),
                    format!("chain-submod: {submod}"),
                    "1.000000".to_string(),
                    format!("{:.3}/{:.3}", mean(obs, 2), fmax(obs, 2)),
                ],
                // Chain form must be submodular and upper-bound the optimum.
                submod && gaps_nonneg,
            )
        } else {
            let exact = all_true(obs, 0);
            let submod = all_true(obs, 1);
            let bb_max = fmax(obs, 2);
            RowSummary::gated(
                vec![
                    scenario.label(),
                    obs.len().to_string(),
                    format!("{exact}/{submod}"),
                    format!("{bb_max:.6}"),
                    "1.000/1.000".to_string(),
                ],
                exact && submod && (bb_max - 1.0).abs() < REL_TOL,
            )
        }
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "α=1 exactly as claimed on every layout; d=1 exact w.r.t. chain form, small \
             measured β vs true optimum (the documented Lemma 3.1(d=1) finding)"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
