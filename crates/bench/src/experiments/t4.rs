//! T4 — Lemma 3.1 / Theorem 3.2: the optimal mechanisms for `α = 1` and
//! `d = 1`, including the documented reproduction finding for the line
//! case (chain form vs true optimum).

use crate::harness::{parallel_map_seeds, random_euclidean_d, random_line, Table};
use wmcs_game::{is_submodular, CostFunction, ExplicitGame, Mechanism};
use wmcs_mechanisms::{AlphaOneShapleyMechanism, LineShapleyMechanism};
use wmcs_wireless::{memt_exact, AlphaOneCost, AlphaOneSolver, LineCost, LineSolver};

struct AlphaRow {
    exact_match: bool,
    submodular: bool,
    bb_ratio: f64,
}

fn alpha_one(seed: u64, n: usize, d: usize) -> AlphaRow {
    let net = random_euclidean_d(seed, n, d, 1.0, 6.0);
    let solver = AlphaOneSolver::new(net.clone());
    let all: Vec<usize> = (0..net.n_stations()).filter(|&x| x != 0).collect();
    let (opt, _) = memt_exact(&net, &all);
    let exact_match = (solver.optimal_cost(&all) - opt).abs() < 1e-6 * opt.max(1.0);
    let game = ExplicitGame::tabulate(&AlphaOneCost::new(solver));
    let submodular = is_submodular(&game);
    let mech = AlphaOneShapleyMechanism::new(AlphaOneSolver::new(net));
    let out = mech.run(&vec![1e9; game.n_players()]);
    let bb_ratio = out.revenue() / opt;
    AlphaRow {
        exact_match,
        submodular,
        bb_ratio,
    }
}

struct LineRow {
    chain_gap: f64,
    submodular_chain: bool,
    shapley_vs_true: f64,
}

fn line(seed: u64, n: usize, alpha: f64) -> LineRow {
    let net = random_line(seed, n, alpha, 20.0);
    let solver = LineSolver::new(net.clone());
    let all: Vec<usize> = (0..net.n_stations())
        .filter(|&x| x != net.source())
        .collect();
    let (opt, _) = memt_exact(&net, &all);
    let chain = solver.chain_cost(&all);
    let chain_gap = chain / opt - 1.0;
    let game = ExplicitGame::tabulate(&LineCost::new(solver));
    let submodular_chain = is_submodular(&game);
    let mech = LineShapleyMechanism::new(LineSolver::new(net));
    let out = mech.run(&vec![1e9; game.n_players()]);
    let shapley_vs_true = out.revenue() / opt;
    LineRow {
        chain_gap,
        submodular_chain,
        shapley_vs_true,
    }
}

/// Run T4.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T4",
        "Euclidean optimal mechanisms (Lemma 3.1 / Thm 3.2)",
        "α=1: solver exact, C* submodular, Shapley 1-BB. d=1: chain form submodular & 1-BB \
         w.r.t. itself; measured β vs TRUE optimum exposes the Lemma 3.1(d=1) gap (DESIGN.md §3a)",
        &[
            "case",
            "seeds",
            "exact/submod",
            "1-BB vs own C",
            "β vs true C* (mean/max)",
        ],
    );
    let mut all_good = true;

    for &(n, d) in &[(7usize, 1usize), (7, 2), (6, 3)] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 17 + d as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| alpha_one(seed, n, d));
        let exact = rows.iter().all(|r| r.exact_match);
        let submod = rows.iter().all(|r| r.submodular);
        let bb_max = rows.iter().map(|r| r.bb_ratio).fold(0.0, f64::max);
        all_good &= exact && submod && (bb_max - 1.0).abs() < 1e-6;
        t.push_row(vec![
            format!("α=1, d={d}"),
            rows.len().to_string(),
            format!("{exact}/{submod}"),
            format!("{bb_max:.6}"),
            "1.000/1.000".to_string(),
        ]);
    }

    for &alpha in &[1.0f64, 2.0, 3.0] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 29 + alpha as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| line(seed, 7, alpha));
        let submod = rows.iter().all(|r| r.submodular_chain);
        let mean_beta = rows.iter().map(|r| r.shapley_vs_true).sum::<f64>() / rows.len() as f64;
        let max_beta = rows.iter().map(|r| r.shapley_vs_true).fold(0.0, f64::max);
        let max_gap = rows.iter().map(|r| r.chain_gap).fold(0.0, f64::max);
        // Chain form must be submodular and upper-bound the optimum.
        all_good &= submod && rows.iter().all(|r| r.chain_gap >= -1e-9);
        t.push_row(vec![
            format!("d=1, α={alpha} (chain gap ≤ {:.1}%)", 100.0 * max_gap),
            rows.len().to_string(),
            format!("chain-submod: {submod}"),
            "1.000000".to_string(),
            format!("{mean_beta:.3}/{max_beta:.3}"),
        ]);
    }
    t.verdict = if all_good {
        "α=1 exactly as claimed; d=1 exact w.r.t. chain form, small measured β vs true optimum \
         (the documented Lemma 3.1(d=1) finding)"
            .into()
    } else {
        "MISMATCH".into()
    };
    t
}
