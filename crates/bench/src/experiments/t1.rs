//! T1 — Lemma 2.1 + §2.1 mechanisms on universal trees: submodularity,
//! exact budget balance of Shapley, efficiency of MC, group
//! strategyproofness. Both universal-tree constructions (shortest-path
//! and MST) are checked on every scenario draw.

use crate::harness::{random_utilities, scenario_network};
use crate::registry::{all_true, col, fmax, fmin, Experiment, Obs, RowSummary};
use wmcs_game::{
    find_group_deviation, find_unilateral_deviation, is_nondecreasing, is_submodular, CostFunction,
    ExplicitGame,
};
use wmcs_geom::{LayoutFamily, Scenario, REL_TOL, SP_TOL};
use wmcs_mechanisms::{UniversalMcMechanism, UniversalShapleyMechanism};
use wmcs_wireless::{SubstrateBuilder, TreeKind, UniversalTreeCost, WirelessNetwork};

/// The T1 experiment (registered as `"T1"`).
pub struct T1;

/// Per-tree checks: [submodular, monotone, max BB error, MC efficiency,
/// deviations].
fn one_tree(net: &WirelessNetwork, seed: u64, use_mst: bool) -> [f64; 5] {
    let ut = if use_mst {
        SubstrateBuilder::new(net)
            .tree(TreeKind::Mst)
            .build_universal()
    } else {
        SubstrateBuilder::new(net)
            .tree(TreeKind::Spt)
            .build_universal()
    };
    let cost = UniversalTreeCost::new(ut.clone());
    let game = ExplicitGame::tabulate(&cost);
    let submodular = is_submodular(&game);
    let monotone = is_nondecreasing(&game);

    // Shapley budget balance over all coalitions: max |Σφ − C(R)|.
    let players = game.n_players();
    let mut max_bb_err = 0.0f64;
    for mask in 0u64..(1 << players) {
        let stations = ut.network().stations_of_player_mask(mask);
        let shares = ut.shapley_shares(&stations);
        let sum: f64 = shares.iter().sum();
        max_bb_err = max_bb_err.max((sum - game.cost_mask(mask)).abs());
    }

    // MC efficiency: DP net worth vs brute-force optimum.
    let u = random_utilities(seed ^ 0x515, players, 25.0);
    let mc = UniversalMcMechanism::new(ut.clone());
    let dp = mc.net_worth(&u);
    let mut brute = 0.0f64;
    for mask in 0u64..(1 << players) {
        let util: f64 = (0..players)
            .filter(|&p| mask & (1 << p) != 0)
            .map(|p| u[p])
            .sum();
        brute = brute.max(util - game.cost_mask(mask));
    }
    let mc_efficiency = if brute > 0.0 { dp / brute } else { 1.0 };

    // Deviation sweeps on the Shapley mechanism.
    let sh = UniversalShapleyMechanism::new(ut);
    let mut deviations = 0;
    if find_unilateral_deviation(&sh, &u, SP_TOL).is_some() {
        deviations += 1;
    }
    if players <= 6 && find_group_deviation(&sh, &u, 2, SP_TOL).is_some() {
        deviations += 1;
    }
    [
        f64::from(submodular),
        f64::from(monotone),
        max_bb_err,
        mc_efficiency,
        deviations as f64,
    ]
}

impl Experiment for T1 {
    fn id(&self) -> &'static str {
        "T1"
    }

    fn title(&self) -> &'static str {
        "universal trees (Lemma 2.1 + §2.1)"
    }

    fn claim(&self) -> &'static str {
        "C_T submodular & monotone; Shapley exactly BB; MC efficient; M(Shapley) group-SP — \
         for both tree constructions on every layout"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "submod spt/mst",
            "monotone spt/mst",
            "max |Σφ−C|",
            "min MC eff",
            "deviations",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        vec![
            Scenario::new(LayoutFamily::UniformBox, 8, 2, 2.0),
            Scenario::new(LayoutFamily::Clustered, 8, 2, 2.0),
            Scenario::new(LayoutFamily::Grid, 8, 2, 2.0),
            Scenario::new(LayoutFamily::Circle, 7, 2, 2.0),
            Scenario::new(LayoutFamily::Line, 7, 1, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 6, 3, 2.0),
        ]
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let spt = one_tree(&net, seed, false);
        let mst = one_tree(&net, seed, true);
        spt.into_iter().chain(mst).collect()
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        // Component layout: spt at 0..5, mst at 5..10.
        let submod = all_true(obs, 0) && all_true(obs, 5);
        let mono = all_true(obs, 1) && all_true(obs, 6);
        let bb = fmax(obs, 2).max(fmax(obs, 7));
        let eff = fmin(obs, 3).min(fmin(obs, 8));
        // The deviation components count 0–2 findings per seed per tree
        // (unilateral + group), so sum them rather than counting seeds.
        let devs = (col(obs, 4).sum::<f64>() + col(obs, 9).sum::<f64>()) as usize;
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{}/{}", all_true(obs, 0), all_true(obs, 5)),
                format!("{}/{}", all_true(obs, 1), all_true(obs, 6)),
                format!("{bb:.2e}"),
                format!("{eff:.6}"),
                devs.to_string(),
            ],
            submod && mono && bb < REL_TOL && (eff - 1.0).abs() < REL_TOL && devs == 0,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "Lemma 2.1 and both §2.1 mechanisms reproduce exactly on every layout".into()
        } else {
            "MISMATCH".into()
        }
    }
}
