//! T1 — Lemma 2.1 + §2.1 mechanisms on universal trees: submodularity,
//! exact budget balance of Shapley, efficiency of MC, group
//! strategyproofness.

use crate::harness::{parallel_map_seeds, random_euclidean, random_utilities, Table};
use wmcs_game::{
    find_group_deviation, find_unilateral_deviation, is_nondecreasing, is_submodular, CostFunction,
    ExplicitGame,
};
use wmcs_mechanisms::{UniversalMcMechanism, UniversalShapleyMechanism};
use wmcs_wireless::{UniversalTree, UniversalTreeCost};

struct Row {
    n: usize,
    kind: &'static str,
    submodular: bool,
    monotone: bool,
    max_bb_err: f64,
    mc_efficiency: f64,
    deviations: usize,
}

fn one(seed: u64, n: usize, use_mst: bool) -> Row {
    let net = random_euclidean(seed, n, 2.0, 10.0);
    let ut = if use_mst {
        UniversalTree::mst_tree(net)
    } else {
        UniversalTree::shortest_path_tree(net)
    };
    let cost = UniversalTreeCost::new(ut.clone());
    let game = ExplicitGame::tabulate(&cost);
    let submodular = is_submodular(&game);
    let monotone = is_nondecreasing(&game);

    // Shapley budget balance over all coalitions: max |Σφ − C(R)|.
    let players = game.n_players();
    let mut max_bb_err = 0.0f64;
    for mask in 0u64..(1 << players) {
        let stations = ut.network().stations_of_player_mask(mask);
        let shares = ut.shapley_shares(&stations);
        let sum: f64 = shares.iter().sum();
        max_bb_err = max_bb_err.max((sum - game.cost_mask(mask)).abs());
    }

    // MC efficiency: DP net worth vs brute-force optimum.
    let u = random_utilities(seed ^ 0x515, players, 25.0);
    let mc = UniversalMcMechanism::new(ut.clone());
    let dp = mc.net_worth(&u);
    let mut brute = 0.0f64;
    for mask in 0u64..(1 << players) {
        let util: f64 = (0..players)
            .filter(|&p| mask & (1 << p) != 0)
            .map(|p| u[p])
            .sum();
        brute = brute.max(util - game.cost_mask(mask));
    }
    let mc_efficiency = if brute > 0.0 { dp / brute } else { 1.0 };

    // Deviation sweeps on the Shapley mechanism.
    let sh = UniversalShapleyMechanism::new(ut);
    let mut deviations = 0;
    if find_unilateral_deviation(&sh, &u, 1e-7).is_some() {
        deviations += 1;
    }
    if players <= 6 && find_group_deviation(&sh, &u, 2, 1e-7).is_some() {
        deviations += 1;
    }
    Row {
        n,
        kind: if use_mst { "mst" } else { "spt" },
        submodular,
        monotone,
        max_bb_err,
        mc_efficiency,
        deviations,
    }
}

/// Run T1.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T1",
        "universal trees (Lemma 2.1 + §2.1)",
        "C_T submodular & monotone; Shapley exactly BB; MC efficient; M(Shapley) group-SP",
        &[
            "n",
            "tree",
            "seeds",
            "submodular",
            "monotone",
            "max |Σφ−C|",
            "MC efficiency",
            "deviations",
        ],
    );
    let mut all_good = true;
    for &(n, use_mst) in &[
        (6usize, false),
        (6, true),
        (8, false),
        (8, true),
        (10, false),
    ] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 37 + n as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| one(seed, n, use_mst));
        let submod = rows.iter().all(|r| r.submodular);
        let mono = rows.iter().all(|r| r.monotone);
        let bb = rows.iter().map(|r| r.max_bb_err).fold(0.0, f64::max);
        let eff_min = rows
            .iter()
            .map(|r| r.mc_efficiency)
            .fold(f64::INFINITY, f64::min);
        let devs: usize = rows.iter().map(|r| r.deviations).sum();
        all_good &= submod && mono && bb < 1e-6 && (eff_min - 1.0).abs() < 1e-6 && devs == 0;
        t.push_row(vec![
            rows[0].n.to_string(),
            rows[0].kind.to_string(),
            seeds.len().to_string(),
            submod.to_string(),
            mono.to_string(),
            format!("{bb:.2e}"),
            format!("{eff_min:.6}"),
            devs.to_string(),
        ]);
    }
    t.verdict = if all_good {
        "Lemma 2.1 and both §2.1 mechanisms reproduce exactly".into()
    } else {
        "MISMATCH".into()
    };
    t
}
