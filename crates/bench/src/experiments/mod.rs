//! One module per experiment in `EXPERIMENTS.md` (per-experiment index in
//! `DESIGN.md` §4). Each exposes a unit struct implementing
//! [`crate::registry::Experiment`]; the instances are registered in
//! [`crate::registry::REGISTRY`] and swept by [`crate::engine::run_sweep`].

pub mod f1;
pub mod f2;
pub mod t1;
pub mod t10;
pub mod t11;
pub mod t12;
pub mod t13;
pub mod t14;
pub mod t15;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod t9;
