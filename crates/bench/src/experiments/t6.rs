//! T6 — Lemmas 3.4/3.5: the MST broadcast heuristic and the KMB Steiner
//! heuristic against the exact optimum, vs the paper's `3^d − 1` bounds
//! (6 for d = 2 by Ambühl), across the layout families.

use crate::harness::scenario_network;
use crate::registry::{fmax, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{LayoutFamily, Scenario, VP_TOL};
use wmcs_wireless::{bip_broadcast, memt_exact, mst_broadcast, steiner_multicast};

/// The T6 experiment (registered as `"T6"`).
pub struct T6;

/// The paper's MST-broadcast bound for dimension `d` (Ambühl's 6 at d=2).
fn mst_bound(d: usize) -> f64 {
    if d == 2 {
        6.0
    } else {
        3f64.powi(i32::try_from(d).expect("scenario dimension fits i32")) - 1.0
    }
}

impl Experiment for T6 {
    fn id(&self) -> &'static str {
        "T6"
    }

    fn title(&self) -> &'static str {
        "MST / Steiner heuristics vs exact MEMT (Lemmas 3.4/3.5)"
    }

    fn claim(&self) -> &'static str {
        "mst-broadcast ≤ (3^d − 1)·C* (d=2: 6 by Ambühl); Steiner-heuristic assignments \
         never exceed their tree"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "mst mean",
            "mst max",
            "bound",
            "steiner mean",
            "steiner max",
            "bip mean (ablation)",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        vec![
            Scenario::new(LayoutFamily::UniformBox, 8, 2, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 8, 2, 3.0),
            Scenario::new(LayoutFamily::Clustered, 8, 2, 2.0),
            Scenario::new(LayoutFamily::Grid, 8, 2, 2.0),
            Scenario::new(LayoutFamily::Circle, 8, 2, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 7, 3, 3.0),
        ]
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let all: Vec<usize> = (1..scenario.n).collect();
        let (opt, _) = memt_exact(&net, &all);
        let mst = mst_broadcast(&net);
        let (_, steiner) = steiner_multicast(&net, &all);
        let (bip, _) = bip_broadcast(&net);
        vec![
            mst.total_cost() / opt,
            steiner.total_cost() / opt,
            bip.total_cost() / opt,
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let bound = mst_bound(scenario.dim);
        let mst_max = fmax(obs, 0);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.3}", mean(obs, 0)),
                format!("{mst_max:.3}"),
                format!("{bound:.1}"),
                format!("{:.3}", mean(obs, 1)),
                format!("{:.3}", fmax(obs, 1)),
                format!("{:.3}", mean(obs, 2)),
            ],
            mst_max <= bound + VP_TOL,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "every measured ratio sits below the analytic bound on every layout — shape \
             matches the paper"
                .into()
        } else {
            "BOUND EXCEEDED — mismatch".into()
        }
    }
}
