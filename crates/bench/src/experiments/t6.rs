//! T6 — Lemmas 3.4/3.5: the MST broadcast heuristic and the KMB Steiner
//! heuristic against the exact optimum, vs the paper's `3^d − 1` bounds
//! (6 for d = 2 by Ambühl).

use crate::harness::{parallel_map_seeds, random_euclidean_d, Table};
use wmcs_wireless::{bip_broadcast, memt_exact, mst_broadcast, steiner_multicast};

struct Row {
    mst_ratio: f64,
    steiner_ratio: f64,
    bip_ratio: f64,
}

fn one(seed: u64, n: usize, d: usize, alpha: f64) -> Row {
    let net = random_euclidean_d(seed, n, d, alpha, 10.0);
    let all: Vec<usize> = (1..n).collect();
    let (opt, _) = memt_exact(&net, &all);
    let mst = mst_broadcast(&net);
    let (_, steiner) = steiner_multicast(&net, &all);
    let (bip, _) = bip_broadcast(&net);
    Row {
        mst_ratio: mst.total_cost() / opt,
        steiner_ratio: steiner.total_cost() / opt,
        bip_ratio: bip.total_cost() / opt,
    }
}

/// Run T6.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T6",
        "MST / Steiner heuristics vs exact MEMT (Lemmas 3.4/3.5)",
        "mst-broadcast ≤ (3^d − 1)·C* (d=2: 6 by Ambühl); Steiner-heuristic assignments never \
         exceed their tree",
        &[
            "d",
            "α",
            "n",
            "seeds",
            "mst mean",
            "mst max",
            "bound",
            "steiner mean",
            "steiner max",
            "bip mean (ablation)",
        ],
    );
    let mut all_good = true;
    for &(d, alpha, n) in &[(2usize, 2.0f64, 8usize), (2, 3.0, 8), (3, 3.0, 7)] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 53 + d as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| one(seed, n, d, alpha));
        let mst_mean = rows.iter().map(|r| r.mst_ratio).sum::<f64>() / rows.len() as f64;
        let mst_max = rows.iter().map(|r| r.mst_ratio).fold(0.0, f64::max);
        let st_mean = rows.iter().map(|r| r.steiner_ratio).sum::<f64>() / rows.len() as f64;
        let st_max = rows.iter().map(|r| r.steiner_ratio).fold(0.0, f64::max);
        let bip_mean = rows.iter().map(|r| r.bip_ratio).sum::<f64>() / rows.len() as f64;
        let bound = if d == 2 {
            6.0
        } else {
            3f64.powi(d as i32) - 1.0
        };
        all_good &= mst_max <= bound + 1e-9;
        t.push_row(vec![
            d.to_string(),
            alpha.to_string(),
            n.to_string(),
            rows.len().to_string(),
            format!("{mst_mean:.3}"),
            format!("{mst_max:.3}"),
            format!("{bound:.1}"),
            format!("{st_mean:.3}"),
            format!("{st_max:.3}"),
            format!("{bip_mean:.3}"),
        ]);
    }
    t.verdict = if all_good {
        "every measured ratio sits far below the analytic bound — shape matches the paper".into()
    } else {
        "BOUND EXCEEDED — mismatch".into()
    };
    t
}
