//! T12 — service table: G concurrent multicast groups priced over one
//! shared substrate by the sharded multi-group service layer.
//!
//! The paper prices one group over one universal tree; the service layer
//! ([`wmcs_wireless::MulticastService`]) serves G warm per-group
//! sessions — alternating `M(Shapley)` and MC — over a **single**
//! [`wmcs_wireless::TreeSubstrate`], sharded across a worker pool. Per
//! `(scenario, seed)` cell one deterministic [`MultiGroupProcess`]
//! workload (Zipf group sizes, overlapping member sets, light/heavy
//! per-group churn) runs through three servings of the same stream:
//!
//! * the **sharded** service (2 workers);
//! * the **single-thread** service — outcomes must be byte-identical to
//!   the sharded ones (the determinism contract of the shard);
//! * per group, an **independent single-group session over its own
//!   freshly built substrate** — outcomes must again be byte-identical
//!   (cross-group isolation: no group's state ever leaks into another's
//!   prices, and sharing the substrate is observationally invisible).
//!
//! On top of the identities the cell gates, after **every** batch:
//! exact budget balance of each Shapley group's charges against its own
//! served subtree, and voluntary participation of every group's charges.
//!
//! The scenario matrix stays at n ≤ 256 / G ≤ 64 so the per-batch cold
//! references stay tractable at 20 seeds; the G = 1024 × n = 4096 scale
//! point is covered by the `service_throughput` criterion bench (see
//! EXPERIMENTS.md).

use crate::harness::scenario_network;
use crate::registry::{all_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{LayoutFamily, MultiGroupProcess, Scenario, BB_TOL, EPS, VP_TOL};
use wmcs_wireless::{GroupMechanism, GroupSession, MulticastService, SubstrateBuilder, TreeKind};

/// Churn batches per group (after the per-group warm-up batch).
const BATCHES: usize = 5;

/// The T12 experiment (registered as `"T12"`).
pub struct T12;

impl Experiment for T12 {
    fn id(&self) -> &'static str {
        "T12"
    }

    fn title(&self) -> &'static str {
        "service: G concurrent groups on one shared substrate (G ≤ 64)"
    }

    fn claim(&self) -> &'static str {
        "the sharded multi-group service prices G concurrent groups over one shared substrate \
         with exact per-group BB and VP after every batch, byte-identical to a single-thread \
         serving and to independent per-group sessions on their own substrates"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "events",
            "served frac",
            "max rel |Σφ−C|",
            "shard≡1thr",
            "isolated/VP",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(&LayoutFamily::ALL, &[64, 256], &[2], &[2.0, 4.0])
            .into_iter()
            .map(|sc| sc.with_groups(sc.n / 4))
            .collect()
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        let net = ut.network();
        let n_players = net.n_players();
        let g = scenario.groups;
        // Bids scaled to the per-player broadcast cost (the T10/T11
        // regime): groups mix served receivers with drop cascades.
        let broadcast = ut.multicast_cost(&net.non_source_stations());
        let hi = (2.0 * broadcast / n_players as f64).max(EPS);
        let trace = MultiGroupProcess::new(n_players, g, BATCHES, hi, seed ^ 0x5e7f).generate();

        let build = |threads: usize| {
            let mut svc = MulticastService::new(&ut).with_threads(threads);
            for i in 0..g {
                svc.add_group(GroupMechanism::alternating(i));
            }
            svc
        };
        let mut sharded = build(2);
        let mut serial = build(1);
        // Independent references: one session per group over its OWN
        // freshly built substrate (same network, separate allocation).
        let mut isolated: Vec<GroupSession> = (0..g)
            .map(|i| {
                GroupSession::new(
                    GroupMechanism::alternating(i),
                    &SubstrateBuilder::new(net)
                        .tree(TreeKind::Spt)
                        .build_universal(),
                )
            })
            .collect();

        let mut max_bb = 0.0f64;
        let mut shard_ok = true;
        let mut isolated_ok = true;
        let mut vp_ok = true;
        let mut served = 0.0f64;
        let mut served_cells = 0usize;

        for b in 0..trace.n_batches() {
            let batches: Vec<Vec<_>> = trace
                .groups
                .iter()
                .map(|gr| gr.trace.batches[b].clone())
                .collect();
            let outs = sharded.step_all(&batches);
            let ref_outs = serial.step_all(&batches);
            shard_ok &= outs == ref_outs;

            for (i, out) in outs.iter().enumerate() {
                let out = &out.outcome;
                // Byte-identity to the isolated own-substrate session.
                let own = isolated[i].apply_batch(&batches[i]);
                isolated_ok &= own.receivers == out.receivers
                    && own.shares == out.shares
                    && own.served_cost == out.served_cost;

                // Exact BB for Shapley groups, against the group's own
                // served subtree.
                if isolated[i].mechanism() == GroupMechanism::Shapley {
                    let stations: Vec<usize> = out
                        .receivers
                        .iter()
                        .map(|&p| net.station_of_player(p))
                        .collect();
                    let cost = ut.multicast_cost(&stations);
                    max_bb = max_bb.max((out.revenue() - cost).abs() / cost.max(1.0));
                }
                // VP for every group: nobody is charged beyond its bid.
                let bids = isolated[i].reported_profile();
                vp_ok &= out
                    .receivers
                    .iter()
                    .all(|&p| out.shares[p] <= bids[p] + VP_TOL * (1.0 + bids[p].abs()));
                let size = trace.groups[i].members.len();
                served += out.receivers.len() as f64 / size as f64;
                served_cells += 1;
            }
        }

        vec![
            trace.n_events() as f64,
            served / served_cells.max(1) as f64,
            max_bb,
            f64::from(shard_ok),
            f64::from(isolated_ok),
            f64::from(vp_ok),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let bb = fmax(obs, 2);
        let shard = all_true(obs, 3);
        let iso = all_true(obs, 4);
        let vp = all_true(obs, 5);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.0}", mean(obs, 0)),
                format!("{:.3}", mean(obs, 1)),
                format!("{bb:.2e}"),
                shard.to_string(),
                format!("{iso}/{vp}"),
            ],
            bb < BB_TOL && shard && iso && vp,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "the sharded service serves G ≤ 64 concurrent groups on one substrate with exact \
             per-group BB and VP after every batch; outcomes byte-identical to single-thread \
             and to isolated own-substrate sessions on every layout"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
