//! T5 — Lemma 3.3 breadth: how often does the *exact* optimal multicast
//! cost function violate submodularity on random instances? (The paper
//! shows existence via the pentagon; this measures prevalence, including
//! the d = 1 violations found during reproduction.)

use crate::harness::{parallel_map_seeds, random_euclidean, random_line, Table};
use wmcs_game::submodularity_violation;
use wmcs_geom::{Point, PowerModel};
use wmcs_wireless::{OptimalMulticastCost, WirelessNetwork};

/// The pinned d = 1, α = 3 witness discovered during reproduction (also a
/// unit test in `wmcs-wireless::euclidean::line`).
fn pinned_line_witness_violates() -> bool {
    let xs = [
        4.356527190351707,
        10.674030597699709,
        11.832764036637853,
        12.31465918377987, // source
        13.693364483533603,
        17.943075984877368,
    ];
    let pts: Vec<Point> = xs.iter().map(|&x| Point::on_line(x)).collect();
    let net = WirelessNetwork::euclidean(pts, PowerModel::with_alpha(3.0), 3);
    let c = OptimalMulticastCost::new(net);
    submodularity_violation(&c).is_some()
}

fn violated_2d(seed: u64, n: usize, alpha: f64) -> bool {
    let net = random_euclidean(seed, n, alpha, 20.0);
    let c = OptimalMulticastCost::new(net);
    submodularity_violation(&c).is_some()
}

fn violated_line(seed: u64, n: usize, alpha: f64) -> bool {
    let net = random_line(seed, n, alpha, 20.0);
    let c = OptimalMulticastCost::new(net);
    submodularity_violation(&c).is_some()
}

/// Run T5.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T5",
        "submodularity violations of the exact C*",
        "Lemma 3.3: violations exist for α>1, d>1 (pentagon); we also measure d=1 \
         (paper claims none — reproduction found them, DESIGN.md §3a) and α=1 (provably none)",
        &["case", "instances", "violations", "rate"],
    );
    type Cell<'a> = (&'a str, Box<dyn Fn(u64) -> bool + Sync>);
    let cells: Vec<Cell> = vec![
        ("d=2, α=2, n=7", Box::new(|s| violated_2d(s, 7, 2.0))),
        ("d=2, α=4, n=7", Box::new(|s| violated_2d(s, 7, 4.0))),
        ("d=1, α=2, n=7", Box::new(|s| violated_line(s, 7, 2.0))),
        ("d=1, α=3, n=7", Box::new(|s| violated_line(s, 7, 3.0))),
        ("d=2, α=1, n=7", Box::new(|s| violated_2d(s, 7, 1.0))),
    ];
    let mut alpha_one_clean = true;
    let mut line_violations = 0usize;
    for (name, f) in &cells {
        let seeds: Vec<u64> = (0..seeds_per_cell).collect();
        let hits = parallel_map_seeds(&seeds, f)
            .into_iter()
            .filter(|&v| v)
            .count();
        if name.starts_with("d=2, α=1") {
            alpha_one_clean = hits == 0;
        }
        if name.starts_with("d=1") {
            line_violations += hits;
        }
        t.push_row(vec![
            name.to_string(),
            seeds.len().to_string(),
            hits.to_string(),
            format!("{:.1}%", 100.0 * hits as f64 / seeds.len() as f64),
        ]);
    }
    let pinned = pinned_line_witness_violates();
    t.push_row(vec![
        "d=1, α=3 (pinned witness)".into(),
        "1".into(),
        usize::from(pinned).to_string(),
        if pinned { "100.0%" } else { "0.0%" }.into(),
    ]);
    t.verdict = format!(
        "α=1 never violates ({}); α>1 violations are common for d=2 and exist — contrary to \
         Lemma 3.1(d=1) — on the line too (random rate ~1/1000; {} random hits here, pinned \
         witness {})",
        if alpha_one_clean {
            "as proved"
        } else {
            "UNEXPECTED VIOLATION"
        },
        line_violations,
        if pinned { "reproduces" } else { "FAILED" }
    );
    t
}
