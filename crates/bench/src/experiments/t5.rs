//! T5 — Lemma 3.3 breadth: how often does the *exact* optimal multicast
//! cost function violate submodularity on random instances? (The paper
//! shows existence via the pentagon; this measures prevalence across the
//! layout families, including the d = 1 violations found during
//! reproduction.) The `α = 1` scenarios gate the proved "provably none"
//! direction; the `α > 1` rates are informational.

use crate::harness::scenario_network;
use crate::registry::{count_true, Experiment, Obs, RowSummary};
use wmcs_game::submodularity_violation;
use wmcs_geom::{LayoutFamily, Point, PowerModel, Scenario};
use wmcs_wireless::{OptimalMulticastCost, WirelessNetwork};

/// The T5 experiment (registered as `"T5"`).
pub struct T5;

/// The pinned d = 1, α = 3 witness discovered during reproduction (also a
/// unit test in `wmcs-wireless::euclidean::line`).
fn pinned_line_witness_violates() -> bool {
    let xs = [
        4.356527190351707,
        10.674030597699709,
        11.832764036637853,
        12.31465918377987, // source
        13.693364483533603,
        17.943075984877368,
    ];
    let pts: Vec<Point> = xs.iter().map(|&x| Point::on_line(x)).collect();
    let net = WirelessNetwork::euclidean(pts, PowerModel::with_alpha(3.0), 3);
    let c = OptimalMulticastCost::new(net);
    submodularity_violation(&c).is_some()
}

impl Experiment for T5 {
    fn id(&self) -> &'static str {
        "T5"
    }

    fn title(&self) -> &'static str {
        "submodularity violations of the exact C*"
    }

    fn claim(&self) -> &'static str {
        "Lemma 3.3: violations exist for α>1, d>1 (pentagon); we also measure d=1 \
         (paper claims none — reproduction found them, DESIGN.md §3a) and α=1 (provably none)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["case", "instances", "violations", "rate"]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        vec![
            Scenario::new(LayoutFamily::UniformBox, 7, 2, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 7, 2, 4.0),
            Scenario::new(LayoutFamily::Clustered, 7, 2, 2.0),
            Scenario::new(LayoutFamily::Grid, 7, 2, 2.0),
            Scenario::new(LayoutFamily::Circle, 7, 2, 2.0),
            Scenario::new(LayoutFamily::Line, 7, 1, 2.0),
            Scenario::new(LayoutFamily::Line, 7, 1, 3.0),
            // The gated "provably none" direction.
            Scenario::new(LayoutFamily::UniformBox, 7, 2, 1.0),
            Scenario::new(LayoutFamily::Grid, 7, 2, 1.0),
        ]
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let c = OptimalMulticastCost::new(net);
        vec![f64::from(submodularity_violation(&c).is_some())]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let hits = count_true(obs, 0);
        let cells = vec![
            scenario.label(),
            obs.len().to_string(),
            hits.to_string(),
            format!("{:.1}%", 100.0 * hits as f64 / obs.len().max(1) as f64),
        ];
        if scenario.alpha == 1.0 {
            // α = 1 ⇒ submodular is a theorem: any hit is a mismatch.
            RowSummary::gated(cells, hits == 0)
        } else {
            RowSummary::info(cells)
        }
    }

    fn pinned(&self) -> Vec<RowSummary> {
        let pinned = pinned_line_witness_violates();
        vec![RowSummary::gated(
            vec![
                "d=1, α=3 (pinned witness)".into(),
                "1".into(),
                usize::from(pinned).to_string(),
                if pinned { "100.0%" } else { "0.0%" }.into(),
            ],
            pinned,
        )]
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "α=1 never violates (as proved) on any layout; the pinned d=1 witness reproduces \
             — contrary to Lemma 3.1(d=1) — and the α>1 violation rates per layout are \
             informational"
                .into()
        } else {
            "MISMATCH: an α=1 violation or a failed pinned witness".into()
        }
    }
}
