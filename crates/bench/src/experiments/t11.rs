//! T11 — churn table: the live-session engines serve both §2.1
//! universal-tree mechanisms across join/leave/rebid streams at
//! n ∈ {256, 1024, 4096} on every layout family.
//!
//! Per `(scenario, seed)` cell two deterministic churn traces run on the
//! same instance — *light* (a handful of events per batch, the stable
//! session regime) and *heavy* (a constant fraction of the universe per
//! batch, the flash-crowd regime) — through a warm
//! [`wmcs_wireless::ShapleySession`] and a warm
//! [`wmcs_wireless::McSession`], gating after **every** batch:
//!
//! * exact budget balance of the charged Shapley shares against the
//!   multicast cost of the currently served subtree;
//! * voluntary participation of both sessions' charges;
//! * at n ≤ 256, byte-identity of the warm Shapley allocation to a cold
//!   engine rebuilt from scratch on the session's current receiver set
//!   ([`shapley_drop_run_from`]), and of the warm MC outcome to a fresh
//!   [`NetWorthOracle`] on the same bid vector.
//!
//! As with T10, wall-clock is not a table column (rows must be
//! deterministic); per-cell compute seconds live in the sweep JSON, and
//! the warm-vs-cold per-event costs are measured by the `session_churn`
//! criterion bench (see EXPERIMENTS.md).

use crate::harness::scenario_network;
use crate::registry::{all_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{ChurnProcess, LayoutFamily, Scenario, BB_TOL, EPS, VP_TOL};
use wmcs_wireless::incremental::{shapley_drop_run_from, NetWorthOracle};
use wmcs_wireless::session::{vcg_outcome, McSession, ShapleySession};
use wmcs_wireless::{SubstrateBuilder, TreeKind};

/// Batches per trace (after the warm-up batch that joins half the
/// universe).
const BATCHES: usize = 8;

/// The T11 experiment (registered as `"T11"`).
pub struct T11;

impl Experiment for T11 {
    fn id(&self) -> &'static str {
        "T11"
    }

    fn title(&self) -> &'static str {
        "churn: live sessions for both §2.1 mechanisms (n ≤ 4096)"
    }

    fn claim(&self) -> &'static str {
        "warm sessions absorb join/leave/rebid churn with exact BB and VP after every batch at \
         n up to 4096 under light and heavy churn; at n ≤ 256 every warm allocation is \
         byte-identical to a cold rebuild on the current receiver set"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "events l/h",
            "served frac l/h",
            "max rel |Σφ−C|",
            "ident≤256",
            "VP/MC ok",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(&LayoutFamily::ALL, &[256, 1024, 4096], &[2], &[2.0, 4.0])
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        let net = ut.network();
        let n_players = net.n_players();
        // Bids scaled to the per-player broadcast cost so traces mix
        // served receivers with genuine drop cascades (the T10 regime).
        let broadcast = ut.multicast_cost(&net.non_source_stations());
        let hi = (2.0 * broadcast / n_players as f64).max(EPS);

        let mut max_bb = 0.0f64;
        let mut vp_ok = true;
        let mut ident_ok = true;
        let mut mc_ok = true;
        let mut served = [0.0f64; 2]; // mean served fraction, per rate
        let mut events = [0.0f64; 2];

        let traces = [
            ChurnProcess::light(scenario, BATCHES, hi, seed ^ 0x11f7),
            ChurnProcess::heavy(scenario, BATCHES, hi, seed ^ 0x4eaf),
        ];
        for (rate, process) in traces.iter().enumerate() {
            let trace = process.generate();
            events[rate] = trace.n_events() as f64;
            let mut shapley = ShapleySession::new(&ut);
            let mut mc = McSession::new(&ut);
            for batch in &trace.batches {
                shapley.apply_events(batch);
                let candidates = shapley.active_players();
                let bids = shapley.reported_profile();
                let out = shapley.reprice();
                served[rate] +=
                    out.receivers.len() as f64 / (n_players as f64 * trace.batches.len() as f64);

                // Exact BB against the served subtree, every batch.
                let stations: Vec<usize> = out
                    .receivers
                    .iter()
                    .map(|&p| net.station_of_player(p))
                    .collect();
                let cost = ut.multicast_cost(&stations);
                max_bb = max_bb.max((out.revenue() - cost).abs() / cost.max(1.0));
                // VP: every survivor affords its charge.
                vp_ok &= out
                    .receivers
                    .iter()
                    .all(|&p| out.shares[p] <= bids[p] + VP_TOL);
                // Warm = cold byte-identity where the cold rebuild is
                // cheap enough to run per batch.
                if scenario.n <= 256 {
                    let cold = shapley_drop_run_from(&ut, &bids, &candidates);
                    ident_ok &= cold.receivers == out.receivers
                        && cold.shares == out.shares
                        && cold.served_cost == out.served_cost;
                }

                // The MC session: VP of the VCG charges, and warm-oracle
                // identity to a fresh DP at n ≤ 256.
                let eff = mc.apply_batch(batch);
                let mc_bids = mc.reported_profile();
                mc_ok &= eff
                    .receivers
                    .iter()
                    .all(|&p| eff.shares[p] <= mc_bids[p] + VP_TOL * (1.0 + mc_bids[p].abs()));
                if scenario.n <= 256 {
                    let cold = vcg_outcome(&ut, &NetWorthOracle::new(&ut, mc.station_utilities()));
                    mc_ok &= cold.receivers == eff.receivers
                        && cold.shares == eff.shares
                        && cold.served_cost == eff.served_cost;
                }
            }
        }

        vec![
            served[0],
            served[1],
            max_bb,
            events[0],
            events[1],
            f64::from(ident_ok),
            f64::from(vp_ok),
            f64::from(mc_ok),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let bb = fmax(obs, 2);
        let ident = all_true(obs, 5);
        let vp = all_true(obs, 6);
        let mc = all_true(obs, 7);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.0}/{:.0}", mean(obs, 3), mean(obs, 4)),
                format!("{:.3}/{:.3}", mean(obs, 0), mean(obs, 1)),
                format!("{bb:.2e}"),
                ident.to_string(),
                format!("{vp}/{mc}"),
            ],
            bb < BB_TOL && ident && vp && mc,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "live sessions stay exactly budget balanced with VP after every churn batch on \
             every layout up to n = 4096; warm allocations byte-identical to cold rebuilds \
             at n ≤ 256"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
