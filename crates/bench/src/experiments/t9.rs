//! T9 — extension ablation (this reproduction's fix for finding 2):
//! Eq. (5) scalar aggregation vs tight per-member residual checks in the
//! NWST mechanism. Measures the strategyproofness-violation rate, the
//! receiver count and the revenue of both variants on identical
//! instance/profile pairs across the layout families.

use crate::harness::{nwst_terminals_for, random_nwst_scenario, random_utilities};
use crate::registry::{all_true, count_true, mean, Experiment, Obs, RowSummary};
use wmcs_game::{find_unilateral_deviation, Mechanism};
use wmcs_geom::{LayoutFamily, Scenario, SP_TOL_APPROX, VP_TOL};
use wmcs_mechanisms::NwstCostSharingMechanism;

/// The T9 experiment (registered as `"T9"`).
pub struct T9;

impl Experiment for T9 {
    fn id(&self) -> &'static str {
        "T9"
    }

    fn title(&self) -> &'static str {
        "extension: Eq. (5) vs tight per-member budgets (fix for finding 2)"
    }

    fn claim(&self) -> &'static str {
        "extension hypothesis: tight checks reduce SP violations and serve weakly more agents \
         (less pessimistic drops) while still recovering cost"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "k",
            "seeds",
            "SP devs (paper)",
            "SP devs (tight)",
            "mean served p/t",
            "mean revenue p/t",
            "recovery",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(
            &[
                LayoutFamily::UniformBox,
                LayoutFamily::Clustered,
                LayoutFamily::Grid,
                LayoutFamily::Circle,
            ],
            &[10, 14],
            &[2],
            &[2.0],
        )
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let k = nwst_terminals_for(scenario.n);
        let (g, terminals) = random_nwst_scenario(scenario, seed, k);
        let paper = NwstCostSharingMechanism::new(g.clone(), terminals.clone());
        let tight = NwstCostSharingMechanism::new(g, terminals).with_tight_budgets();
        let u = random_utilities(seed ^ 0xabba, k, 6.0);
        let out_p = paper.run(&u);
        let out_t = tight.run(&u);
        let recovered_both = out_p.revenue() + VP_TOL >= out_p.served_cost
            && out_t.revenue() + VP_TOL >= out_t.served_cost;
        vec![
            f64::from(find_unilateral_deviation(&paper, &u, SP_TOL_APPROX).is_some()),
            f64::from(find_unilateral_deviation(&tight, &u, SP_TOL_APPROX).is_some()),
            out_p.receivers.len() as f64,
            out_t.receivers.len() as f64,
            out_p.revenue(),
            out_t.revenue(),
            f64::from(recovered_both),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let recovered = all_true(obs, 6);
        RowSummary::gated(
            vec![
                scenario.label(),
                nwst_terminals_for(scenario.n).to_string(),
                obs.len().to_string(),
                count_true(obs, 0).to_string(),
                count_true(obs, 1).to_string(),
                format!("{:.2}/{:.2}", mean(obs, 2), mean(obs, 3)),
                format!("{:.2}/{:.2}", mean(obs, 4), mean(obs, 5)),
                recovered.to_string(),
            ],
            // Only the mechanism invariant gates: both variants recover
            // cost. The serve-more/deviate-less comparison is the
            // extension's *hypothesis* and stays informational.
            recovered,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "both aggregations recover cost on every layout; the per-row deviation and \
             served/revenue columns quantify the extension's serve-more/deviate-less \
             hypothesis (informational)"
                .into()
        } else {
            "MISMATCH: a variant failed cost recovery".into()
        }
    }
}
