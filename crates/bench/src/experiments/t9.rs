//! T9 — extension ablation (this reproduction's fix for finding 2):
//! Eq. (5) scalar aggregation vs tight per-member residual checks in the
//! NWST mechanism. Measures the strategyproofness-violation rate, the
//! receiver count and the revenue of both variants on identical
//! instance/profile pairs.

use crate::harness::{parallel_map_seeds, random_nwst, random_utilities, Table};
use wmcs_game::{find_unilateral_deviation, Mechanism};
use wmcs_mechanisms::NwstCostSharingMechanism;

struct Row {
    dev_paper: bool,
    dev_tight: bool,
    served_paper: usize,
    served_tight: usize,
    revenue_paper: f64,
    revenue_tight: f64,
    recovered_both: bool,
}

fn one(seed: u64, n: usize, k: usize) -> Row {
    let (g, terminals) = random_nwst(seed, n, k);
    let paper = NwstCostSharingMechanism::new(g.clone(), terminals.clone());
    let tight = NwstCostSharingMechanism::new(g, terminals).with_tight_budgets();
    let u = random_utilities(seed ^ 0xabba, k, 6.0);
    let out_p = paper.run(&u);
    let out_t = tight.run(&u);
    Row {
        dev_paper: find_unilateral_deviation(&paper, &u, 1e-6).is_some(),
        dev_tight: find_unilateral_deviation(&tight, &u, 1e-6).is_some(),
        served_paper: out_p.receivers.len(),
        served_tight: out_t.receivers.len(),
        revenue_paper: out_p.revenue(),
        revenue_tight: out_t.revenue(),
        recovered_both: out_p.revenue() + 1e-9 >= out_p.served_cost
            && out_t.revenue() + 1e-9 >= out_t.served_cost,
    }
}

/// Run T9.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T9",
        "extension: Eq. (5) vs tight per-member budgets (fix for finding 2)",
        "extension hypothesis: tight checks reduce SP violations and serve weakly more agents \
         (less pessimistic drops) while still recovering cost",
        &[
            "k",
            "n",
            "seeds",
            "SP devs (paper)",
            "SP devs (tight)",
            "mean served p/t",
            "mean revenue p/t",
            "recovery",
        ],
    );
    let mut paper_devs = 0usize;
    let mut tight_devs = 0usize;
    let mut all_recovered = true;
    let mut tight_never_serves_fewer = true;
    for &(n, k) in &[(8usize, 3usize), (10, 4), (12, 5), (14, 6)] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 101 + k as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| one(seed, n, k));
        let dp = rows.iter().filter(|r| r.dev_paper).count();
        let dt = rows.iter().filter(|r| r.dev_tight).count();
        paper_devs += dp;
        tight_devs += dt;
        let sp = rows.iter().map(|r| r.served_paper).sum::<usize>() as f64 / rows.len() as f64;
        let st = rows.iter().map(|r| r.served_tight).sum::<usize>() as f64 / rows.len() as f64;
        let rp = rows.iter().map(|r| r.revenue_paper).sum::<f64>() / rows.len() as f64;
        let rt = rows.iter().map(|r| r.revenue_tight).sum::<f64>() / rows.len() as f64;
        all_recovered &= rows.iter().all(|r| r.recovered_both);
        tight_never_serves_fewer &= rows.iter().all(|r| r.served_tight >= r.served_paper);
        t.push_row(vec![
            k.to_string(),
            n.to_string(),
            rows.len().to_string(),
            dp.to_string(),
            dt.to_string(),
            format!("{sp:.2}/{st:.2}"),
            format!("{rp:.2}/{rt:.2}"),
            all_recovered.to_string(),
        ]);
    }
    t.verdict = format!(
        "paper aggregation: {paper_devs} SP violations; tight aggregation: {tight_devs}; \
         tight serves weakly more agents on every instance: {tight_never_serves_fewer}; \
         cost recovered by both: {all_recovered}"
    );
    t
}
