//! T13 — backend identity table: the spatial grid-index construction
//! behind [`SubstrateBuilder`] is **byte-identical** to the dense `O(n²)`
//! reference on every layout family, for both universal-tree kinds.
//!
//! The builder's contract (see `crates/wireless/src/builder.rs`) is that
//! [`Backend`] affects build *time*, never *results*: `Backend::Auto` may
//! switch a large Euclidean network to the spatial path and nothing
//! downstream — shares, receiver sets, session replays — may move by a
//! bit. This table pins that contract where it is cheapest to check
//! exhaustively: small-to-moderate n across all five layout families
//! (including the tie-heavy jittered `Grid`), both `TreeKind`s, α ∈
//! {2, 4}. Per `(scenario, seed)` cell it builds the substrate four ways
//! (dense/spatial × SPT/MST) and gates equality of
//!
//! * the parent array (via `parent_of`, source sentinel included),
//! * the cached tree-edge cost **bits** (`parent_cost(v).to_bits()`),
//! * the cost-sorted CSR child order (`sorted_children`), and
//! * the deterministic BFS order the engines replay in.
//!
//! The `Line` scenarios run with the mid-segment source, so the identity
//! is also pinned at a non-zero root.

use crate::harness::scenario_network;
use crate::registry::{all_true, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{LayoutFamily, Scenario};
use wmcs_wireless::{Backend, SubstrateBuilder, TreeKind};

/// The T13 experiment (registered as `"T13"`).
pub struct T13;

impl Experiment for T13 {
    fn id(&self) -> &'static str {
        "T13"
    }

    fn title(&self) -> &'static str {
        "substrate backends: spatial ≡ dense, byte for byte"
    }

    fn claim(&self) -> &'static str {
        "the spatial grid-index construction produces the same universal tree as the dense \
         O(n²) reference — identical parents, edge-cost bits, CSR child order and BFS order — \
         on every layout family and both tree kinds"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "Σc(SPT)",
            "parents",
            "cost bits",
            "csr+bfs",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(&LayoutFamily::ALL, &[16, 64, 256], &[2], &[2.0, 4.0])
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let n = net.n_stations();
        let mut parents_ok = true;
        let mut costs_ok = true;
        let mut order_ok = true;
        let mut spt_cost = 0.0;
        for kind in [TreeKind::Spt, TreeKind::Mst] {
            let dense = SubstrateBuilder::new(&net)
                .tree(kind)
                .backend(Backend::Dense)
                .build();
            let spatial = SubstrateBuilder::new(&net)
                .tree(kind)
                .backend(Backend::Spatial)
                .build();
            for v in 0..n {
                parents_ok &= dense.parent_of(v) == spatial.parent_of(v);
                costs_ok &= dense.parent_cost(v).to_bits() == spatial.parent_cost(v).to_bits();
                order_ok &= dense.sorted_children(v) == spatial.sorted_children(v);
            }
            order_ok &= dense.bfs_order() == spatial.bfs_order();
            if kind == TreeKind::Spt {
                spt_cost = (0..n).map(|v| dense.parent_cost(v)).sum();
            }
        }
        vec![
            spt_cost,
            f64::from(parents_ok),
            f64::from(costs_ok),
            f64::from(order_ok),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let spt_cost = mean(obs, 0);
        let parents = all_true(obs, 1);
        let costs = all_true(obs, 2);
        let order = all_true(obs, 3);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{spt_cost:.1}"),
                parents.to_string(),
                costs.to_string(),
                order.to_string(),
            ],
            parents && costs && order,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "spatial and dense backends agree byte for byte — parents, cost bits, CSR and BFS \
             order — on every layout family and both tree kinds"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
