//! T15 — sparse table: compact-frame warm sessions gated byte-identical
//! to the dense reference, with warm bytes/group for both layouts.
//!
//! Each `(scenario, seed)` cell serves the same deterministic
//! [`MultiGroupProcess`] workload T12 uses through **two**
//! [`MulticastService`]s over one shared substrate: the pinned dense
//! layout ([`SessionLayout::Dense`] — universe-sized warm vectors) and
//! the compact-frame layout ([`SessionLayout::Sparse`] — warm state over
//! the path closure of each group's members only, §2f of DESIGN.md).
//! After **every batch** the cell gates byte-identity of the full
//! outcome: receivers, every `f64` share bit, and served cost.
//!
//! The warm bytes/group of both layouts land in the table as
//! informational columns. At table scale (n ≤ 256) the universes are
//! small, so the ratio hovers near 1 — the ≥ 10× saving the sparse
//! layout exists for is measured at G = 4096 × n = 10⁵ in the
//! release-mode `stream_slo` example (see EXPERIMENTS.md); this table's
//! job is the identity gate across every layout family × mechanism mix.

use crate::harness::scenario_network;
use crate::registry::{all_true, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{LayoutFamily, MultiGroupProcess, Scenario, EPS};
use wmcs_wireless::{GroupMechanism, MulticastService, SessionLayout, SubstrateBuilder, TreeKind};

/// Churn batches per group (after the per-group warm-up batch).
const BATCHES: usize = 4;

/// The T15 experiment (registered as `"T15"`).
pub struct T15;

impl Experiment for T15 {
    fn id(&self) -> &'static str {
        "T15"
    }

    fn title(&self) -> &'static str {
        "sparse: compact-frame warm sessions ≡ dense reference, bytes/group"
    }

    fn claim(&self) -> &'static str {
        "per-group warm state over the member path closure (local-id subframes) is \
         byte-identical to the dense universe-sized reference — receivers, every f64 \
         share bit, and served cost, after every batch, on every layout family and \
         both mechanisms"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "events",
            "dense B/grp",
            "sparse B/grp",
            "sparse≡dense",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(&LayoutFamily::ALL, &[64, 256], &[2], &[2.0, 4.0])
            .into_iter()
            .map(|sc| sc.with_groups(sc.n / 4))
            .collect()
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        let net = ut.network();
        let n_players = net.n_players();
        let g = scenario.groups;
        let broadcast = ut.multicast_cost(&net.non_source_stations());
        let hi = (2.0 * broadcast / n_players as f64).max(EPS);
        let trace = MultiGroupProcess::new(n_players, g, BATCHES, hi, seed ^ 0x7a15).generate();

        let mut dense = MulticastService::new(&ut)
            .with_threads(1)
            .with_layout(SessionLayout::Dense);
        let mut sparse = MulticastService::new(&ut)
            .with_threads(0)
            .with_layout(SessionLayout::Sparse);
        for i in 0..g {
            dense.add_group(GroupMechanism::alternating(i));
            sparse.add_group(GroupMechanism::alternating(i));
        }

        let mut identical = true;
        let mut events = 0usize;
        for b in 0..trace.n_batches() {
            let batches: Vec<Vec<_>> = trace
                .groups
                .iter()
                .map(|gr| gr.trace.batches[b].clone())
                .collect();
            events += batches.iter().map(Vec::len).sum::<usize>();
            let want = dense.step_all(&batches);
            let got = sparse.step_all(&batches);
            for (d, s) in want.iter().zip(&got) {
                identical &= s.outcome == d.outcome;
            }
        }

        vec![
            events as f64,
            dense.memory_bytes() as f64 / g as f64,
            sparse.memory_bytes() as f64 / g as f64,
            f64::from(identical),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let identical = all_true(obs, 3);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.0}", mean(obs, 0)),
                format!("{:.0}", mean(obs, 1)),
                format!("{:.0}", mean(obs, 2)),
                identical.to_string(),
            ],
            identical,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "compact-frame warm sessions are byte-identical to the dense reference on \
             every layout family and both mechanisms, after every batch; warm bytes/group \
             scale with the member closure (the 10× saving is measured at G = 4096 × \
             n = 10⁵ in stream_slo, where the closure is ~10³ of 10⁵ stations)"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
