//! T3 — §2.2.3: the wireless multicast mechanism's budget-balance factor
//! against exact MEMT, feasibility of the built assignment, and
//! strategyproofness sweeps.

use crate::harness::{parallel_map_seeds, random_euclidean, random_utilities, Table};
use wmcs_game::find_unilateral_deviation;
use wmcs_mechanisms::WirelessMulticastMechanism;
use wmcs_wireless::memt_exact;

struct Row {
    ratio: f64,
    recovered: bool,
    feasible: bool,
    deviation: bool,
}

fn one(seed: u64, n: usize) -> Row {
    let net = random_euclidean(seed, n, 2.0, 6.0);
    let mech = WirelessMulticastMechanism::new(net.clone());
    let k = net.n_players();
    let all_stations: Vec<usize> = (0..net.n_stations())
        .filter(|&x| x != net.source())
        .collect();
    let (opt, _) = memt_exact(&net, &all_stations);
    let out = mech.run_full(&vec![1e9; k]);
    let stations: Vec<usize> = out
        .outcome
        .receivers
        .iter()
        .map(|&p| net.station_of_player(p))
        .collect();
    let feasible = out.assignment.multicasts_to(&net, &stations);
    let ratio = out.outcome.revenue() / opt;
    let recovered = out.outcome.revenue() + 1e-9 >= out.outcome.served_cost;
    let u = random_utilities(seed ^ 0xd00d, k, 40.0);
    let deviation = find_unilateral_deviation(&mech, &u, 1e-6).is_some();
    Row {
        ratio,
        recovered,
        feasible,
        deviation,
    }
}

/// Run T3.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T3",
        "wireless multicast mechanism (§2.2.3) vs exact MEMT",
        "revenue ≤ 3 ln(k+1) · C*; cost recovered; assignment feasible; strategyproof",
        &[
            "k",
            "seeds",
            "mean Σc/C*",
            "max Σc/C*",
            "bound max(3 ln(k+1), 4)",
            "cost recovery",
            "feasible",
            "deviations",
        ],
    );
    let mut all_good = true;
    let mut total_devs = 0usize;
    let mut total_profiles = 0usize;
    for &n in &[5usize, 6, 7, 8] {
        let k = n - 1;
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 211 + n as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| one(seed, n));
        let mean = rows.iter().map(|r| r.ratio).sum::<f64>() / rows.len() as f64;
        let max = rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
        let bound = (3.0 * ((k + 1) as f64).ln()).max(4.0);
        let recovered = rows.iter().all(|r| r.recovered);
        let feasible = rows.iter().all(|r| r.feasible);
        let devs = rows.iter().filter(|r| r.deviation).count();
        total_devs += devs;
        total_profiles += rows.len();
        all_good &= max <= bound + 1e-6 && recovered && feasible;
        t.push_row(vec![
            k.to_string(),
            rows.len().to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{bound:.3}"),
            recovered.to_string(),
            feasible.to_string(),
            devs.to_string(),
        ]);
    }
    t.verdict = if all_good {
        format!(
            "β-BB bound holds with large slack; always feasible; SP deviations on \
             {total_devs}/{total_profiles} random profiles — the same Eq. (5) threshold-tightness \
             finding as T2 (DESIGN.md §3a)"
        )
    } else {
        "MISMATCH on the BB/feasibility claims".into()
    };
    t
}
