//! T3 — §2.2.3: the wireless multicast mechanism's budget-balance factor
//! against exact MEMT, feasibility of the built assignment, and
//! strategyproofness sweeps, across the spatial layout families.

use crate::harness::{random_utilities, scenario_network};
use crate::registry::{all_true, count_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_game::find_unilateral_deviation;
use wmcs_geom::{LayoutFamily, Scenario, REL_TOL, SP_TOL_APPROX, VP_TOL};
use wmcs_mechanisms::WirelessMulticastMechanism;
use wmcs_wireless::memt_exact;

/// The T3 experiment (registered as `"T3"`).
pub struct T3;

impl Experiment for T3 {
    fn id(&self) -> &'static str {
        "T3"
    }

    fn title(&self) -> &'static str {
        "wireless multicast mechanism (§2.2.3) vs exact MEMT"
    }

    fn claim(&self) -> &'static str {
        "revenue ≤ 3 ln(k+1) · C*; cost recovered; assignment feasible; strategyproof"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "k",
            "seeds",
            "mean Σc/C*",
            "max Σc/C*",
            "bound max(3 ln(k+1), 4)",
            "cost recovery",
            "feasible",
            "deviations",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(
            &[
                LayoutFamily::UniformBox,
                LayoutFamily::Clustered,
                LayoutFamily::Grid,
                LayoutFamily::Circle,
                LayoutFamily::Line,
            ],
            &[6, 8],
            &[2],
            &[2.0],
        )
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let mech = WirelessMulticastMechanism::new(&net);
        let k = net.n_players();
        let all_stations: Vec<usize> = (0..net.n_stations())
            .filter(|&x| x != net.source())
            .collect();
        let (opt, _) = memt_exact(&net, &all_stations);
        let out = mech.run_full(&vec![1e9; k]);
        let stations: Vec<usize> = out
            .outcome
            .receivers
            .iter()
            .map(|&p| net.station_of_player(p))
            .collect();
        let feasible = out.assignment.multicasts_to(&net, &stations);
        let ratio = out.outcome.revenue() / opt;
        let recovered = out.outcome.revenue() + VP_TOL >= out.outcome.served_cost;
        let u = random_utilities(seed ^ 0xd00d, k, 40.0);
        let deviation = find_unilateral_deviation(&mech, &u, SP_TOL_APPROX).is_some();
        vec![
            ratio,
            f64::from(recovered),
            f64::from(feasible),
            f64::from(deviation),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let k = scenario.n - 1;
        let bound = (3.0 * ((k + 1) as f64).ln()).max(4.0);
        let max = fmax(obs, 0);
        let recovered = all_true(obs, 1);
        let feasible = all_true(obs, 2);
        RowSummary::gated(
            vec![
                scenario.label(),
                k.to_string(),
                obs.len().to_string(),
                format!("{:.3}", mean(obs, 0)),
                format!("{max:.3}"),
                format!("{bound:.3}"),
                recovered.to_string(),
                feasible.to_string(),
                count_true(obs, 3).to_string(),
            ],
            max <= bound + REL_TOL && recovered && feasible,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "β-BB bound holds with large slack on every layout; always feasible; SP \
             deviations on random profiles are the Eq. (5) threshold-tightness finding \
             shared with T2 (DESIGN.md §3a)"
                .into()
        } else {
            "MISMATCH on the BB/feasibility claims".into()
        }
    }
}
