//! F1 — Fig. 1 / §2.2.2 worked example: the NWST mechanism is
//! strategyproof but not group strategyproof.

use crate::harness::Table;
use wmcs_game::{find_group_deviation, find_unilateral_deviation, Mechanism};
use wmcs_mechanisms::{fig1_instance, NwstCostSharingMechanism};

/// Run F1 and return the paper-vs-measured table.
pub fn run() -> Table {
    let (graph, terminals, u) = fig1_instance();
    let mech = NwstCostSharingMechanism::new(graph, terminals);
    let names = ["x1", "x5", "x6", "x7"];

    let mut t = Table::new(
        "F1",
        "Fig. 1 collusion (NWST mechanism, §2.2.2)",
        "truthful welfares (3/2, 3/2, 3/2, 0); after x7 reports 3/2−ε: (5/3, 5/3, 5/3, 0)",
        &[
            "agent",
            "paper w(u)",
            "measured w(u)",
            "paper w(v)",
            "measured w(v)",
        ],
    );

    let truthful = mech.run(&u);
    let mut v = u.clone();
    v[3] = 1.5 - 0.3;
    let colluded = mech.run(&v);
    let paper_truth = [1.5, 1.5, 1.5, 0.0];
    let paper_coll = [5.0 / 3.0, 5.0 / 3.0, 5.0 / 3.0, 0.0];
    let mut all_match = true;
    for p in 0..4 {
        let wt = truthful.welfare(p, &u);
        let wc = colluded.welfare(p, &u);
        all_match &= (wt - paper_truth[p]).abs() < 1e-9 && (wc - paper_coll[p]).abs() < 1e-9;
        t.push_row(vec![
            names[p].to_string(),
            format!("{:.4}", paper_truth[p]),
            format!("{wt:.4}"),
            format!("{:.4}", paper_coll[p]),
            format!("{wc:.4}"),
        ]);
    }

    let sp = find_unilateral_deviation(&mech, &u, 1e-7).is_none();
    let gsp_broken = find_group_deviation(&mech, &u, 4, 1e-7).is_some();
    t.verdict = format!(
        "welfares {} paper; strategyproof: {}; group deviation found: {} — {}",
        if all_match { "MATCH" } else { "DIFFER from" },
        sp,
        gsp_broken,
        if all_match && sp && gsp_broken {
            "Fig. 1 reproduced exactly"
        } else {
            "MISMATCH"
        }
    );
    t
}
