//! F1 — Fig. 1 / §2.2.2 worked example: the NWST mechanism is
//! strategyproof but not group strategyproof. The pinned rows replay the
//! paper's four-agent instance exactly; the scenario rows measure how
//! often unilateral and group deviations appear on random layout-driven
//! NWST instances (collusion should be commonplace, per §2.2.2).

use crate::harness::{random_nwst_scenario, random_utilities};
use crate::registry::{count_true, Experiment, Obs, RowSummary};
use wmcs_game::{find_group_deviation, find_unilateral_deviation, Mechanism};
use wmcs_geom::{LayoutFamily, Scenario, SP_TOL, SP_TOL_APPROX, VP_TOL};
use wmcs_mechanisms::{fig1_instance, NwstCostSharingMechanism};

/// Terminals drawn per scenario instance.
const K: usize = 4;

/// The F1 experiment (registered as `"F1"`).
pub struct F1;

impl Experiment for F1 {
    fn id(&self) -> &'static str {
        "F1"
    }

    fn title(&self) -> &'static str {
        "Fig. 1 collusion (NWST mechanism, §2.2.2)"
    }

    fn claim(&self) -> &'static str {
        "truthful welfares (3/2, 3/2, 3/2, 0); after x7 reports 3/2−ε: (5/3, 5/3, 5/3, 0); \
         SP holds, group-SP fails"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "case",
            "instances",
            "unilateral devs",
            "group devs",
            "Fig. 1 welfares",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(
            &[
                LayoutFamily::UniformBox,
                LayoutFamily::Clustered,
                LayoutFamily::Grid,
                LayoutFamily::Circle,
            ],
            &[10],
            &[2],
            &[2.0],
        )
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let (g, terminals) = random_nwst_scenario(scenario, seed, K);
        let mech = NwstCostSharingMechanism::new(g, terminals);
        let u = random_utilities(seed ^ 0xf1f1, K, 6.0);
        let unilateral = find_unilateral_deviation(&mech, &u, SP_TOL_APPROX).is_some();
        let group = find_group_deviation(&mech, &u, 2, SP_TOL_APPROX).is_some();
        vec![f64::from(unilateral), f64::from(group)]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        RowSummary::info(vec![
            scenario.label(),
            obs.len().to_string(),
            count_true(obs, 0).to_string(),
            count_true(obs, 1).to_string(),
            "—".into(),
        ])
    }

    fn pinned(&self) -> Vec<RowSummary> {
        let (graph, terminals, u) = fig1_instance();
        let mech = NwstCostSharingMechanism::new(graph, terminals);
        let truthful = mech.run(&u);
        let mut v = u.clone();
        v[3] = 1.5 - 0.3;
        let colluded = mech.run(&v);
        let paper_truth = [1.5, 1.5, 1.5, 0.0];
        let paper_coll = [5.0 / 3.0, 5.0 / 3.0, 5.0 / 3.0, 0.0];
        let all_match = (0..4).all(|p| {
            (truthful.welfare(p, &u) - paper_truth[p]).abs() < VP_TOL
                && (colluded.welfare(p, &u) - paper_coll[p]).abs() < VP_TOL
        });
        let sp = find_unilateral_deviation(&mech, &u, SP_TOL).is_none();
        let gsp_broken = find_group_deviation(&mech, &u, 4, SP_TOL).is_some();
        vec![RowSummary::gated(
            vec![
                "Fig. 1 (pinned)".into(),
                "1".into(),
                usize::from(!sp).to_string(),
                usize::from(gsp_broken).to_string(),
                if all_match {
                    "exact".into()
                } else {
                    "MISMATCH".into()
                },
            ],
            all_match && sp && gsp_broken,
        )]
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "Fig. 1 reproduced exactly (truthful SP, profitable 4-agent collusion); the \
             random-layout sweeps measure how often unilateral/group deviations appear \
             (informational)"
                .into()
        } else {
            "MISMATCH with the Fig. 1 worked example".into()
        }
    }
}
