//! T10 — scaling table: the incremental Moulin–Shenker engine drives
//! both §2.1 universal-tree mechanisms at n ∈ {64, 256, 1024, 4096}
//! across every layout family and α ∈ {2, 4}.
//!
//! The paper's mechanisms were previously swept at n ≤ 8 (T1) because
//! each drop round rebuilt `T(R)` from scratch; the related
//! minimum-energy multicast literature evaluates at hundreds to
//! thousands of nodes, and this table puts the reproduction there. Per
//! `(scenario, seed)` cell it runs `M(Shapley)` through the incremental
//! engine and the MC mechanism through the `O(depth)`-per-query
//! net-worth oracle, and gates:
//!
//! * exact budget balance of the charged Shapley shares at every n;
//! * voluntary participation of both mechanisms' payments;
//! * MC efficiency dominance (`NW(u)` ≥ the Shapley outcome's welfare);
//! * at n = 64, byte-identity of the incremental run against the naive
//!   per-round `shapley_shares` reference, and agreement of the VCG
//!   oracle with full re-runs of the DP.
//!
//! Wall-clock per cell is **not** a table column (rows must be
//! deterministic for the engine's byte-identity contract); the sweep
//! JSON records per-cell compute seconds, which is where the scaling
//! curves live — see EXPERIMENTS.md for how to read them.

use crate::harness::{random_utilities, scenario_network};
use crate::registry::{all_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{LayoutFamily, Scenario, BB_TOL, EPS, VP_TOL};
use wmcs_wireless::incremental::{reference_drop_run, shapley_drop_run_with_stats, NetWorthOracle};
use wmcs_wireless::{SubstrateBuilder, TreeKind};

/// The T10 experiment (registered as `"T10"`).
pub struct T10;

impl Experiment for T10 {
    fn id(&self) -> &'static str {
        "T10"
    }

    fn title(&self) -> &'static str {
        "scaling: incremental Moulin–Shenker engine (n ≤ 4096)"
    }

    fn claim(&self) -> &'static str {
        "the incremental engine runs M(Shapley) and MC at n up to 4096 with exact BB, VP and \
         MC dominance on every layout; at n = 64 it is byte-identical to the naive reference"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "served frac",
            "mean rounds",
            "max rel |Σφ−C|",
            "ident@64",
            "VP/MC ok",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(
            &LayoutFamily::ALL,
            &[64, 256, 1024, 4096],
            &[2],
            &[2.0, 4.0],
        )
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        let net = ut.network();
        let n_players = net.n_players();
        // Utilities scaled to the per-player broadcast cost so runs mix
        // served receivers with genuine drop cascades at every n.
        let broadcast = ut.multicast_cost(&net.non_source_stations());
        let hi = (2.0 * broadcast / n_players as f64).max(EPS);
        let u = random_utilities(seed ^ 0x5ca1e, n_players, hi);

        // M(Shapley) through the incremental engine.
        let (out, stats) = shapley_drop_run_with_stats(&ut, &u);
        let frac = out.receivers.len() as f64 / n_players as f64;
        let rel_bb = (out.revenue() - out.served_cost).abs() / out.served_cost.max(1.0);
        let vp_ok = out
            .receivers
            .iter()
            .all(|&p| out.shares[p] <= u[p] + VP_TOL);

        // Identity against the naive reference where the naive driver is
        // still tractable.
        let ident_ok = if scenario.n <= 64 {
            let naive = reference_drop_run(&ut, &u);
            naive.receivers == out.receivers
                && naive.shares == out.shares
                && naive.served_cost == out.served_cost
        } else {
            true
        };

        // MC through the net-worth oracle.
        let mut u_st = vec![0.0; net.n_stations()];
        for (p, &v) in u.iter().enumerate() {
            u_st[net.station_of_player(p)] = v;
        }
        let oracle = NetWorthOracle::new(&ut, &u_st);
        let (mc_stations, nw) = oracle.efficient_set();
        let mut mc_ok = true;
        for &x in &mc_stations {
            let nw_minus = oracle.net_worth_zeroing(x);
            let pay = (u_st[x] - (nw - nw_minus)).max(0.0);
            if pay > u_st[x] + VP_TOL * (1.0 + u_st[x].abs()) {
                mc_ok = false; // VP violation: externality exceeded the report
            }
            if scenario.n <= 64 {
                // The O(depth) query must agree with a full DP re-run.
                let mut u_minus = u_st.clone();
                u_minus[x] = 0.0;
                let full = ut.net_worth(&u_minus);
                if (full - nw_minus).abs() > VP_TOL * (1.0 + full.abs()) {
                    mc_ok = false;
                }
            }
        }
        // Efficiency dominance: the MC net worth bounds the Shapley
        // outcome's welfare under the same tree cost.
        let shapley_welfare: f64 =
            out.receivers.iter().map(|&p| u[p]).sum::<f64>() - out.served_cost;
        let dominance_ok =
            nw + VP_TOL * (1.0 + nw.abs() + shapley_welfare.abs()) >= shapley_welfare;

        vec![
            frac,
            stats.rounds as f64,
            rel_bb,
            f64::from(ident_ok),
            f64::from(vp_ok),
            f64::from(mc_ok && dominance_ok),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let frac = mean(obs, 0);
        let rounds = mean(obs, 1);
        let bb = fmax(obs, 2);
        let ident = all_true(obs, 3);
        let vp = all_true(obs, 4);
        let mc = all_true(obs, 5);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{frac:.3}"),
                format!("{rounds:.1}"),
                format!("{bb:.2e}"),
                ident.to_string(),
                format!("{vp}/{mc}"),
            ],
            bb < BB_TOL && ident && vp && mc,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "incremental engine scales both §2.1 mechanisms to n = 4096 with exact BB on every \
             layout; naive identity holds at n = 64"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
