//! T7 — Theorems 3.6/3.7: the Jain–Vazirani-based Euclidean Steiner
//! mechanism — budget-balance factor vs exact MEMT, cross-monotonicity and
//! group strategyproofness.

use crate::harness::{parallel_map_seeds, random_euclidean_d, random_utilities, Table};
use wmcs_game::{find_group_deviation, find_unilateral_deviation};
use wmcs_graph::{jv_steiner_shares, JvSharing};
use wmcs_mechanisms::EuclideanSteinerMechanism;
use wmcs_wireless::memt_exact;

struct Row {
    ratio: f64,
    recovered: bool,
    cross_mono_ok: bool,
    deviation: bool,
}

fn one(seed: u64, n: usize, d: usize, alpha: f64) -> Row {
    let net = random_euclidean_d(seed, n, d, alpha, 6.0);
    let mech = EuclideanSteinerMechanism::new(net.clone());
    let k = net.n_players();
    let all: Vec<usize> = (1..n).collect();
    let (opt, _) = memt_exact(&net, &all);
    let out = mech.run_full(&vec![1e9; k]);
    let stations: Vec<usize> = out
        .outcome
        .receivers
        .iter()
        .map(|&p| net.station_of_player(p))
        .collect();
    let feasible = out.assignment.multicasts_to(&net, &stations);
    let ratio = out.outcome.revenue() / opt;
    let recovered = feasible && out.outcome.revenue() + 1e-9 >= out.outcome.served_cost;
    // Cross-monotonicity spot check: adding the last terminal never raises
    // anyone's JV share.
    let small: Vec<usize> = (1..n - 1).collect();
    let rs = jv_steiner_shares(net.costs(), 0, &small, JvSharing::Equal, None);
    let rl = jv_steiner_shares(net.costs(), 0, &all, JvSharing::Equal, None);
    let cross_mono_ok = small.iter().all(|&t| rl.share[t] <= rs.share[t] + 1e-6);
    let u = random_utilities(seed ^ 0xc0ffee, k, 50.0);
    let deviation = find_unilateral_deviation(&mech, &u, 1e-6).is_some()
        || (k <= 5 && find_group_deviation(&mech, &u, 2, 1e-6).is_some());
    Row {
        ratio,
        recovered,
        cross_mono_ok,
        deviation,
    }
}

/// Run T7.
pub fn run(seeds_per_cell: u64) -> Table {
    let mut t = Table::new(
        "T7",
        "JV Euclidean Steiner mechanism (Thms 3.6/3.7)",
        "revenue ≤ 2(3^d − 1)·C* (12 for d=2); cross-monotonic shares; group strategyproof",
        &[
            "d",
            "α",
            "seeds",
            "mean Σc/C*",
            "max Σc/C*",
            "bound",
            "recovery",
            "cross-mono",
            "deviations",
        ],
    );
    let mut all_good = true;
    for &(d, alpha, n) in &[(2usize, 2.0f64, 7usize), (2, 4.0, 7), (3, 3.0, 6)] {
        let seeds: Vec<u64> = (0..seeds_per_cell).map(|s| s * 71 + d as u64).collect();
        let rows = parallel_map_seeds(&seeds, |seed| one(seed, n, d, alpha));
        let mean = rows.iter().map(|r| r.ratio).sum::<f64>() / rows.len() as f64;
        let max = rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
        let bound = if d == 2 {
            12.0
        } else {
            2.0 * (3f64.powi(d as i32) - 1.0)
        };
        let recovered = rows.iter().all(|r| r.recovered);
        let cm = rows.iter().all(|r| r.cross_mono_ok);
        let devs = rows.iter().filter(|r| r.deviation).count();
        all_good &= max <= bound + 1e-6 && recovered && cm && devs == 0;
        t.push_row(vec![
            d.to_string(),
            alpha.to_string(),
            rows.len().to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{bound:.1}"),
            recovered.to_string(),
            cm.to_string(),
            devs.to_string(),
        ]);
    }
    t.verdict = if all_good {
        "12-BB / 2(3^d−1)-BB bounds hold with large slack; cross-monotone; no profitable lies"
            .into()
    } else {
        "MISMATCH".into()
    };
    t
}
