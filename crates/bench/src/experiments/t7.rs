//! T7 — Theorems 3.6/3.7: the Jain–Vazirani-based Euclidean Steiner
//! mechanism — budget-balance factor vs exact MEMT, cross-monotonicity and
//! group strategyproofness, across the layout families.

use crate::harness::{random_utilities, scenario_network};
use crate::registry::{all_true, count_true, fmax, mean, Experiment, Obs, RowSummary};
use wmcs_game::{find_group_deviation, find_unilateral_deviation};
use wmcs_geom::{LayoutFamily, Scenario, REL_TOL, SP_TOL_APPROX, VP_TOL};
use wmcs_graph::{jv_steiner_shares, JvSharing};
use wmcs_mechanisms::EuclideanSteinerMechanism;
use wmcs_wireless::memt_exact;

/// The T7 experiment (registered as `"T7"`).
pub struct T7;

/// The paper's JV bound for dimension `d` (12 at d=2).
fn jv_bound(d: usize) -> f64 {
    if d == 2 {
        12.0
    } else {
        2.0 * (3f64.powi(i32::try_from(d).expect("scenario dimension fits i32")) - 1.0)
    }
}

impl Experiment for T7 {
    fn id(&self) -> &'static str {
        "T7"
    }

    fn title(&self) -> &'static str {
        "JV Euclidean Steiner mechanism (Thms 3.6/3.7)"
    }

    fn claim(&self) -> &'static str {
        "revenue ≤ 2(3^d − 1)·C* (12 for d=2); cross-monotonic shares; group strategyproof"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "seeds",
            "mean Σc/C*",
            "max Σc/C*",
            "bound",
            "recovery",
            "cross-mono",
            "deviations",
        ]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        vec![
            Scenario::new(LayoutFamily::UniformBox, 7, 2, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 7, 2, 4.0),
            Scenario::new(LayoutFamily::Clustered, 7, 2, 2.0),
            Scenario::new(LayoutFamily::Grid, 7, 2, 2.0),
            Scenario::new(LayoutFamily::Circle, 7, 2, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 6, 3, 3.0),
        ]
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let n = scenario.n;
        let net = scenario_network(scenario, seed);
        let mech = EuclideanSteinerMechanism::new(&net);
        let k = net.n_players();
        let all: Vec<usize> = (1..n).collect();
        let (opt, _) = memt_exact(&net, &all);
        let out = mech.run_full(&vec![1e9; k]);
        let stations: Vec<usize> = out
            .outcome
            .receivers
            .iter()
            .map(|&p| net.station_of_player(p))
            .collect();
        let feasible = out.assignment.multicasts_to(&net, &stations);
        let ratio = out.outcome.revenue() / opt;
        let recovered = feasible && out.outcome.revenue() + VP_TOL >= out.outcome.served_cost;
        // Cross-monotonicity spot check: adding the last terminal never
        // raises anyone's JV share.
        let small: Vec<usize> = (1..n - 1).collect();
        let rs = jv_steiner_shares(net.costs(), 0, &small, JvSharing::Equal, None);
        let rl = jv_steiner_shares(net.costs(), 0, &all, JvSharing::Equal, None);
        let cross_mono_ok = small.iter().all(|&t| rl.share[t] <= rs.share[t] + REL_TOL);
        let u = random_utilities(seed ^ 0xc0ffee, k, 50.0);
        let deviation = find_unilateral_deviation(&mech, &u, SP_TOL_APPROX).is_some()
            || (k <= 5 && find_group_deviation(&mech, &u, 2, SP_TOL_APPROX).is_some());
        vec![
            ratio,
            f64::from(recovered),
            f64::from(cross_mono_ok),
            f64::from(deviation),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let bound = jv_bound(scenario.dim);
        let max = fmax(obs, 0);
        let recovered = all_true(obs, 1);
        let cm = all_true(obs, 2);
        let devs = count_true(obs, 3);
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.3}", mean(obs, 0)),
                format!("{max:.3}"),
                format!("{bound:.1}"),
                recovered.to_string(),
                cm.to_string(),
                devs.to_string(),
            ],
            max <= bound + REL_TOL && recovered && cm && devs == 0,
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "12-BB / 2(3^d−1)-BB bounds hold with large slack on every layout; cross-monotone; \
             no profitable lies"
                .into()
        } else {
            "MISMATCH".into()
        }
    }
}
