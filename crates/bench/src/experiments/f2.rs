//! F2 — Fig. 2 / Lemma 3.3: the pentagon instance has an empty core for
//! `α > 1, d > 1`, hence no cross-monotonic method and no submodularity.

use crate::harness::Table;
use wmcs_game::{core_is_empty, is_submodular};
use wmcs_mechanisms::PentagonInstance;

/// Run F2 across scales and return the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "F2",
        "Fig. 2 empty core (pentagon, Lemma 3.3)",
        "C*(x_j) > C*(R)/5 and C*(x0,x1) < 2C*(R)/5 ⇒ core(C*) = ∅ (and C* not submodular)",
        &[
            "m",
            "C*(single)",
            "C*(pair)",
            "C*(all 5)",
            "pair < 2/5 all",
            "core empty",
            "submodular",
        ],
    );
    let mut all_good = true;
    for m in [1.0, 10.0, 60.0, 120.0] {
        let inst = PentagonInstance::new(m);
        let single = inst.optimal_cost(&[0]);
        let pair = inst.optimal_cost(&[0, 1]);
        let full = inst.optimal_cost(&[0, 1, 2, 3, 4]);
        let ineq = pair < 2.0 * full / 5.0 && single > full / 5.0;
        let game = inst.cost_game();
        let empty = core_is_empty(&game);
        let submod = is_submodular(&game);
        all_good &= ineq && empty && !submod;
        t.push_row(vec![
            format!("{m}"),
            format!("{single:.3}"),
            format!("{pair:.3}"),
            format!("{full:.3}"),
            format!("{ineq}"),
            format!("{empty}"),
            format!("{submod}"),
        ]);
    }
    t.verdict = if all_good {
        "empty core reproduced at every scale; submodularity fails as predicted".into()
    } else {
        "MISMATCH with the paper's claim".into()
    };
    t
}
