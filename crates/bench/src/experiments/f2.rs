//! F2 — Fig. 2 / Lemma 3.3: the pentagon instance has an empty core for
//! `α > 1, d > 1`, hence no cross-monotonic method and no submodularity.
//! The pinned rows replay the paper's pentagon at four scales; the
//! scenario rows measure how often the exact game's core is empty on
//! random layouts (and gate the theorem-backed `α = 1 ⇒ core nonempty`
//! direction).

use crate::harness::scenario_network;
use crate::registry::{count_true, Experiment, Obs, RowSummary};
use wmcs_game::{core_is_empty, is_submodular, ExplicitGame};
use wmcs_geom::{LayoutFamily, Scenario};
use wmcs_mechanisms::PentagonInstance;
use wmcs_wireless::OptimalMulticastCost;

/// The F2 experiment (registered as `"F2"`).
pub struct F2;

impl Experiment for F2 {
    fn id(&self) -> &'static str {
        "F2"
    }

    fn title(&self) -> &'static str {
        "Fig. 2 empty core (pentagon, Lemma 3.3)"
    }

    fn claim(&self) -> &'static str {
        "C*(x_j) > C*(R)/5 and C*(x0,x1) < 2C*(R)/5 ⇒ core(C*) = ∅ (and C* not submodular); \
         for α = 1 the core is never empty"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["case", "instances", "core empty", "submodular", "claim"]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        vec![
            Scenario::new(LayoutFamily::UniformBox, 6, 2, 2.0),
            Scenario::new(LayoutFamily::Clustered, 6, 2, 2.0),
            Scenario::new(LayoutFamily::Grid, 6, 2, 2.0),
            Scenario::new(LayoutFamily::Circle, 6, 2, 2.0),
            Scenario::new(LayoutFamily::UniformBox, 6, 2, 1.0),
        ]
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let net = scenario_network(scenario, seed);
        let game = ExplicitGame::tabulate(&OptimalMulticastCost::new(net));
        vec![
            f64::from(core_is_empty(&game)),
            f64::from(is_submodular(&game)),
        ]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        let empties = count_true(obs, 0);
        let submods = count_true(obs, 1);
        let alpha_one = scenario.alpha == 1.0;
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{empties}/{}", obs.len()),
                format!("{submods}/{}", obs.len()),
                if alpha_one {
                    "α=1 ⇒ never empty".into()
                } else {
                    "—".into()
                },
            ],
            // Gate only the proved direction: α = 1 games always have a
            // nonempty core (Thm 3.2 ⇒ submodular ⇒ core ≠ ∅).
            !alpha_one || empties == 0,
        )
    }

    fn pinned(&self) -> Vec<RowSummary> {
        [1.0, 10.0, 60.0, 120.0]
            .iter()
            .map(|&m| {
                let inst = PentagonInstance::new(m);
                let single = inst.optimal_cost(&[0]);
                let pair = inst.optimal_cost(&[0, 1]);
                let full = inst.optimal_cost(&[0, 1, 2, 3, 4]);
                let ineq = pair < 2.0 * full / 5.0 && single > full / 5.0;
                let game = inst.cost_game();
                let empty = core_is_empty(&game);
                let submod = is_submodular(&game);
                RowSummary::gated(
                    vec![
                        format!("pentagon m={m} (pinned)"),
                        "1".into(),
                        empty.to_string(),
                        submod.to_string(),
                        if ineq {
                            "ineq ok".into()
                        } else {
                            "INEQ FAILS".into()
                        },
                    ],
                    ineq && empty && !submod,
                )
            })
            .collect()
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "empty core reproduced at every pentagon scale and submodularity fails as \
             predicted; α=1 layouts never have an empty core (as proved); α>1 random-layout \
             emptiness rates are informational"
                .into()
        } else {
            "MISMATCH with the paper's claim".into()
        }
    }
}
