//! The sweep engine: a self-scheduling parallel executor over flat
//! `(experiment × scenario × seed)` cells.
//!
//! The old harness chunked seeds per experiment, which idled threads on
//! tail seeds of slow cells. Here every cell across the whole sweep goes
//! into one flat work list and workers steal the next cell from a shared
//! atomic cursor, so a slow experiment's tail overlaps the next
//! experiment's cells and the pool drains evenly.
//!
//! Results are placed by cell index, so the assembled tables are
//! byte-identical regardless of thread count or scheduling order (pinned
//! by the determinism tests in `tests/engine_determinism.rs`).

use crate::harness::Table;
use crate::registry::{assemble_table, cell_seed, Experiment, Obs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
// Wall-clock feeds per-cell timings reported as informational metadata only;
// verdict and share columns never read them (warm ≡ cold byte-identity gates this).
// wmcs-audit: allow(nondeterminism-source): timings are informational metadata, never verdicts.
use std::time::Instant;
use wmcs_geom::Scenario;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds per `(experiment, scenario)` cell.
    pub seeds_per_cell: u64,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl SweepConfig {
    /// Sweep with `seeds_per_cell` seeds on the default thread count.
    pub fn with_seeds(seeds_per_cell: u64) -> Self {
        Self {
            seeds_per_cell,
            threads: None,
        }
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::with_seeds(20)
    }
}

/// Aggregate timing of one `(experiment, scenario)` cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// The scenario's stable label.
    pub scenario: String,
    /// Summed compute seconds over the cell's seeds.
    pub seconds: f64,
}

/// One experiment's finished table plus its gate status and timings.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The rendered table (pinned rows first, then one row per scenario).
    pub table: Table,
    /// Did every gated claim hold?
    pub pass: bool,
    /// Summed compute seconds (all cells + pinned checks). A *work*
    /// metric, not wall time: it is stable under thread count, which is
    /// what makes baseline timing diffs meaningful across machines with
    /// different core counts.
    pub seconds: f64,
    /// Per-scenario timings, in scenario order.
    pub cells: Vec<CellTiming>,
}

impl ExperimentResult {
    /// `"pass"` / `"fail"` — the categorical verdict the CI gate diffs.
    pub fn status(&self) -> &'static str {
        if self.pass {
            "pass"
        } else {
            "fail"
        }
    }
}

/// A finished sweep over a set of experiments.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Seeds per cell the sweep ran with.
    pub seeds_per_cell: u64,
    /// Per-experiment results, in registry order.
    pub experiments: Vec<ExperimentResult>,
    /// Summed compute seconds across all experiments.
    pub total_seconds: f64,
}

/// One schedulable unit of work.
struct Cell {
    exp: usize,
    scenario: usize,
    seed: u64,
}

/// Run `experiments` over their scenario matrices with `cfg.seeds_per_cell`
/// seeds per cell, in parallel. Deterministic: the output depends only on
/// the experiments and the seed count, never on the thread count.
pub fn run_sweep(experiments: &[&dyn Experiment], cfg: &SweepConfig) -> SweepRun {
    assert!(cfg.seeds_per_cell >= 1, "need at least one seed per cell");
    let scenarios: Vec<Vec<Scenario>> = experiments.iter().map(|e| e.scenarios()).collect();

    // Flat work list: every (experiment, scenario, seed) across the sweep.
    let mut cells: Vec<Cell> = Vec::new();
    for (ei, e) in experiments.iter().enumerate() {
        for (si, sc) in scenarios[ei].iter().enumerate() {
            let label = sc.label();
            for i in 0..cfg.seeds_per_cell {
                cells.push(Cell {
                    exp: ei,
                    scenario: si,
                    seed: cell_seed(e.id(), &label, i),
                });
            }
        }
    }

    let results: Vec<OnceLock<(Obs, f64)>> = (0..cells.len()).map(|_| OnceLock::new()).collect();
    let run_cell = |cell: &Cell, slot: &OnceLock<(Obs, f64)>| {
        #[allow(clippy::disallowed_methods)]
        // wmcs-audit: allow(nondeterminism-source): timing is informational.
        let start = Instant::now();
        let obs = experiments[cell.exp].measure(&scenarios[cell.exp][cell.scenario], cell.seed);
        slot.set((obs, start.elapsed().as_secs_f64()))
            .expect("each cell is computed exactly once");
    };

    let threads = cfg
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, cells.len().max(1));
    if threads <= 1 {
        for (cell, slot) in cells.iter().zip(&results) {
            run_cell(cell, slot);
        }
    } else {
        let cursor = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    run_cell(cell, &results[i]);
                });
            }
        })
        .expect("sweep worker panicked");
    }

    // Fold the cells back into per-experiment tables, in declared order.
    let mut out = SweepRun {
        seeds_per_cell: cfg.seeds_per_cell,
        experiments: Vec::with_capacity(experiments.len()),
        total_seconds: 0.0,
    };
    let mut cursor = 0usize;
    for (ei, e) in experiments.iter().enumerate() {
        #[allow(clippy::disallowed_methods)]
        // wmcs-audit: allow(nondeterminism-source): timing is informational.
        let pinned_start = Instant::now();
        let mut rows = e.pinned();
        let mut seconds = pinned_start.elapsed().as_secs_f64();
        let mut timings = Vec::with_capacity(scenarios[ei].len());
        for sc in &scenarios[ei] {
            let mut obs: Vec<Obs> = Vec::with_capacity(cfg.seeds_per_cell as usize);
            let mut cell_secs = 0.0;
            for _ in 0..cfg.seeds_per_cell {
                let (o, secs) = results[cursor].get().expect("all cells computed").clone();
                cursor += 1;
                cell_secs += secs;
                if !o.is_empty() {
                    obs.push(o);
                }
            }
            rows.push(e.row(sc, &obs));
            seconds += cell_secs;
            timings.push(CellTiming {
                scenario: sc.label(),
                seconds: cell_secs,
            });
        }
        let pass = rows.iter().all(|r| r.good);
        out.total_seconds += seconds;
        out.experiments.push(ExperimentResult {
            table: assemble_table(*e, &rows),
            pass,
            seconds,
            cells: timings,
        });
    }
    debug_assert_eq!(cursor, cells.len());
    out
}
