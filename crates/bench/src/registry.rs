//! The experiment registry: one [`Experiment`] trait object per figure
//! or table of the paper, resolved by id.
//!
//! Each experiment declares its scenario matrix ([`Experiment::scenarios`])
//! and a per-seed measurement ([`Experiment::measure`]); the sweep engine
//! in [`crate::engine`] schedules the flat `(experiment × scenario × seed)`
//! cells, then folds the observations back into table rows and a verdict
//! via [`Experiment::row`] / [`Experiment::verdict`].
//!
//! Verdict strings and the pass/fail status are **seed-count independent**
//! by contract: a run with fewer seeds per cell draws a prefix of the
//! seeds of a larger run (see [`cell_seed`]), so every gated claim must be
//! of the "for all sampled instances" kind — then a 3-seed CI run can be
//! diffed against a 20-seed committed baseline without false drift.

use crate::harness::Table;
use wmcs_geom::Scenario;

/// One per-seed measurement: a flat vector of numbers (booleans encoded
/// as 0/1). An **empty** vector marks a degenerate draw the aggregation
/// must skip (e.g. a node-weighted instance whose optimum is ~0).
pub type Obs = Vec<f64>;

/// An aggregated table row plus whether the paper's claim held on it.
///
/// `good` must be *monotone under seed subsetting*: if it holds for a
/// cell's full observation list it must hold for every prefix, so smaller
/// CI sweeps never drift against the committed baseline. Informational
/// rows (pure measurements with no gated claim) set `good = true`.
#[derive(Debug, Clone)]
pub struct RowSummary {
    /// Rendered cells, one per column.
    pub cells: Vec<String>,
    /// Did the claim hold on this row?
    pub good: bool,
}

impl RowSummary {
    /// A row that carries a gated claim.
    pub fn gated(cells: Vec<String>, good: bool) -> Self {
        Self { cells, good }
    }

    /// A purely informational row (never gates the verdict).
    pub fn info(cells: Vec<String>) -> Self {
        Self { cells, good: true }
    }
}

/// A registered experiment: a titled claim validated over a scenario
/// matrix, one measurement per `(scenario, seed)` cell.
pub trait Experiment: Sync {
    /// Stable experiment id, e.g. `"T2"`.
    fn id(&self) -> &'static str;
    /// Human title.
    fn title(&self) -> &'static str;
    /// The paper claim being validated.
    fn claim(&self) -> &'static str;
    /// Column headers shared by pinned and scenario rows.
    fn columns(&self) -> &'static [&'static str];
    /// The scenario matrix this experiment sweeps (one table row each).
    fn scenarios(&self) -> Vec<Scenario>;
    /// One measurement cell: run the experiment on `scenario` at `seed`.
    /// Return an empty vector to skip a degenerate draw.
    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs;
    /// Fold a cell's (non-degenerate) per-seed observations into a row.
    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary;
    /// Pinned single-instance checks (worked examples, witnesses) that
    /// precede the scenario rows; run once per sweep.
    fn pinned(&self) -> Vec<RowSummary> {
        Vec::new()
    }
    /// Final verdict over every row (pinned first, then scenarios in
    /// order). Must be seed-count independent: derive it from the rows'
    /// `good` flags, never from random counts.
    fn verdict(&self, rows: &[RowSummary]) -> String;
}

/// Every experiment, in run (and `EXPERIMENTS.md`) order.
pub static REGISTRY: &[&dyn Experiment] = &[
    &crate::experiments::f1::F1,
    &crate::experiments::f2::F2,
    &crate::experiments::t1::T1,
    &crate::experiments::t2::T2,
    &crate::experiments::t3::T3,
    &crate::experiments::t4::T4,
    &crate::experiments::t5::T5,
    &crate::experiments::t6::T6,
    &crate::experiments::t7::T7,
    &crate::experiments::t9::T9,
    &crate::experiments::t10::T10,
    &crate::experiments::t11::T11,
    &crate::experiments::t12::T12,
    &crate::experiments::t13::T13,
    &crate::experiments::t14::T14,
    &crate::experiments::t15::T15,
];

/// Resolve an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY
        .iter()
        .copied()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

/// Deterministic seed for cell `(experiment, scenario, index)`.
///
/// FNV-1a over the experiment id and scenario label, finished with a
/// SplitMix64 round mixed with the seed index. A sweep with fewer seeds
/// per cell therefore draws a strict prefix of a larger sweep's seeds,
/// which is what keeps "for all sampled instances" verdicts comparable
/// across seed counts.
pub fn cell_seed(experiment: &str, scenario_label: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment
        .bytes()
        .chain([0xff])
        .chain(scenario_label.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build the finished [`Table`] for an experiment from its rows.
pub fn assemble_table(exp: &dyn Experiment, rows: &[RowSummary]) -> Table {
    let mut t = Table::new(exp.id(), exp.title(), exp.claim(), exp.columns());
    for r in rows {
        t.push_row(r.cells.clone());
    }
    t.verdict = exp.verdict(rows);
    t
}

// ---- small aggregation helpers shared by the experiment impls ----

/// The `i`-th component across observations.
pub fn col(obs: &[Obs], i: usize) -> impl Iterator<Item = f64> + '_ {
    obs.iter().map(move |o| o[i])
}

/// Mean of the `i`-th component (0 on empty input).
pub fn mean(obs: &[Obs], i: usize) -> f64 {
    if obs.is_empty() {
        0.0
    } else {
        col(obs, i).sum::<f64>() / obs.len() as f64
    }
}

/// Max of the `i`-th component (0 on empty input).
pub fn fmax(obs: &[Obs], i: usize) -> f64 {
    col(obs, i).fold(0.0, f64::max)
}

/// Min of the `i`-th component (+∞ on empty input).
pub fn fmin(obs: &[Obs], i: usize) -> f64 {
    col(obs, i).fold(f64::INFINITY, f64::min)
}

/// Does the boolean-coded `i`-th component hold on every observation?
pub fn all_true(obs: &[Obs], i: usize) -> bool {
    col(obs, i).all(|v| v > 0.5)
}

/// How many observations have the boolean-coded `i`-th component set?
pub fn count_true(obs: &[Obs], i: usize) -> usize {
    col(obs, i).filter(|&v| v > 0.5).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let mut ids: Vec<&str> = REGISTRY.iter().map(|e| e.id()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        for e in REGISTRY {
            assert!(find(e.id()).is_some());
            assert!(find(&e.id().to_lowercase()).is_some());
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_experiment_sweeps_at_least_three_layouts() {
        for e in REGISTRY {
            let mut fams: Vec<&str> = e.scenarios().iter().map(|s| s.family.name()).collect();
            fams.sort();
            fams.dedup();
            assert!(fams.len() >= 3, "{} sweeps only {:?}", e.id(), fams);
        }
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed("T2", "uniform n=10 d=2 α=2", 0);
        assert_eq!(a, cell_seed("T2", "uniform n=10 d=2 α=2", 0));
        assert_ne!(a, cell_seed("T2", "uniform n=10 d=2 α=2", 1));
        assert_ne!(a, cell_seed("T3", "uniform n=10 d=2 α=2", 0));
        assert_ne!(a, cell_seed("T2", "line n=10 d=1 α=2", 0));
    }
}
