//! Exact latency percentiles over virtual-clock samples.
//!
//! The streaming layer (`wmcs-wireless::stream`) stamps every event with
//! a **virtual clock** — one tick per submission attempt, never
//! `Instant`/`SystemTime` — and reports per-class queueing delays in a
//! [`StreamLatencies`]. This module turns those samples into **exact**
//! p50/p99/p999 figures with deterministic integer quantile math (sort +
//! nearest-rank, no interpolation, no floats), so the percentile cells
//! emitted into the sweep JSON by experiment T14 can never drift across
//! machines or thread counts.
//!
//! Nearest-rank definition: the `p = num/den` percentile of `n` sorted
//! samples is the sample at 1-based rank `⌈n·num/den⌉` (clamped to at
//! least 1) — the smallest value with at least a `p` fraction of the
//! samples at or below it. For `n = 1` every percentile is the sample;
//! duplicates need no special casing (the rank formula is order-only).

use wmcs_wireless::stream::StreamLatencies;

/// The event classes the streaming layer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// `ChurnEvent::Join` queueing delays.
    Join,
    /// `ChurnEvent::Leave` queueing delays.
    Leave,
    /// `ChurnEvent::Rebid` queueing delays.
    Rebid,
    /// Per-epoch residence times (seal tick − first submission tick).
    Reprice,
}

impl EventClass {
    /// All four classes, in reporting order.
    pub const ALL: [EventClass; 4] = [
        EventClass::Join,
        EventClass::Leave,
        EventClass::Rebid,
        EventClass::Reprice,
    ];

    /// The class name as printed in table cells and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Join => "join",
            EventClass::Leave => "leave",
            EventClass::Rebid => "rebid",
            EventClass::Reprice => "reprice",
        }
    }
}

/// Exact nearest-rank percentiles of one sample class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub n: usize,
    /// 50th percentile (nearest-rank), 0 when empty.
    pub p50: u64,
    /// 99th percentile (nearest-rank), 0 when empty.
    pub p99: u64,
    /// 99.9th percentile (nearest-rank), 0 when empty.
    pub p999: u64,
    /// Largest sample, 0 when empty.
    pub max: u64,
}

impl LatencySummary {
    /// The `p50/p99/p999` cell as printed in T14 rows.
    pub fn cell(&self) -> String {
        format!("{}/{}/{}", self.p50, self.p99, self.p999)
    }
}

/// The exact `num/den` percentile of `sorted` (ascending) by the
/// nearest-rank rule; 0 on an empty slice.
fn nearest_rank(sorted: &[u64], num: usize, den: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // 1-based rank ⌈n·num/den⌉, clamped into [1, n]. The products stay
    // far below u64 range for any realistic sample count.
    let n = sorted.len();
    let rank = (n * num).div_ceil(den).clamp(1, n);
    sorted[rank - 1]
}

/// A per-class latency recorder: collects virtual-clock samples and
/// summarizes them with exact nearest-rank percentiles.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    join: Vec<u64>,
    leave: Vec<u64>,
    rebid: Vec<u64>,
    reprice: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// File one sample under `class`.
    pub fn record(&mut self, class: EventClass, delay: u64) {
        self.samples_mut(class).push(delay);
    }

    /// Absorb a streaming report's samples (class by class, in order).
    pub fn record_stream(&mut self, lat: &StreamLatencies) {
        self.join.extend_from_slice(&lat.join);
        self.leave.extend_from_slice(&lat.leave);
        self.rebid.extend_from_slice(&lat.rebid);
        self.reprice.extend_from_slice(&lat.reprice);
    }

    /// A recorder holding exactly a streaming report's samples.
    pub fn from_stream(lat: &StreamLatencies) -> Self {
        let mut rec = Self::new();
        rec.record_stream(lat);
        rec
    }

    /// Number of samples filed under `class`.
    pub fn n_samples(&self, class: EventClass) -> usize {
        self.samples(class).len()
    }

    /// Exact percentiles of `class` (sorts a copy; the recorder keeps
    /// insertion order so repeated summaries are stable).
    pub fn summary(&self, class: EventClass) -> LatencySummary {
        let mut sorted = self.samples(class).to_vec();
        sorted.sort_unstable();
        LatencySummary {
            n: sorted.len(),
            p50: nearest_rank(&sorted, 1, 2),
            p99: nearest_rank(&sorted, 99, 100),
            p999: nearest_rank(&sorted, 999, 1000),
            max: sorted.last().copied().unwrap_or(0),
        }
    }

    fn samples(&self, class: EventClass) -> &[u64] {
        match class {
            EventClass::Join => &self.join,
            EventClass::Leave => &self.leave,
            EventClass::Rebid => &self.rebid,
            EventClass::Reprice => &self.reprice,
        }
    }

    fn samples_mut(&mut self, class: EventClass) -> &mut Vec<u64> {
        match class {
            EventClass::Join => &mut self.join,
            EventClass::Leave => &mut self.leave,
            EventClass::Rebid => &mut self.rebid,
            EventClass::Reprice => &mut self.reprice,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(samples: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &s in samples {
            r.record(EventClass::Join, s);
        }
        r
    }

    #[test]
    fn percentiles_match_hand_computed_fixtures() {
        // 1..=100: rank(p50) = 50 → 50; rank(p99) = 99 → 99;
        // rank(p999) = ⌈100·999/1000⌉ = 100 → 100.
        let hundred: Vec<u64> = (1..=100).collect();
        let s = rec(&hundred).summary(EventClass::Join);
        assert_eq!((s.n, s.p50, s.p99, s.p999, s.max), (100, 50, 99, 100, 100));

        // Ten samples, unsorted on input: sorted = [1,2,3,4,5,6,7,9,12,40].
        // rank(p50) = 5 → 5; rank(p99) = ⌈9.9⌉ = 10 → 40; p999 → 40.
        let s = rec(&[12, 3, 1, 40, 5, 7, 2, 9, 4, 6]).summary(EventClass::Join);
        assert_eq!((s.p50, s.p99, s.p999, s.max), (5, 40, 40, 40));

        // 1000 samples 0..1000: rank(p999) = 999 → sorted[998] = 998.
        let thousand: Vec<u64> = (0..1000).collect();
        let s = rec(&thousand).summary(EventClass::Join);
        assert_eq!((s.p50, s.p99, s.p999, s.max), (499, 989, 998, 999));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = rec(&[7]).summary(EventClass::Join);
        assert_eq!((s.n, s.p50, s.p99, s.p999, s.max), (1, 7, 7, 7, 7));
    }

    #[test]
    fn duplicate_samples_need_no_special_case() {
        let s = rec(&[4, 4, 4, 4, 4, 4]).summary(EventClass::Join);
        assert_eq!((s.p50, s.p99, s.p999, s.max), (4, 4, 4, 4));
        // Half zeros, half nines: p50 lands on the last zero (rank 3 of
        // [0,0,0,9,9,9]), the tail percentiles on the nines.
        let s = rec(&[9, 0, 9, 0, 9, 0]).summary(EventClass::Join);
        assert_eq!((s.p50, s.p99, s.p999), (0, 9, 9));
    }

    #[test]
    fn empty_classes_summarize_to_zero() {
        let r = LatencyRecorder::new();
        for class in EventClass::ALL {
            let s = r.summary(class);
            assert_eq!((s.n, s.p50, s.p99, s.p999, s.max), (0, 0, 0, 0, 0));
            assert_eq!(r.n_samples(class), 0);
        }
    }

    #[test]
    fn stream_latencies_land_in_their_classes() {
        let lat = StreamLatencies {
            join: vec![3, 1],
            leave: vec![5],
            rebid: vec![2, 2, 8],
            reprice: vec![10, 20],
        };
        let r = LatencyRecorder::from_stream(&lat);
        assert_eq!(r.n_samples(EventClass::Join), 2);
        assert_eq!(r.n_samples(EventClass::Leave), 1);
        assert_eq!(r.n_samples(EventClass::Rebid), 3);
        assert_eq!(r.n_samples(EventClass::Reprice), 2);
        // Two samples [10, 20]: p50 rank = ⌈2·1/2⌉ = 1 → 10.
        assert_eq!(r.summary(EventClass::Reprice).cell(), "10/20/20");
        assert_eq!(r.summary(EventClass::Join).max, 3);
    }

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = EventClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["join", "leave", "rebid", "reprice"]);
    }
}
