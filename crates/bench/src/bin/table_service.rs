//! Regenerate experiment T12 (see EXPERIMENTS.md) over its full scenario
//! matrix — the sharded multi-group service layer serving G ≤ 64
//! concurrent groups per shared substrate. Usage:
//! `table_service [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T12");
}
