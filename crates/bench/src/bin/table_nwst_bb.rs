//! Regenerate experiment T2 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_nwst_bb [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T2");
}
