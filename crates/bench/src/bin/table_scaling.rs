//! Regenerate experiment T10 (see EXPERIMENTS.md) over its full scenario
//! matrix — the n ≤ 4096 scaling table of the incremental Moulin–Shenker
//! engine. Usage: `table_scaling [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T10");
}
