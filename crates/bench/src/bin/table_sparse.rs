//! Regenerate experiment T15 (see EXPERIMENTS.md) over its full scenario
//! matrix — compact-frame (sparse) warm sessions gated byte-identical to
//! the dense reference, with warm bytes/group for both layouts. Usage:
//! `table_sparse [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T15");
}
