//! Regenerate experiment T4 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_euclidean_optimal [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T4");
}
