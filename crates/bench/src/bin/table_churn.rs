//! Regenerate experiment T11 (see EXPERIMENTS.md) over its full scenario
//! matrix — live Shapley/MC sessions under light and heavy churn at
//! n ≤ 4096. Usage: `table_churn [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T11");
}
