//! Regenerate experiment T1 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_universal_tree [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T1");
}
