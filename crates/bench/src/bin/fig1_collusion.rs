//! Regenerate experiment F1 (see EXPERIMENTS.md).
fn main() {
    wmcs_bench::experiments::f1::run().emit();
}
