//! Regenerate experiment F1 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `fig1_collusion [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("F1");
}
