//! Regenerate experiment T9 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_eq5_ablation [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T9");
}
