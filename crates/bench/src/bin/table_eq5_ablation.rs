//! Regenerate experiment T9 (see EXPERIMENTS.md). Optional arg: seeds per cell.
fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    wmcs_bench::experiments::t9::run(seeds).emit();
}
