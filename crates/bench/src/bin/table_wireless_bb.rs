//! Regenerate experiment T3 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_wireless_bb [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T3");
}
