//! Regenerate experiment T14 (see EXPERIMENTS.md) over its full scenario
//! matrix — epoch-pipelined streaming ingestion gated byte-identical to
//! single-threaded batch replay, with exact latency percentiles. Usage:
//! `table_stream [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T14");
}
