//! Diff two sweep-summary files (the CI perf/verdict regression gate).
//!
//! ```text
//! bench_compare BASELINE.json CANDIDATE.json [--tol=FRAC]
//! ```
//!
//! Exits 0 when every experiment's pass/fail status and verdict match the
//! baseline, 1 on any drift, 2 on usage or parse errors. Timing deltas
//! (per seed-cell, so a 3-seed CI sweep compares against the 20-seed
//! committed baseline) are always printed; by default they are
//! informational, and with `--tol=0.5` a candidate experiment more than
//! 50% slower than its baseline fails the gate too.

use wmcs_bench::compare::compare_summaries;

fn main() {
    let usage = "usage: bench_compare BASELINE.json CANDIDATE.json [--tol=FRAC]";
    let mut files: Vec<String> = Vec::new();
    let mut tolerance: Option<f64> = None;
    for arg in std::env::args().skip(1) {
        if let Some(t) = arg.strip_prefix("--tol=") {
            match t.parse::<f64>() {
                Ok(t) if t >= 0.0 => tolerance = Some(t),
                _ => {
                    eprintln!("--tol needs a nonnegative fraction (e.g. --tol=0.5)\n{usage}");
                    std::process::exit(2);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("unrecognised flag `{arg}`\n{usage}");
            std::process::exit(2);
        } else {
            files.push(arg);
        }
    }
    let [baseline_path, candidate_path] = &files[..] else {
        eprintln!("{usage}");
        std::process::exit(2);
    };

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let candidate = read(candidate_path);

    match compare_summaries(&baseline, &candidate, tolerance) {
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Ok(cmp) => {
            println!("timings (baseline → candidate, informational unless --tol given):");
            print!("{}", cmp.timing_report);
            if cmp.ok() {
                println!("OK: verdicts match the baseline");
            } else {
                println!("DRIFT against the baseline:");
                for d in &cmp.drifts {
                    println!("  {d}");
                }
                std::process::exit(1);
            }
        }
    }
}
