//! Regenerate experiment T13 (see EXPERIMENTS.md) over its full scenario
//! matrix — byte-identity of the spatial substrate backend against the
//! dense reference. Usage: `table_spatial [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T13");
}
