//! Regenerate experiment T7 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_jv_bb [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T7");
}
