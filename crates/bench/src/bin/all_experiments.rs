//! Run every experiment back to back (the full EXPERIMENTS.md record).
//!
//! ```text
//! all_experiments [SEEDS] [--json[=PATH]]
//! ```
//!
//! * `SEEDS` — seeds per cell for the statistical tables (default 20).
//! * `--json` — after the run, also write a machine-readable summary
//!   (per-experiment wall time, verdicts, and full tables) to
//!   `BENCH_baseline.json`, or to `PATH` with `--json=PATH`. Future perf
//!   PRs diff their own run against the committed baseline.
//!
//! Stdout always carries the human-rendered tables here — the baseline
//! file is the machine-readable channel (the single-table binaries keep
//! `Table::emit`'s `--json` stdout switch instead). Unknown arguments
//! are an error.

use serde::Serialize;
use std::time::Instant;
use wmcs_bench::experiments as ex;
use wmcs_bench::Table;

/// One timed experiment in the summary file.
#[derive(Serialize)]
struct ExperimentRecord {
    /// Wall-clock seconds for the experiment's full computation.
    seconds: f64,
    /// The rendered table (id, title, claim, columns, rows, verdict).
    table: Table,
}

/// The whole machine-readable run.
#[derive(Serialize)]
struct Summary {
    /// Seeds per cell the statistical tables were run with.
    seeds: u64,
    /// Total wall-clock seconds across all experiments.
    total_seconds: f64,
    /// Per-experiment timing and results, in run order.
    experiments: Vec<ExperimentRecord>,
}

fn main() {
    let mut seeds: Option<u64> = None;
    let mut json_path: Option<String> = None;
    let usage = "usage: all_experiments [SEEDS] [--json[=PATH]]";
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json_path = Some("BENCH_baseline.json".to_string());
        } else if let Some(path) = arg.strip_prefix("--json=") {
            json_path = Some(path.to_string());
        } else if let Ok(n) = arg.parse() {
            if n == 0 {
                eprintln!("SEEDS must be at least 1\n{usage}");
                std::process::exit(2);
            }
            if let Some(prev) = seeds.replace(n) {
                eprintln!("SEEDS given twice ({prev}, then {n})\n{usage}");
                std::process::exit(2);
            }
        } else {
            eprintln!("unrecognised argument `{arg}`\n{usage}");
            std::process::exit(2);
        }
    }
    let seeds = seeds.unwrap_or(20);

    let runs: Vec<Box<dyn Fn(u64) -> Table>> = vec![
        Box::new(|_| ex::f1::run()),
        Box::new(|_| ex::f2::run()),
        Box::new(ex::t1::run),
        Box::new(ex::t2::run),
        Box::new(ex::t3::run),
        Box::new(ex::t4::run),
        Box::new(ex::t5::run),
        Box::new(ex::t6::run),
        Box::new(ex::t7::run),
        Box::new(ex::t9::run),
    ];

    let mut summary = Summary {
        seeds,
        total_seconds: 0.0,
        experiments: Vec::with_capacity(runs.len()),
    };
    for run in runs {
        let start = Instant::now();
        let table = run(seeds);
        let seconds = start.elapsed().as_secs_f64();
        table.print();
        summary.total_seconds += seconds;
        summary
            .experiments
            .push(ExperimentRecord { seconds, table });
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&summary).expect("summary is serialisable");
        std::fs::write(&path, json + "\n").expect("baseline file is writable");
        eprintln!(
            "wrote {} experiments ({:.2}s total) to {path}",
            summary.experiments.len(),
            summary.total_seconds
        );
    }
}
