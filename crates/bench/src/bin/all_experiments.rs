//! Run every experiment back to back (the full EXPERIMENTS.md record).
//! Optional arg: seeds per cell for the statistical tables (default 20).
use wmcs_bench::experiments as ex;

fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    ex::f1::run().emit();
    ex::f2::run().emit();
    ex::t1::run(seeds).emit();
    ex::t2::run(seeds).emit();
    ex::t3::run(seeds).emit();
    ex::t4::run(seeds).emit();
    ex::t5::run(seeds).emit();
    ex::t6::run(seeds).emit();
    ex::t7::run(seeds).emit();
    ex::t9::run(seeds).emit();
}
