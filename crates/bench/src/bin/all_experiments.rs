//! Sweep every registered experiment over its full scenario matrix (the
//! complete EXPERIMENTS.md record).
//!
//! ```text
//! all_experiments [SEEDS] [--json[=PATH]]
//! ```
//!
//! * `SEEDS` — seeds per `(experiment, scenario)` cell (default 20).
//! * `--json` — after the run, also write the versioned machine-readable
//!   sweep summary (per-experiment status, verdict, per-cell timings and
//!   full tables) to `BENCH_baseline.json`, or to `PATH` with
//!   `--json=PATH`. CI diffs its own 3-seed run against the committed
//!   20-seed baseline with `bench_compare`.
//!
//! Stdout always carries the human-rendered tables here — the summary
//! file is the machine-readable channel (the single-table binaries keep
//! a `--json` stdout switch instead). Unknown arguments are an error.

use wmcs_bench::cli::try_seeds_arg;
use wmcs_bench::compare::summary_json;
use wmcs_bench::engine::{run_sweep, SweepConfig};
use wmcs_bench::registry::REGISTRY;

fn main() {
    let mut seeds: Option<u64> = None;
    let mut json_path: Option<String> = None;
    let usage = "usage: all_experiments [SEEDS] [--json[=PATH]]";
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json_path = Some("BENCH_baseline.json".to_string());
        } else if let Some(path) = arg.strip_prefix("--json=") {
            json_path = Some(path.to_string());
        } else if !try_seeds_arg(&arg, &mut seeds, usage) {
            eprintln!("unrecognised argument `{arg}`\n{usage}");
            std::process::exit(2);
        }
    }

    let cfg = SweepConfig::with_seeds(seeds.unwrap_or(20));
    let run = run_sweep(REGISTRY, &cfg);
    for exp in &run.experiments {
        exp.table.print();
    }

    if let Some(path) = json_path {
        std::fs::write(&path, summary_json(&run)).expect("summary file is writable");
        eprintln!(
            "wrote {} experiments ({:.2}s compute) to {path}",
            run.experiments.len(),
            run.total_seconds
        );
    }

    if run.experiments.iter().any(|e| !e.pass) {
        eprintln!("some experiments FAILED their gated claims");
        std::process::exit(1);
    }
}
