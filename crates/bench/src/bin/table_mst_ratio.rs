//! Regenerate experiment T6 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_mst_ratio [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T6");
}
