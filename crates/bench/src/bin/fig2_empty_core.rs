//! Regenerate experiment F2 (see EXPERIMENTS.md).
fn main() {
    wmcs_bench::experiments::f2::run().emit();
}
