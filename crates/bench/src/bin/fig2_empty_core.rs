//! Regenerate experiment F2 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `fig2_empty_core [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("F2");
}
