//! Regenerate experiment T5 (see EXPERIMENTS.md) over its full scenario
//! matrix. Usage: `table_submodularity_violations [SEEDS] [--json]`.
fn main() {
    wmcs_bench::cli::table_main("T5");
}
