//! # wmcs-bench — benchmark & experiment harness
//!
//! Regenerates every figure and theorem-backed claim of the paper
//! (per-experiment index in `DESIGN.md` §4, results recorded in
//! `EXPERIMENTS.md`):
//!
//! * table binaries: `fig1_collusion`, `fig2_empty_core`,
//!   `table_universal_tree` (T1), `table_nwst_bb` (T2),
//!   `table_wireless_bb` (T3), `table_euclidean_optimal` (T4),
//!   `table_submodularity_violations` (T5), `table_mst_ratio` (T6),
//!   `table_jv_bb` (T7), and `all_experiments` to run the lot;
//! * criterion benches (`cargo bench`): timing/scaling of every
//!   mechanism and substrate (T8).

pub mod experiments;
pub mod harness;

pub use harness::{
    parallel_map_seeds, random_euclidean, random_euclidean_d, random_line, random_nwst,
    random_utilities, Table,
};
