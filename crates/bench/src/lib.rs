//! # wmcs-bench — benchmark & experiment harness
//!
//! Regenerates every figure and theorem-backed claim of the paper
//! (per-experiment index in `DESIGN.md` §4, results recorded in
//! `EXPERIMENTS.md`) through a registry-driven sweep engine:
//!
//! * [`registry`] — one [`registry::Experiment`] per figure/table,
//!   resolved by id ([`registry::REGISTRY`]);
//! * [`engine`] — the work-stealing parallel executor over flat
//!   `(experiment × scenario × seed)` cells;
//! * [`compare`] — the versioned sweep-summary JSON schema and the
//!   baseline diff behind the `bench_compare` CI gate;
//! * [`latency`] — exact p50/p99/p999 percentiles (deterministic
//!   nearest-rank math) over the streaming layer's virtual-clock
//!   samples, per event class;
//! * table binaries: `fig1_collusion` (F1), `fig2_empty_core` (F2),
//!   `table_universal_tree` (T1), `table_nwst_bb` (T2),
//!   `table_wireless_bb` (T3), `table_euclidean_optimal` (T4),
//!   `table_submodularity_violations` (T5), `table_mst_ratio` (T6),
//!   `table_jv_bb` (T7), `table_eq5_ablation` (T9), `table_scaling`
//!   (T10, the incremental-engine n ≤ 4096 scaling table),
//!   `table_churn` (T11, the live-session churn table),
//!   `table_service` (T12, the sharded multi-group service table) and
//!   `table_stream` (T14, the streaming ≡ batch byte-identity table
//!   with exact latency percentiles) — each a thin [`cli::table_main`]
//!   shim — plus `all_experiments` to sweep the whole registry and
//!   `bench_compare` to diff two summary files;
//! * criterion benches (`cargo bench`): timing/scaling of every
//!   mechanism and substrate (T8), plus `drop_engine` pitting the naive
//!   drop loop against the incremental engine, `session_churn` pitting
//!   warm live sessions against cold per-batch rebuilds,
//!   `service_throughput` pitting the sharded multi-group service
//!   against single-thread and per-group cold servings at
//!   G = 1024 × n = 4096, and `stream_throughput` pitting the
//!   epoch-pipelined streaming layer against single-worker streaming
//!   and batch replay on the same interleaved workload.

// Every public item carries rustdoc: substrate crates feed the
// mechanism layers above them, and undocumented invariants become
// silent contract drift there.
#![deny(missing_docs)]

pub mod cli;
pub mod compare;
pub mod engine;
pub mod experiments;
pub mod harness;
pub mod latency;
pub mod registry;

pub use engine::{run_sweep, SweepConfig, SweepRun};
pub use harness::{
    random_euclidean, random_euclidean_d, random_line, random_nwst, random_utilities, OutputMode,
    Table,
};
pub use latency::{EventClass, LatencyRecorder, LatencySummary};
pub use registry::{Experiment, REGISTRY};
