//! The sweep summary schema and the baseline diff behind `bench_compare`.
//!
//! [`summary_json`] serialises a finished [`SweepRun`] into the versioned
//! machine-readable form `all_experiments --json` writes (and CI commits
//! as `BENCH_baseline.json`); [`compare_summaries`] diffs two such files:
//!
//! * **verdicts gate**: every experiment's pass/fail status and verdict
//!   string must match exactly (they are seed-count independent by the
//!   registry contract, so a 3-seed CI sweep diffs cleanly against the
//!   20-seed committed baseline);
//! * **timings inform**: per-experiment cell compute seconds (pinned
//!   once-per-sweep checks excluded) are normalised by seeds-per-cell
//!   and reported as deltas. By default they never fail
//!   the comparison; an explicit tolerance (`--tol=0.5` = +50%) turns
//!   regressions beyond it into failures.
//!
//! The vendored `serde_json` is a serializer only, so this module carries
//! its own minimal JSON reader ([`parse_json`]), sufficient for anything
//! the shim's writer emits.

use crate::engine::SweepRun;
use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Schema identifier embedded in every summary file.
pub const SCHEMA: &str = "wmcs-bench-sweep";

/// Current schema version. Bump when the summary shape changes so
/// `bench_compare` refuses to diff incompatible files. v1 was PR 1's
/// ad-hoc `all_experiments --json` output (no schema field); v2 is the
/// registry-driven sweep with per-cell timings.
pub const SCHEMA_VERSION: u64 = 2;

/// Serialise a finished sweep into the versioned summary JSON.
///
/// Built as an explicit [`Value`] tree (the vendored derive macro does
/// not handle borrowed fields), so the field order here *is* the schema.
pub fn summary_json(run: &SweepRun) -> String {
    let obj = |fields: Vec<(&str, Value)>| {
        Value::Map(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let experiments: Vec<Value> = run
        .experiments
        .iter()
        .map(|e| {
            let cells: Vec<Value> = e
                .cells
                .iter()
                .map(|c| {
                    obj(vec![
                        ("scenario", c.scenario.to_value()),
                        ("seconds", c.seconds.to_value()),
                    ])
                })
                .collect();
            obj(vec![
                ("id", e.table.id.to_value()),
                ("status", e.status().to_value()),
                ("verdict", e.table.verdict.to_value()),
                ("seconds", e.seconds.to_value()),
                ("cells", cells.to_value()),
                ("table", e.table.to_value()),
            ])
        })
        .collect();
    let summary = obj(vec![
        ("schema", SCHEMA.to_value()),
        ("schema_version", SCHEMA_VERSION.to_value()),
        ("seeds_per_cell", run.seeds_per_cell.to_value()),
        ("total_seconds", run.total_seconds.to_value()),
        ("experiments", experiments.to_value()),
    ]);
    let mut json = serde_json::to_string_pretty(&summary).expect("summary is serialisable");
    json.push('\n');
    json
}

// ---- minimal JSON reader ----

/// Parsed JSON value (the reader-side mirror of the shim's writer).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..=\uDFFF`.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&low) {
                                        char::from_u32(
                                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("bad \\u escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .expect("Some(_) arm: at least one byte remains");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document (sufficient for everything the vendored
/// `serde_json` writer emits).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

// ---- the diff ----

/// One experiment's footprint in a summary file.
struct ExperimentEntry {
    id: String,
    status: String,
    verdict: String,
    /// Seconds that scale with the seed count: the sum over the
    /// per-scenario `cells` timings. The top-level `seconds` also folds
    /// in the once-per-sweep pinned checks, which would skew a
    /// per-seed-cell comparison between sweeps of different seed counts,
    /// so it is only the fallback when no cells are recorded.
    cell_seconds: f64,
}

/// A parsed-and-validated summary file.
struct ParsedSummary {
    seeds_per_cell: f64,
    experiments: Vec<ExperimentEntry>,
}

fn load_summary(label: &str, text: &str) -> Result<ParsedSummary, String> {
    let root = parse_json(text).map_err(|e| format!("{label}: {e}"))?;
    let schema = root.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "{label}: schema is `{schema}`, expected `{SCHEMA}` — regenerate the file with \
             `all_experiments --json`"
        ));
    }
    let version = root
        .get("schema_version")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "{label}: schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let seeds_per_cell = root
        .get("seeds_per_cell")
        .and_then(Json::as_f64)
        .filter(|&s| s >= 1.0)
        .ok_or_else(|| format!("{label}: missing seeds_per_cell"))?;
    let experiments = root
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing experiments array"))?
        .iter()
        .map(|e| {
            let field = |k: &str| e.get(k).and_then(Json::as_str).map(str::to_string);
            let cells: Vec<f64> = e
                .get("cells")
                .and_then(Json::as_arr)
                .map(|cells| {
                    cells
                        .iter()
                        .filter_map(|c| c.get("seconds").and_then(Json::as_f64))
                        .collect()
                })
                .unwrap_or_default();
            let cell_seconds = if cells.is_empty() {
                e.get("seconds").and_then(Json::as_f64).unwrap_or(0.0)
            } else {
                cells.iter().sum()
            };
            Ok(ExperimentEntry {
                id: field("id").ok_or_else(|| format!("{label}: experiment without id"))?,
                status: field("status").unwrap_or_default(),
                verdict: field("verdict").unwrap_or_default(),
                cell_seconds,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ParsedSummary {
        seeds_per_cell,
        experiments,
    })
}

/// Outcome of diffing a candidate summary against a baseline.
pub struct Comparison {
    /// Fatal verdict/status/coverage drifts (nonempty ⇒ the gate fails).
    pub drifts: Vec<String>,
    /// Per-experiment timing report (informational unless a tolerance
    /// turned an entry into a drift).
    pub timing_report: String,
}

impl Comparison {
    /// Did the candidate match the baseline on everything gated?
    pub fn ok(&self) -> bool {
        self.drifts.is_empty()
    }
}

/// Diff `candidate` against `baseline` (both summary-JSON texts).
///
/// Verdict and status drift is always fatal. Timing deltas (normalised
/// per seed-cell so sweeps with different seed counts compare) are
/// informational unless `tolerance` is given, in which case a candidate
/// experiment slower than `(1 + tolerance) ×` its baseline is fatal too.
pub fn compare_summaries(
    baseline: &str,
    candidate: &str,
    tolerance: Option<f64>,
) -> Result<Comparison, String> {
    let base = load_summary("baseline", baseline)?;
    let cand = load_summary("candidate", candidate)?;
    let mut drifts = Vec::new();
    let mut timing = String::new();

    for b in &base.experiments {
        let Some(c) = cand.experiments.iter().find(|c| c.id == b.id) else {
            drifts.push(format!(
                "{}: present in baseline, missing from candidate",
                b.id
            ));
            continue;
        };
        if c.status != b.status {
            drifts.push(format!(
                "{}: status drifted `{}` → `{}`",
                b.id, b.status, c.status
            ));
        }
        if c.verdict != b.verdict {
            drifts.push(format!(
                "{}: verdict drifted\n  baseline:  {}\n  candidate: {}",
                b.id, b.verdict, c.verdict
            ));
        }
        // Normalise to per-seed-cell compute seconds: the summed cell
        // work scales ~linearly in seeds (pinned checks are excluded —
        // they run once per sweep regardless of seed count).
        let b_norm = b.cell_seconds / base.seeds_per_cell;
        let c_norm = c.cell_seconds / cand.seeds_per_cell;
        let delta = if b_norm > 0.0 {
            100.0 * (c_norm / b_norm - 1.0)
        } else {
            0.0
        };
        writeln!(
            timing,
            "  {:>4}  {:>10.4}s → {:>10.4}s per seed-cell  ({:+.1}%)",
            b.id, b_norm, c_norm, delta
        )
        .expect("write! to String is infallible");
        if let Some(tol) = tolerance {
            if b_norm > 0.0 && c_norm > b_norm * (1.0 + tol) {
                drifts.push(format!(
                    "{}: timing regression {:+.1}% exceeds tolerance {:.0}%",
                    b.id,
                    delta,
                    100.0 * tol
                ));
            }
        }
    }
    for c in &cand.experiments {
        if !base.experiments.iter().any(|b| b.id == c.id) {
            drifts.push(format!(
                "{}: new in candidate, absent from baseline — regenerate the baseline",
                c.id
            ));
        }
    }

    Ok(Comparison {
        drifts,
        timing_report: timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_writer_output() {
        let text = r#"{"id":"T1 α≤β","rows":[1,2.5,null,true,false],"nested":{"a":[],"b":{}},"esc":"a\"b\\c\nd"}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("T1 α≤β"));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[1], Json::Num(2.5));
        assert_eq!(v.get("esc").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert_eq!(
            parse_json(r#""é 😀""#).unwrap(),
            Json::Str("é 😀".to_string())
        );
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{} trailing").is_err());
        // Surrogate pairs: valid pair decodes, broken pairs are errors.
        assert_eq!(parse_json(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        assert!(parse_json(r#""\ud800A""#).is_err());
        assert!(parse_json(r#""\ud800\u0041""#).is_err());
        assert!(parse_json(r#""\udc00""#).is_err());
    }

    fn summary(id: &str, status: &str, verdict: &str, seconds: f64) -> String {
        format!(
            r#"{{"schema":"{SCHEMA}","schema_version":{SCHEMA_VERSION},"seeds_per_cell":2,
               "total_seconds":{seconds},
               "experiments":[{{"id":"{id}","status":"{status}","verdict":"{verdict}",
                                "seconds":{seconds},"cells":[],"table":{{}}}}]}}"#
        )
    }

    #[test]
    fn identical_summaries_compare_clean() {
        let s = summary("T2", "pass", "all good", 1.0);
        let cmp = compare_summaries(&s, &s, None).unwrap();
        assert!(cmp.ok(), "{:?}", cmp.drifts);
        assert!(cmp.timing_report.contains("T2"));
    }

    #[test]
    fn verdict_and_status_drift_is_fatal() {
        let base = summary("T2", "pass", "all good", 1.0);
        let cand = summary("T2", "fail", "MISMATCH", 1.0);
        let cmp = compare_summaries(&base, &cand, None).unwrap();
        assert_eq!(cmp.drifts.len(), 2);
    }

    #[test]
    fn coverage_drift_is_fatal_both_ways() {
        let base = summary("T2", "pass", "v", 1.0);
        let cand = summary("T3", "pass", "v", 1.0);
        let cmp = compare_summaries(&base, &cand, None).unwrap();
        assert_eq!(cmp.drifts.len(), 2);
    }

    #[test]
    fn timing_is_informational_without_tolerance_and_fatal_with() {
        let base = summary("T2", "pass", "v", 1.0);
        let cand = summary("T2", "pass", "v", 10.0);
        assert!(compare_summaries(&base, &cand, None).unwrap().ok());
        let gated = compare_summaries(&base, &cand, Some(0.5)).unwrap();
        assert!(!gated.ok());
        // A fast candidate never trips the tolerance.
        let rev = compare_summaries(&cand, &base, Some(0.5)).unwrap();
        assert!(rev.ok());
    }

    #[test]
    fn wrong_schema_is_an_error() {
        let bad = r#"{"seeds":20,"experiments":[]}"#;
        let good = summary("T2", "pass", "v", 1.0);
        assert!(compare_summaries(bad, &good, None).is_err());
        assert!(compare_summaries(&good, bad, None).is_err());
    }
}
