//! Shared harness: table rendering, random-instance builders and a
//! crossbeam-based parallel seed sweep (coarse-grained data parallelism —
//! one independent instance per task — per the hpc-parallel guide).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wmcs_geom::{Point, PowerModel};
use wmcs_nwst::NodeWeightedGraph;
use wmcs_wireless::WirelessNetwork;

/// A printable experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. "T2").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper's claim being validated.
    pub claim: &'static str,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict (filled by the experiment).
    pub verdict: String,
}

impl Table {
    /// New empty table.
    pub fn new(
        id: &'static str,
        title: &'static str,
        claim: &'static str,
        columns: &[&str],
    ) -> Self {
        Self {
            id,
            title,
            claim,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
            verdict: String::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Emit to stdout: JSON when `--json` was passed on the command line,
    /// the aligned-column rendering otherwise.
    pub fn emit(&self) {
        if std::env::args().any(|a| a == "--json") {
            println!("{}", self.to_json());
        } else {
            self.print();
        }
    }

    /// Serialise the table (columns, rows, verdict) as a JSON object for
    /// downstream tooling.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are serialisable")
    }

    /// Render to stdout in aligned columns.
    pub fn print(&self) {
        println!("== {}: {} ==", self.id, self.title);
        println!("paper claim: {}", self.claim);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let mut line = String::from("| ");
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>w$} | ", w = w));
            }
            line
        };
        println!("{}", render(&self.columns));
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            println!("{}", render(row));
        }
        println!("verdict: {}\n", self.verdict);
    }
}

/// Map a function over seeds in parallel with crossbeam scoped threads.
/// Results come back in seed order.
pub fn parallel_map_seeds<R: Send>(seeds: &[u64], f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    if threads <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&s| f(s)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(seeds.len());
    out.resize_with(seeds.len(), || None);
    let chunk = seeds.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, seed_chunk) in out.chunks_mut(chunk).zip(seeds.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, &seed) in slot_chunk.iter_mut().zip(seed_chunk) {
                    *slot = Some(f(seed));
                }
            });
        }
    })
    .expect("worker panicked");
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Random 2-D Euclidean network, source 0.
pub fn random_euclidean(seed: u64, n: usize, alpha: f64, side: f64) -> WirelessNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::xy(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), 0)
}

/// Random d-dimensional Euclidean network, source 0.
pub fn random_euclidean_d(seed: u64, n: usize, d: usize, alpha: f64, side: f64) -> WirelessNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..side)).collect()))
        .collect();
    WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), 0)
}

/// Random sorted line network with a middle source.
pub fn random_line(seed: u64, n: usize, alpha: f64, length: f64) -> WirelessNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..length)).collect();
    xs.sort_by(f64::total_cmp);
    let pts: Vec<Point> = xs.into_iter().map(Point::on_line).collect();
    let source = rng.gen_range(0..n);
    WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), source)
}

/// Random node-weighted graph: ring + chords, `k` zero-weight terminals
/// spread evenly around the ring (adjacent zero-weight terminals would
/// make the optimum trivially 0).
pub fn random_nwst(seed: u64, n: usize, k: usize) -> (NodeWeightedGraph, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let terminals: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    let weights: Vec<f64> = (0..n)
        .map(|v| {
            if terminals.contains(&v) {
                0.0
            } else {
                rng.gen_range(0.2..5.0)
            }
        })
        .collect();
    let mut g = NodeWeightedGraph::new(weights);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n);
    }
    for _ in 0..n {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && !(terminals.contains(&a) && terminals.contains(&b)) {
            g.add_edge(a, b);
        }
    }
    (g, terminals)
}

/// Random utility profile in `[0, hi)`.
pub fn random_utilities(seed: u64, n: usize, hi: f64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..hi)).collect()
}
