//! Shared harness: table rendering with an explicit output mode, and the
//! random-instance builders the experiments and criterion benches share.
//!
//! Parallelism lives in [`crate::engine`]: the sweep engine schedules flat
//! `(experiment × scenario × seed)` cells over a self-scheduling worker
//! pool instead of chunking seeds per experiment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wmcs_geom::{LayoutFamily, Point, PowerModel, Scenario};
use wmcs_nwst::NodeWeightedGraph;
use wmcs_wireless::WirelessNetwork;

/// How a [`Table`] is written to stdout.
///
/// Threaded explicitly from each binary's argument parser — the harness
/// never sniffs `std::env::args()`, so an unrelated flag on some binary
/// can never flip the output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMode {
    /// Human-readable aligned columns (the default).
    #[default]
    Text,
    /// The table as a pretty-printed JSON object.
    Json,
}

/// A printable experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. "T2").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper's claim being validated.
    pub claim: &'static str,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict (filled by the experiment).
    pub verdict: String,
}

impl Table {
    /// New empty table.
    pub fn new(
        id: &'static str,
        title: &'static str,
        claim: &'static str,
        columns: &[&str],
    ) -> Self {
        Self {
            id,
            title,
            claim,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
            verdict: String::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Emit to stdout in the given mode.
    pub fn emit(&self, mode: OutputMode) {
        match mode {
            OutputMode::Text => self.print(),
            OutputMode::Json => println!("{}", self.to_json()),
        }
    }

    /// Serialise the table (columns, rows, verdict) as a JSON object for
    /// downstream tooling.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are serialisable")
    }

    /// Render to stdout in aligned columns.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The aligned-column rendering as a string (what [`Table::print`]
    /// writes; also what the determinism tests compare byte-for-byte).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "== {}: {} ==", self.id, self.title).expect("write! to String is infallible");
        writeln!(out, "paper claim: {}", self.claim).expect("write! to String is infallible");
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            let mut line = String::from("| ");
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>w$} | ", w = w));
            }
            line
        };
        writeln!(out, "{}", render_row(&self.columns)).expect("write! to String is infallible");
        writeln!(
            out,
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        )
        .expect("write! to String is infallible");
        for row in &self.rows {
            writeln!(out, "{}", render_row(row)).expect("write! to String is infallible");
        }
        writeln!(out, "verdict: {}\n", self.verdict).expect("write! to String is infallible");
        out
    }
}

/// Wireless network for a scenario draw: stations from the scenario's
/// generator, costs `dist^α`.
///
/// For the [`LayoutFamily::Line`] family the stations come from
/// [`wmcs_geom::gen::line_instance`] — sorted along the segment with the
/// middle station as source (the `d = 1` setting of Lemma 3.1); every
/// other family keeps station 0 as the source.
pub fn scenario_network(sc: &Scenario, seed: u64) -> WirelessNetwork {
    let (pts, source) = if sc.family == LayoutFamily::Line {
        wmcs_geom::gen::line_instance(sc.n, 2.0 * wmcs_geom::SCENARIO_SIDE, seed)
    } else {
        (sc.points(seed), 0)
    };
    WirelessNetwork::euclidean(pts, sc.power_model(), source)
}

/// Terminals per node-weighted instance at station count `n`: the seed
/// tables' `k ≈ n/2 − 1` density. Shared by T2 and its T9 ablation so
/// the two always sweep the same instance class.
pub fn nwst_terminals_for(n: usize) -> usize {
    (n / 2).saturating_sub(1).max(2)
}

/// Node-weighted Steiner instance induced by a scenario draw: the graph
/// structure follows the spatial layout, so clustered/grid/circle station
/// sets genuinely change the connectivity regime.
///
/// Stations come from the scenario generator; edges are a chain in
/// first-coordinate order (guaranteeing connectivity) plus each station's
/// two nearest neighbours; `k` zero-weight terminals are spread evenly
/// over the station indices and every other node gets a random weight in
/// `[0.2, 5)`. Degenerate draws where the terminals connect for free are
/// possible (e.g. two terminals in one tight cluster) — callers that
/// normalise by the optimum skip instances whose exact cost is ~0.
pub fn random_nwst_scenario(sc: &Scenario, seed: u64, k: usize) -> (NodeWeightedGraph, Vec<usize>) {
    let n = sc.n;
    assert!(k >= 1 && k <= n);
    let pts = sc.points(seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0115_7a9c_e5ee_d000);
    let terminals: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    let weights: Vec<f64> = (0..n)
        .map(|v| {
            if terminals.contains(&v) {
                0.0
            } else {
                rng.gen_range(0.2..5.0)
            }
        })
        .collect();
    let mut g = NodeWeightedGraph::new(weights);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| pts[a].coord(0).total_cmp(&pts[b].coord(0)));
    for w in order.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    for v in 0..n {
        let mut near: Vec<usize> = (0..n).filter(|&u| u != v).collect();
        near.sort_by(|&a, &b| pts[v].dist_sq(&pts[a]).total_cmp(&pts[v].dist_sq(&pts[b])));
        for &u in near.iter().take(2) {
            g.add_edge(v, u);
        }
    }
    (g, terminals)
}

/// Random 2-D Euclidean network, source 0.
pub fn random_euclidean(seed: u64, n: usize, alpha: f64, side: f64) -> WirelessNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::xy(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), 0)
}

/// Random d-dimensional Euclidean network, source 0.
pub fn random_euclidean_d(seed: u64, n: usize, d: usize, alpha: f64, side: f64) -> WirelessNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..side)).collect()))
        .collect();
    WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), 0)
}

/// Random sorted line network with a middle source.
pub fn random_line(seed: u64, n: usize, alpha: f64, length: f64) -> WirelessNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..length)).collect();
    xs.sort_by(f64::total_cmp);
    let pts: Vec<Point> = xs.into_iter().map(Point::on_line).collect();
    let source = rng.gen_range(0..n);
    WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), source)
}

/// Random node-weighted graph: ring + chords, `k` zero-weight terminals
/// spread evenly around the ring (adjacent zero-weight terminals would
/// make the optimum trivially 0). Kept for the criterion benches; the
/// experiment tables use the layout-aware [`random_nwst_scenario`].
pub fn random_nwst(seed: u64, n: usize, k: usize) -> (NodeWeightedGraph, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let terminals: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    let weights: Vec<f64> = (0..n)
        .map(|v| {
            if terminals.contains(&v) {
                0.0
            } else {
                rng.gen_range(0.2..5.0)
            }
        })
        .collect();
    let mut g = NodeWeightedGraph::new(weights);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n);
    }
    for _ in 0..n {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && !(terminals.contains(&a) && terminals.contains(&b)) {
            g.add_edge(a, b);
        }
    }
    (g, terminals)
}

/// Random utility profile in `[0, hi)`.
pub fn random_utilities(seed: u64, n: usize, hi: f64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..hi)).collect()
}
