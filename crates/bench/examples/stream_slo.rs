//! Release-mode streaming SLO smoke: ≥ 1M events/s through the epoch
//! pipeline at G = 4096 groups on a shared n = 100 000 spatial substrate.
//!
//! The network stays **lazy** (no `O(n²)` cost matrix), `Backend::Spatial`
//! grows the universal tree through the grid index, and one
//! [`StreamService`] ingests a 2²¹-event rebid stream round-robined
//! across the groups. The gate is threefold:
//!
//! * **throughput** — the timed drive must sustain at least
//!   `WMCS_STREAM_SLO_MIN` events/s (default 1 000 000; the env override
//!   exists because CI containers are 1-core and heavily shared, see
//!   `.github/workflows/ci.yml`). At n = 10⁵ the `SessionLayout::Auto`
//!   default resolves every group to the **compact-frame (sparse)**
//!   layout, so warm state is the member path closure (~397 KB/group,
//!   ~1.6 GB total) instead of universe-sized vectors (~5.3 MB/group,
//!   ~21 GB at full G — the old dense drive was memory-bound at ~0.65M
//!   ev/s on the 1-core reference container against ~7.1M sparse on the
//!   dev box; EXPERIMENTS.md records both sweeps);
//! * **memory** — warm bytes/group (printed from
//!   [`StreamService::memory_bytes`]) must stay under a 512 KB ceiling,
//!   pinning the ≥ 10× sparse saving against dense regressions;
//! * **accounting** — every submission is accepted (capacity 1024 >
//!   watermark 512 means the queue can never saturate before sealing),
//!   nothing is rejected or retried, and exactly one epoch seals per
//!   group (512 events/group at watermark 512);
//! * **correctness spot-check** — a sampled Shapley group's epoch
//!   outcome balances its budget, mirroring `examples/large_scale.rs`.
//!
//! Every group prices with Shapley: the MC mechanism's warm reprice
//! re-runs its full selection walk (~8× a Shapley epoch at this n —
//! EXPERIMENTS.md records the measured ratio), so an alternating mix
//! would gate the pipeline on the mechanism, not the stream. T14 pins
//! byte-identity for both mechanisms; this smoke pins the SLO.
//!
//! Wall-clock timing here is informational + SLO gating only — it never
//! flows into a byte-identity verdict, which is why `Instant` is allowed
//! in this example while the audit bans it from verdict paths.
//!
//! ```text
//! cargo run --release -p wmcs-bench --example stream_slo
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wmcs_geom::{ChurnEvent, Point, PowerModel};
use wmcs_wireless::{
    Backend, GroupMechanism, StreamConfig, StreamService, SubstrateBuilder, TreeKind,
    WirelessNetwork,
};

/// Stations (players = N − 1 non-source stations).
const N: usize = 100_000;
/// Concurrent multicast groups sharing the substrate.
const G: usize = 4096;
/// Members joined per group during warm-up.
const MEMBERS: usize = 32;
/// Timed rebid submissions (2²¹).
const EVENTS: usize = 1 << 21;
/// Count watermark sealing an epoch.
const WATERMARK: usize = 512;
/// Bounded per-group queue capacity (> watermark: no saturation seals).
const CAPACITY: usize = 1024;
/// Epoch workers on the pool.
const THREADS: usize = 2;
/// Warm bytes/group ceiling: the compact-frame layout measures ~397 KB
/// per group at MEMBERS = 32 (a ~5 200-station path closure — SPT paths
/// under distance² costs are many-hop), against ~5.3 MB dense. The
/// ceiling pins the ≥ 10× drop with headroom for deeper member draws.
const MEMORY_CEILING: usize = 524_288;

fn main() {
    let slo_min: f64 = std::env::var("WMCS_STREAM_SLO_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000.0);

    // Constant-density uniform stations, lazy storage (a dense matrix
    // at this n would be 80 GB).
    let side = (N as f64).sqrt() * 10.0;
    let mut rng = SmallRng::seed_from_u64(14);
    let pts: Vec<Point> = (0..N)
        .map(|_| Point::xy(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let net = WirelessNetwork::euclidean_lazy(pts, PowerModel::free_space(), 0);

    #[allow(clippy::disallowed_methods)]
    let t = std::time::Instant::now();
    let ut = SubstrateBuilder::from_owned(net)
        .tree(TreeKind::Spt)
        .backend(Backend::Spatial)
        .build_universal();
    println!(
        "built n = {N} substrate via Backend::Spatial in {:.2?}",
        t.elapsed()
    );

    let n_players = N - 1;
    let broadcast = ut.multicast_cost(&ut.network().non_source_stations());
    let hi = 2.0 * broadcast / n_players as f64;

    let mut svc = StreamService::new(&ut, StreamConfig::new(WATERMARK, CAPACITY, THREADS));
    #[allow(clippy::disallowed_methods)]
    let t = std::time::Instant::now();
    for _ in 0..G {
        svc.add_group(GroupMechanism::Shapley);
    }
    println!("registered G = {G} warm sessions in {:.2?}", t.elapsed());

    // Deterministic membership: MEMBERS players per group, drawn from a
    // per-group generator (collisions within a group just re-join).
    let members: Vec<Vec<usize>> = (0..G)
        .map(|g| {
            let mut r = SmallRng::seed_from_u64(0x51_0000 + g as u64);
            (0..MEMBERS).map(|_| r.gen_range(0..n_players)).collect()
        })
        .collect();

    // Warm-up: every member joins; epochs seal on flush (32 < watermark).
    let ((), report) = svc.drive(|h| {
        for (g, m) in members.iter().enumerate() {
            for &p in m {
                h.submit_blocking(
                    g,
                    ChurnEvent::Join {
                        player: p,
                        utility: hi,
                    },
                );
            }
        }
    });
    assert_eq!(
        report.n_accepted(),
        (G * MEMBERS) as u64,
        "warm-up accepted"
    );
    assert_eq!(report.n_rejected(), 0, "warm-up rejected");

    // Timed stream: EVENTS rebids, round-robin across groups, so each
    // group sees exactly EVENTS / G = 512 events — one watermark seal.
    let mut utility = SmallRng::seed_from_u64(0x51_beef);
    let stream: Vec<(usize, ChurnEvent)> = (0..EVENTS)
        .map(|k| {
            let g = k % G;
            let p = members[g][(k / G) % MEMBERS];
            (
                g,
                ChurnEvent::Rebid {
                    player: p,
                    utility: utility.gen_range(0.0..hi),
                },
            )
        })
        .collect();

    #[allow(clippy::disallowed_methods)]
    let t = std::time::Instant::now();
    let ((), report) = svc.drive(|h| {
        for &(g, ev) in &stream {
            h.submit_blocking(g, ev);
        }
    });
    let secs = t.elapsed().as_secs_f64();
    let throughput = EVENTS as f64 / secs;

    // Accounting: nothing rejected, nothing retried, one epoch per group.
    assert_eq!(report.n_accepted(), EVENTS as u64, "all events accepted");
    assert_eq!(report.n_rejected(), 0, "no saturation seals");
    assert_eq!(report.n_retries(), 0, "no busy retries");
    assert_eq!(report.n_epochs(), G, "one watermark seal per group");
    for gr in &report.groups {
        assert_eq!(gr.epochs.len(), 1, "group {}: epoch count", gr.group);
        assert_eq!(
            gr.epochs[0].n_events, WATERMARK,
            "group {}: epoch size",
            gr.group
        );
    }

    // Warm-memory SLO: n = 10⁵ ≥ SPARSE_AUTO_THRESHOLD, so Auto resolves
    // every session to the compact-frame layout and per-group warm state
    // tracks the member path closure, not the universe. The dense layout
    // measures ~5.3 MB/group here (universe-sized vectors); the ceiling
    // asserts the ≥ 10× drop with generous headroom.
    let bytes_per_group = svc.memory_bytes() / G;
    println!("warm session state: {bytes_per_group} bytes/group (G = {G}, n = {N})");
    assert!(
        bytes_per_group <= MEMORY_CEILING,
        "warm state {bytes_per_group} B/group exceeds the {MEMORY_CEILING} B ceiling \
         (dense-layout regression? Auto must resolve to Sparse at n = {N})"
    );

    // BB spot-check on the first Shapley group's sealed epoch.
    let out = &report.groups[0].epochs[0].outcome;
    assert!(
        (out.revenue() - out.served_cost).abs() <= 1e-9 * (1.0 + out.served_cost),
        "group 0 epoch 0: revenue {} drifted from cost {}",
        out.revenue(),
        out.served_cost
    );

    println!(
        "streamed {EVENTS} events into {} epochs in {secs:.2}s — {:.0} events/s \
         (SLO floor {slo_min:.0})",
        report.n_epochs(),
        throughput
    );
    assert!(
        throughput >= slo_min,
        "throughput {throughput:.0} events/s below the {slo_min:.0} SLO floor \
         (override with WMCS_STREAM_SLO_MIN for slower machines)"
    );
    println!("stream SLO smoke passed: ≥ {slo_min:.0} events/s at G = {G}, n = {N}");
}
