//! Shared fixture for the engine/compare integration tests: a cheap,
//! fully deterministic experiment that still exercises the scenario
//! generators, so sweeps finish in milliseconds even in debug builds.

use wmcs_bench::registry::{fmax, mean, Experiment, Obs, RowSummary};
use wmcs_geom::{LayoutFamily, Scenario};

/// A synthetic registered-shaped experiment (id `"SYN"`).
pub struct Synthetic;

impl Experiment for Synthetic {
    fn id(&self) -> &'static str {
        "SYN"
    }

    fn title(&self) -> &'static str {
        "synthetic engine fixture"
    }

    fn claim(&self) -> &'static str {
        "coordinate sums are finite and deterministic per (scenario, seed)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["scenario", "seeds", "mean Σcoord", "max Σcoord"]
    }

    fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix(&LayoutFamily::ALL, &[6, 9], &[2], &[2.0])
    }

    fn measure(&self, scenario: &Scenario, seed: u64) -> Obs {
        let total: f64 = scenario
            .points(seed)
            .iter()
            .map(|p| (0..scenario.dim).map(|i| p.coord(i)).sum::<f64>())
            .sum();
        vec![total]
    }

    fn row(&self, scenario: &Scenario, obs: &[Obs]) -> RowSummary {
        RowSummary::gated(
            vec![
                scenario.label(),
                obs.len().to_string(),
                format!("{:.6}", mean(obs, 0)),
                format!("{:.6}", fmax(obs, 0)),
            ],
            obs.iter().all(|o| o[0].is_finite()),
        )
    }

    fn verdict(&self, rows: &[RowSummary]) -> String {
        if rows.iter().all(|r| r.good) {
            "synthetic sweep deterministic".into()
        } else {
            "MISMATCH".into()
        }
    }
}
