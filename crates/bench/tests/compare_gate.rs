//! The CI regression gate end to end: sweep → summary JSON →
//! `bench_compare`, including the required nonzero exit on an injected
//! verdict mismatch.

mod common;

use common::Synthetic;
use std::process::Command;
use wmcs_bench::compare::{compare_summaries, summary_json};
use wmcs_bench::engine::{run_sweep, SweepConfig};

fn synthetic_summary(seeds: u64) -> String {
    summary_json(&run_sweep(&[&Synthetic], &SweepConfig::with_seeds(seeds)))
}

#[test]
fn real_summaries_roundtrip_through_the_comparator() {
    // Different seed counts on the two sides, like CI (3) vs the
    // committed baseline (20): verdicts still compare clean.
    let baseline = synthetic_summary(4);
    let candidate = synthetic_summary(2);
    let cmp = compare_summaries(&baseline, &candidate, None).unwrap();
    assert!(cmp.ok(), "unexpected drift: {:?}", cmp.drifts);
    assert!(cmp.timing_report.contains("SYN"));
}

#[test]
fn injected_verdict_mismatch_is_drift() {
    let baseline = synthetic_summary(2);
    let candidate = baseline.replace("synthetic sweep deterministic", "MISMATCH");
    assert_ne!(baseline, candidate, "injection failed to change the file");
    let cmp = compare_summaries(&baseline, &candidate, None).unwrap();
    assert!(!cmp.ok());
    assert!(cmp.drifts.iter().any(|d| d.contains("verdict drifted")));
}

/// Run the actual `bench_compare` binary on two summary files. File
/// names carry a process-wide counter besides the pid: the #[test]s
/// calling this run as parallel threads of one process, so pid alone
/// would race them onto the same paths.
fn run_gate(baseline: &str, candidate: &str) -> std::process::ExitStatus {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CALL: AtomicUsize = AtomicUsize::new(0);
    let call = CALL.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let b = dir.join(format!("wmcs_gate_base_{pid}_{call}.json"));
    let c = dir.join(format!("wmcs_gate_cand_{pid}_{call}.json"));
    std::fs::write(&b, baseline).unwrap();
    std::fs::write(&c, candidate).unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(&b)
        .arg(&c)
        .status()
        .expect("bench_compare runs");
    let _ = std::fs::remove_file(&b);
    let _ = std::fs::remove_file(&c);
    status
}

#[test]
fn bench_compare_binary_gates_verdict_drift() {
    let baseline = synthetic_summary(2);

    // Matching files: exit 0.
    let ok = run_gate(&baseline, &baseline);
    assert!(ok.success(), "identical summaries must pass the gate");

    // Injected verdict mismatch: exit nonzero (the acceptance criterion).
    let drifted = baseline.replace("synthetic sweep deterministic", "MISMATCH");
    let bad = run_gate(&baseline, &drifted);
    assert_eq!(bad.code(), Some(1), "verdict drift must exit 1");
}

#[test]
fn bench_compare_binary_gates_missing_experiments() {
    // An experiment present in the baseline but missing from the
    // candidate sweep is coverage drift and must exit 1 — a PR that
    // silently drops an experiment (e.g. unregisters it) cannot pass the
    // gate on verdicts alone.
    let with_extra = {
        let base = synthetic_summary(2);
        // Clone the SYN experiment entry under a second id the candidate
        // sweep does not produce.
        let entry_start = base.find(r#""id": "SYN""#).expect("SYN entry");
        let obj_start = base[..entry_start].rfind('{').expect("entry object");
        // Entries are pretty-printed objects inside the experiments
        // array; find this object's end by brace counting.
        let bytes = base.as_bytes();
        let mut depth = 0usize;
        let mut obj_end = obj_start;
        for (i, &b) in bytes.iter().enumerate().skip(obj_start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        obj_end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let entry = base[obj_start..obj_end].replace(r#""id": "SYN""#, r#""id": "GONE""#);
        format!("{}{},\n{}", &base[..obj_start], entry, &base[obj_start..])
    };
    // Sanity: identical two-experiment files pass.
    assert!(run_gate(&with_extra, &with_extra).success());
    // The candidate sweep lacks GONE: exit 1.
    let status = run_gate(&with_extra, &synthetic_summary(2));
    assert_eq!(
        status.code(),
        Some(1),
        "a baseline experiment missing from the candidate must fail the gate"
    );
}

#[test]
fn bench_compare_binary_rejects_bad_input() {
    // Unparseable candidate: exit 2.
    let status = run_gate(&synthetic_summary(2), "not json at all");
    assert_eq!(status.code(), Some(2));

    // Bad usage: exit 2.
    let status = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("only-one-arg.json")
        .status()
        .expect("bench_compare runs");
    assert_eq!(status.code(), Some(2));
}
