//! The engine's core contract: the assembled tables are byte-identical
//! regardless of thread count or scheduling order, for every registered
//! experiment and for randomly drawn executor configurations.

mod common;

use common::Synthetic;
use proptest::prelude::*;
use wmcs_bench::engine::{run_sweep, SweepConfig};
use wmcs_bench::registry::{Experiment, REGISTRY};

fn render_all(experiments: &[&dyn Experiment], seeds: u64, threads: usize) -> Vec<String> {
    let cfg = SweepConfig {
        seeds_per_cell: seeds,
        threads: Some(threads),
    };
    run_sweep(experiments, &cfg)
        .experiments
        .iter()
        .map(|e| format!("{}\n[{}]", e.table.render(), e.status()))
        .collect()
}

/// Every registered experiment renders byte-identically under the serial
/// and the parallel executor (the acceptance criterion of the sweep
/// engine). One seed per cell keeps this tractable in debug builds.
#[test]
fn parallel_equals_serial_for_every_registered_experiment() {
    let serial = render_all(REGISTRY, 1, 1);
    let parallel = render_all(REGISTRY, 1, 4);
    assert_eq!(serial.len(), REGISTRY.len());
    for ((s, p), e) in serial.iter().zip(&parallel).zip(REGISTRY) {
        assert_eq!(s, p, "{} differs between serial and parallel runs", e.id());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random executor shapes never change the synthetic sweep's bytes.
    #[test]
    fn executor_shape_never_changes_the_tables(threads in 2usize..9, seeds in 1u64..6) {
        let serial = render_all(&[&Synthetic], seeds, 1);
        let parallel = render_all(&[&Synthetic], seeds, threads);
        prop_assert_eq!(serial, parallel);
    }

    /// Re-running the same configuration is reproducible (no hidden
    /// global state in the engine or the generators).
    #[test]
    fn sweeps_are_reproducible(threads in 1usize..9) {
        let a = render_all(&[&Synthetic], 2, threads);
        let b = render_all(&[&Synthetic], 2, threads);
        prop_assert_eq!(a, b);
    }
}

/// Fewer seeds per cell draw a strict prefix of a larger run's seeds, so
/// gated "for all sampled instances" verdicts stay comparable across seed
/// counts (the contract the CI gate relies on).
#[test]
fn smaller_sweeps_reuse_seed_prefixes() {
    use wmcs_bench::registry::cell_seed;
    for e in REGISTRY {
        for sc in e.scenarios() {
            let small: Vec<u64> = (0..3).map(|i| cell_seed(e.id(), &sc.label(), i)).collect();
            let big: Vec<u64> = (0..20).map(|i| cell_seed(e.id(), &sc.label(), i)).collect();
            assert_eq!(&big[..3], &small[..], "{} {}", e.id(), sc.label());
        }
    }
}
