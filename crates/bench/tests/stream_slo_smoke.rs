//! Smoke test pinning the core code path of `examples/stream_slo.rs`
//! at a scale `cargo test` can afford (the full G = 4096 × n = 10⁵ run
//! is the release-mode CI gate): every load-bearing assertion the
//! example makes as a binary — warm-up and stream accounting close,
//! exactly one watermark seal per group, sealed epochs hold exactly
//! `WATERMARK` events, and the sampled Shapley epoch balances its
//! budget — is re-asserted here, minus the wall-clock SLO floor (timing
//! never gates under `cargo test`; `WMCS_STREAM_SLO_MIN` covers the
//! binary).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wmcs_geom::{ChurnEvent, Point, PowerModel};
use wmcs_wireless::{
    Backend, GroupMechanism, StreamConfig, StreamService, SubstrateBuilder, TreeKind,
    WirelessNetwork,
};

// The example's constants, scaled down ~250× (same shape: capacity >
// watermark so nothing saturates, EVENTS / G = WATERMARK so each group
// seals exactly once).
const N: usize = 400;
const G: usize = 16;
const MEMBERS: usize = 8;
const WATERMARK: usize = 32;
const CAPACITY: usize = 64;
const EVENTS: usize = G * WATERMARK;

#[test]
fn stream_slo_assertions_hold_at_test_scale() {
    let side = (N as f64).sqrt() * 10.0;
    let mut rng = SmallRng::seed_from_u64(14);
    let pts: Vec<Point> = (0..N)
        .map(|_| Point::xy(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let net = WirelessNetwork::euclidean_lazy(pts, PowerModel::free_space(), 0);
    let ut = SubstrateBuilder::from_owned(net)
        .tree(TreeKind::Spt)
        .backend(Backend::Spatial)
        .build_universal();

    let n_players = N - 1;
    let broadcast = ut.multicast_cost(&ut.network().non_source_stations());
    let hi = 2.0 * broadcast / n_players as f64;

    let mut svc = StreamService::new(&ut, StreamConfig::new(WATERMARK, CAPACITY, 2));
    for _ in 0..G {
        svc.add_group(GroupMechanism::Shapley);
    }
    let members: Vec<Vec<usize>> = (0..G)
        .map(|g| {
            let mut r = SmallRng::seed_from_u64(0x51_0000 + g as u64);
            (0..MEMBERS).map(|_| r.gen_range(0..n_players)).collect()
        })
        .collect();

    let ((), report) = svc.drive(|h| {
        for (g, m) in members.iter().enumerate() {
            for &p in m {
                h.submit_blocking(
                    g,
                    ChurnEvent::Join {
                        player: p,
                        utility: hi,
                    },
                );
            }
        }
    });
    assert_eq!(
        report.n_accepted(),
        (G * MEMBERS) as u64,
        "warm-up accepted"
    );
    assert_eq!(report.n_rejected(), 0, "warm-up rejected");

    let mut utility = SmallRng::seed_from_u64(0x51_beef);
    let stream: Vec<(usize, ChurnEvent)> = (0..EVENTS)
        .map(|k| {
            let g = k % G;
            let p = members[g][(k / G) % MEMBERS];
            (
                g,
                ChurnEvent::Rebid {
                    player: p,
                    utility: utility.gen_range(0.0..hi),
                },
            )
        })
        .collect();
    let ((), report) = svc.drive(|h| {
        for &(g, ev) in &stream {
            h.submit_blocking(g, ev);
        }
    });

    assert_eq!(report.n_accepted(), EVENTS as u64, "all events accepted");
    assert_eq!(report.n_rejected(), 0, "no saturation seals");
    assert_eq!(report.n_retries(), 0, "no busy retries");
    assert_eq!(report.n_epochs(), G, "one watermark seal per group");
    for gr in &report.groups {
        assert_eq!(gr.epochs.len(), 1, "group {}: epoch count", gr.group);
        assert_eq!(
            gr.epochs[0].n_events, WATERMARK,
            "group {}: epoch size",
            gr.group
        );
    }

    let out = &report.groups[0].epochs[0].outcome;
    assert!(
        (out.revenue() - out.served_cost).abs() <= 1e-9 * (1.0 + out.served_cost),
        "group 0 epoch 0: revenue {} drifted from cost {}",
        out.revenue(),
        out.served_cost
    );
}
