//! Naive vs incremental Moulin–Shenker drop engine (criterion).
//!
//! Pits [`wmcs_wireless::incremental::shapley_drop_run`] (subtree
//! counts + active-children lists maintained across rounds) against
//! [`wmcs_wireless::incremental::reference_drop_run`] (full
//! `shapley_shares` recomputation per round) on identical instances and
//! utility profiles. The naive driver is only benched at n ≤ 256 — it
//! is the `O(n³)` reference, and beyond that it alone would dominate
//! the run; the incremental engine continues to n = 4096, the T10
//! table's largest cell.
//!
//! `WMCS_BENCH_SMOKE=1` shrinks warm-up and measurement time so CI can
//! compile-and-run this bench as a bit-rot gate without paying for a
//! full measurement (see `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wmcs_bench::harness::{random_euclidean, random_utilities};
use wmcs_wireless::incremental::{reference_drop_run, shapley_drop_run};
use wmcs_wireless::{SubstrateBuilder, TreeKind, UniversalTree};

/// Instance + profile shared by both drivers at a given size: utilities
/// scaled to the per-player broadcast cost so the drop loop actually
/// cascades instead of terminating in one round.
fn setup(n: usize) -> (UniversalTree, Vec<f64>) {
    let net = random_euclidean(42, n, 2.0, 10.0);
    let ut = SubstrateBuilder::new(&net)
        .tree(TreeKind::Spt)
        .build_universal();
    let broadcast = ut.multicast_cost(&ut.network().non_source_stations());
    let u = random_utilities(
        43,
        ut.network().n_players(),
        2.0 * broadcast / (n - 1) as f64,
    );
    (ut, u)
}

fn drop_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("moulin_shenker_drop_engine");
    g.sample_size(10);
    for &n in &[64usize, 256] {
        let (ut, u) = setup(n);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| reference_drop_run(&ut, &u))
        });
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| shapley_drop_run(&ut, &u))
        });
    }
    for &n in &[1024usize, 4096] {
        let (ut, u) = setup(n);
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| shapley_drop_run(&ut, &u))
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    if std::env::var_os("WMCS_BENCH_SMOKE").is_some() {
        // CI smoke: one short measurement per case, enough to catch the
        // bench bit-rotting without a real measurement budget.
        Criterion::default()
            .measurement_time(Duration::from_millis(80))
            .warm_up_time(Duration::from_millis(20))
    } else {
        Criterion::default()
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(500))
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = drop_engine
}
criterion_main!(benches);
