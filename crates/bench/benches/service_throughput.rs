//! Multi-group service throughput: sharded vs single-thread vs per-group
//! cold runs (criterion).
//!
//! One deterministic [`MultiGroupProcess`] workload — G = 1024 groups
//! (alternating Shapley / MC) with Zipf sizes and overlapping member
//! sets over an n = 4096 uniform instance — is served three ways:
//!
//! * `sharded` — one [`MulticastService`] on the shared substrate, the
//!   worker pool at available parallelism;
//! * `single_thread` — the same service pinned to 1 worker (the
//!   byte-identity reference the shard is gated against in T12);
//! * `per_group_cold` — the pre-service status quo: per batch and per
//!   group, a cold rebuild on the group's current state
//!   ([`shapley_drop_run_from`] for Shapley groups, a fresh
//!   [`NetWorthOracle`] + [`vcg_outcome`] for MC groups), reconstructed
//!   from sparse recorded states so the recording itself stays in
//!   memory at G = 1024.
//!
//! All variants start **after** the warm-up batches (absorbed outside
//! the timers) and replay the same churn batches on identical state
//! sequences; the warm variants clone the warmed service inside the
//! timer (no `iter_batched` in the vendored shim), which counts
//! *against* them — recorded ratios are conservative. Setup prints the
//! events per iteration so timings convert to events/sec; the headline
//! numbers are recorded in EXPERIMENTS.md.
//!
//! `WMCS_BENCH_SMOKE=1` shrinks the workload (G = 32, n = 256) and the
//! measurement time so CI can compile-and-run this bench as a bit-rot
//! gate (see `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wmcs_bench::harness::random_euclidean;
use wmcs_geom::{ChurnEvent, MultiGroupProcess, MultiGroupTrace};
use wmcs_wireless::incremental::{shapley_drop_run_from, NetWorthOracle};
use wmcs_wireless::session::vcg_outcome;
use wmcs_wireless::{
    GroupMechanism, GroupSession, MulticastService, SessionLayout, SubstrateBuilder, TreeKind,
    UniversalTree,
};

/// Churn batches per group after the warm-up batch.
const BATCHES: usize = 4;

fn smoke() -> bool {
    std::env::var_os("WMCS_BENCH_SMOKE").is_some()
}

/// Instance + multi-group workload at (n stations, G groups).
fn setup(n: usize, g: usize) -> (UniversalTree, MultiGroupTrace) {
    let net = random_euclidean(42, n, 2.0, 10.0);
    let ut = SubstrateBuilder::new(&net)
        .tree(TreeKind::Spt)
        .build_universal();
    let broadcast = ut.multicast_cost(&ut.network().non_source_stations());
    let hi = 2.0 * broadcast / (n - 1) as f64;
    let trace = MultiGroupProcess::new(n - 1, g, BATCHES, hi, 43).generate();
    (ut, trace)
}

/// A service over `ut` with the trace's groups registered and every
/// warm-up batch (batch 0 of each group) absorbed — the steady state all
/// timed variants start from.
fn warmed_service(ut: &UniversalTree, trace: &MultiGroupTrace, threads: usize) -> MulticastService {
    let mut svc = MulticastService::new(ut).with_threads(threads);
    for i in 0..trace.groups.len() {
        svc.add_group(GroupMechanism::alternating(i));
    }
    let warmup: Vec<Vec<ChurnEvent>> = trace
        .groups
        .iter()
        .map(|gr| gr.trace.batches[0].clone())
        .collect();
    svc.step_all(&warmup);
    svc
}

/// The churn batches (after warm-up) in step form: `steps[b][g]` is
/// group g's batch b+1.
fn churn_steps(trace: &MultiGroupTrace) -> Vec<Vec<Vec<ChurnEvent>>> {
    (1..trace.n_batches())
        .map(|b| {
            trace
                .groups
                .iter()
                .map(|gr| gr.trace.batches[b].clone())
                .collect()
        })
        .collect()
}

/// Sparse per-(batch, group) state the cold variant replays: for Shapley
/// groups the candidate players and their bids, for MC groups the
/// nonzero station utilities.
enum ColdState {
    Shapley(Vec<(usize, f64)>),
    Mc(Vec<(usize, f64)>),
}

/// Replay the warm service once, recording each group's pre-reprice
/// state per churn batch (sparse, so G = 1024 × n = 4096 stays well
/// under memory).
fn record_cold_states(
    ut: &UniversalTree,
    trace: &MultiGroupTrace,
    steps: &[Vec<Vec<ChurnEvent>>],
) -> Vec<Vec<ColdState>> {
    let mut sessions: Vec<GroupSession> = (0..trace.groups.len())
        .map(|i| GroupSession::new(GroupMechanism::alternating(i), ut))
        .collect();
    for (i, s) in sessions.iter_mut().enumerate() {
        s.apply_batch(&trace.groups[i].trace.batches[0]);
    }
    steps
        .iter()
        .map(|batches| {
            sessions
                .iter_mut()
                .enumerate()
                .map(|(i, s)| match s {
                    GroupSession::Shapley(s) => {
                        s.apply_events(&batches[i]);
                        let bids = s.reported_profile();
                        let state = s
                            .active_players()
                            .into_iter()
                            .map(|p| (p, bids[p]))
                            .collect();
                        s.reprice();
                        ColdState::Shapley(state)
                    }
                    GroupSession::Mc(s) => {
                        s.apply_events(&batches[i]);
                        let state = s
                            .station_utilities()
                            .iter()
                            .enumerate()
                            .filter(|&(_, &u)| u != 0.0)
                            .map(|(x, &u)| (x, u))
                            .collect();
                        s.reprice();
                        ColdState::Mc(state)
                    }
                    GroupSession::SparseShapley(_) | GroupSession::SparseMc(_) => {
                        unreachable!("GroupSession::new pins the dense layout")
                    }
                })
                .collect()
        })
        .collect()
}

fn service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    let (n, g) = if smoke() { (256, 32) } else { (4096, 1024) };

    let (ut, trace) = setup(n, g);
    let steps = churn_steps(&trace);
    let churn_events: usize = steps
        .iter()
        .flat_map(|batches| batches.iter().map(Vec::len))
        .sum();
    eprintln!(
        "service_throughput: n={n} G={g}, {churn_events} churn events per iteration \
         ({BATCHES} batches/group)"
    );

    let warmed = warmed_service(&ut, &trace, 0);
    let warmed_serial = warmed.clone().with_threads(1);
    let label = format!("G{g}_n{n}");
    eprintln!(
        "service_throughput: warm session state {} bytes/group ({:?} layout via Auto)",
        warmed.memory_bytes() / g,
        SessionLayout::Auto.resolve(n)
    );

    group.bench_with_input(BenchmarkId::new("sharded", &label), &g, |b, _| {
        b.iter(|| {
            let mut svc = warmed.clone();
            let mut served = 0usize;
            for batches in &steps {
                served += svc
                    .step_all(batches)
                    .iter()
                    .map(|o| o.outcome.receivers.len())
                    .sum::<usize>();
            }
            served
        })
    });
    group.bench_with_input(BenchmarkId::new("single_thread", &label), &g, |b, _| {
        b.iter(|| {
            let mut svc = warmed_serial.clone();
            let mut served = 0usize;
            for batches in &steps {
                served += svc
                    .step_all(batches)
                    .iter()
                    .map(|o| o.outcome.receivers.len())
                    .sum::<usize>();
            }
            served
        })
    });

    let cold_states = record_cold_states(&ut, &trace, &steps);
    let n_players = ut.network().n_players();
    let n_stations = ut.network().n_stations();
    group.bench_with_input(BenchmarkId::new("per_group_cold", &label), &g, |b, _| {
        b.iter(|| {
            // Shared scratch vectors, filled and cleared per group.
            let mut bids = vec![0.0f64; n_players];
            let mut u_st = vec![0.0f64; n_stations];
            let mut served = 0usize;
            for step in &cold_states {
                for state in step {
                    match state {
                        ColdState::Shapley(players) => {
                            for &(p, bid) in players {
                                bids[p] = bid;
                            }
                            let ids: Vec<usize> = players.iter().map(|&(p, _)| p).collect();
                            served += shapley_drop_run_from(&ut, &bids, &ids).receivers.len();
                            for &(p, _) in players {
                                bids[p] = 0.0;
                            }
                        }
                        ColdState::Mc(stations) => {
                            for &(x, u) in stations {
                                u_st[x] = u;
                            }
                            served += vcg_outcome(&ut, &NetWorthOracle::new(&ut, &u_st))
                                .receivers
                                .len();
                            for &(x, _) in stations {
                                u_st[x] = 0.0;
                            }
                        }
                    }
                }
            }
            served
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    if smoke() {
        Criterion::default()
            .measurement_time(Duration::from_millis(80))
            .warm_up_time(Duration::from_millis(20))
    } else {
        Criterion::default()
            .measurement_time(Duration::from_secs(3))
            .warm_up_time(Duration::from_millis(500))
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = service_throughput
}
criterion_main!(benches);
