//! Streaming ingestion throughput: epoch-pipelined vs single-worker vs
//! batch replay (criterion).
//!
//! One deterministic [`MultiGroupProcess`] workload — G = 1024 groups
//! (alternating Shapley / MC) with Zipf sizes over an n = 4096 uniform
//! instance — is flattened into the round-robin interleaved stream
//! ([`MultiGroupTrace::interleaved`]) and served three ways:
//!
//! * `pipelined` — one [`StreamService`] (watermark 8, capacity 64) with
//!   2 epoch workers: the producer seals epochs while the pool reprices
//!   earlier ones;
//! * `single_worker` — the same service with 1 worker (the smallest
//!   streaming configuration; outcomes are byte-identical by T14's
//!   gate);
//! * `batch_replay` — the pre-streaming status quo: a single-threaded
//!   [`MulticastService`] stepping each group's [`epoch_plan`] chunks —
//!   the pinned reference the streaming runs are identical to.
//!
//! All variants start from the same warmed state (each group's warm-up
//! batch absorbed outside the timers) and replay the same churn stream;
//! the warm services are cloned inside the timers (no `iter_batched` in
//! the vendored shim), which counts *against* them — recorded ratios
//! are conservative. Setup prints the events per iteration so timings
//! convert to events/sec; the headline numbers are recorded in
//! EXPERIMENTS.md. The ≥ 1M events/s SLO itself is asserted by the
//! release-mode `stream_slo` example (G = 4096 × n = 10⁵), not here.
//!
//! `WMCS_BENCH_SMOKE=1` shrinks the workload (G = 32, n = 256) and the
//! measurement time so CI can compile-and-run this bench as a bit-rot
//! gate (see `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wmcs_bench::harness::random_euclidean;
use wmcs_geom::{ChurnEvent, MultiGroupProcess, MultiGroupTrace};
use wmcs_wireless::{
    epoch_plan, GroupMechanism, MulticastService, StreamConfig, StreamService, SubstrateBuilder,
    TreeKind, UniversalTree,
};

/// Churn batches per group after the warm-up batch.
const BATCHES: usize = 4;
/// Count watermark sealing an epoch.
const WATERMARK: usize = 8;
/// Bounded per-group queue capacity.
const CAPACITY: usize = 64;

fn smoke() -> bool {
    std::env::var_os("WMCS_BENCH_SMOKE").is_some()
}

/// Instance + multi-group workload at (n stations, G groups).
fn setup(n: usize, g: usize) -> (UniversalTree, MultiGroupTrace) {
    let net = random_euclidean(42, n, 2.0, 10.0);
    let ut = SubstrateBuilder::new(&net)
        .tree(TreeKind::Spt)
        .build_universal();
    let broadcast = ut.multicast_cost(&ut.network().non_source_stations());
    let hi = 2.0 * broadcast / (n - 1) as f64;
    let trace = MultiGroupProcess::new(n - 1, g, BATCHES, hi, 43).generate();
    (ut, trace)
}

/// The trace restricted to one batch range, so `interleaved()` yields
/// the warm-up stream (`0..1`) or the churn stream (`1..`).
fn slice_batches(trace: &MultiGroupTrace, skip: usize, take: usize) -> MultiGroupTrace {
    let mut t = trace.clone();
    for g in &mut t.groups {
        let batches = std::mem::take(&mut g.trace.batches);
        g.trace.batches = batches.into_iter().skip(skip).take(take).collect();
    }
    t
}

fn stream_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_throughput");
    group.sample_size(10);
    let (n, g) = if smoke() { (256, 32) } else { (4096, 1024) };

    let (ut, trace) = setup(n, g);
    let warmup_stream = slice_batches(&trace, 0, 1).interleaved();
    let churn_stream = slice_batches(&trace, 1, BATCHES).interleaved();
    eprintln!(
        "stream_throughput: n={n} G={g}, {} churn events per iteration \
         (watermark {WATERMARK}, capacity {CAPACITY}, {BATCHES} batches/group)",
        churn_stream.len()
    );
    let label = format!("G{g}_n{n}");

    // Warmed streaming services: the warm-up stream absorbed outside
    // the timers, cloned (warm state, fresh accounting) inside them.
    let warm_stream_svc = |threads: usize| {
        let mut svc = StreamService::new(&ut, StreamConfig::new(WATERMARK, CAPACITY, threads));
        for i in 0..g {
            svc.add_group(GroupMechanism::alternating(i));
        }
        let ((), _) = svc.drive(|h| {
            for &(group, ev) in &warmup_stream {
                h.submit_blocking(group, ev);
            }
        });
        svc
    };
    let warmed2 = warm_stream_svc(2);
    let warmed1 = warm_stream_svc(1);

    group.bench_with_input(BenchmarkId::new("pipelined", &label), &g, |b, _| {
        b.iter(|| {
            let mut svc = warmed2.clone();
            let ((), report) = svc.drive(|h| {
                for &(group, ev) in &churn_stream {
                    h.submit_blocking(group, ev);
                }
            });
            report.n_epochs()
        })
    });
    group.bench_with_input(BenchmarkId::new("single_worker", &label), &g, |b, _| {
        b.iter(|| {
            let mut svc = warmed1.clone();
            let ((), report) = svc.drive(|h| {
                for &(group, ev) in &churn_stream {
                    h.submit_blocking(group, ev);
                }
            });
            report.n_epochs()
        })
    });

    // The pinned reference: a warmed single-threaded batch service
    // stepping each group's epoch-plan chunks.
    let config = StreamConfig::new(WATERMARK, CAPACITY, 1);
    let plans: Vec<Vec<Vec<ChurnEvent>>> = (0..g)
        .map(|gi| {
            let events: Vec<ChurnEvent> = churn_stream
                .iter()
                .filter(|&&(eg, _)| eg == gi)
                .map(|&(_, ev)| ev)
                .collect();
            epoch_plan(&events, &config)
        })
        .collect();
    let mut warmed_batch = MulticastService::new(&ut).with_threads(1);
    for i in 0..g {
        warmed_batch.add_group(GroupMechanism::alternating(i));
    }
    let warmup_batches: Vec<Vec<ChurnEvent>> = trace
        .groups
        .iter()
        .map(|gr| gr.trace.batches[0].clone())
        .collect();
    warmed_batch.step_all(&warmup_batches);

    group.bench_with_input(BenchmarkId::new("batch_replay", &label), &g, |b, _| {
        b.iter(|| {
            let mut svc = warmed_batch.clone();
            let mut epochs = 0usize;
            for (gi, plan) in plans.iter().enumerate() {
                for chunk in plan {
                    svc.step(&[(gi, chunk)]);
                    epochs += 1;
                }
            }
            epochs
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    if smoke() {
        Criterion::default()
            .measurement_time(Duration::from_millis(80))
            .warm_up_time(Duration::from_millis(20))
    } else {
        Criterion::default()
            .measurement_time(Duration::from_secs(3))
            .warm_up_time(Duration::from_millis(500))
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = stream_throughput
}
criterion_main!(benches);
