//! Warm live sessions vs cold rebuilds per churn batch (criterion).
//!
//! Replays one deterministic churn trace (16 batches + warm-up) through
//! three ways of serving it with `M(Shapley)`:
//!
//! * `warm` — one [`ShapleySession`]: events absorbed in `O(path)`, the
//!   drop loop restarted from the surviving set with the warm engine;
//! * `cold_from_set` — per batch, a fresh engine rebuilt from scratch on
//!   the same current receiver set (the byte-identity reference,
//!   [`shapley_drop_run_from`]);
//! * `cold_one_shot` — per batch, the pre-session status quo: the full
//!   one-shot mechanism run from `U` on the full bid vector
//!   ([`shapley_drop_run`]), which has to re-cascade every unaffordable
//!   player out on every batch.
//!
//! and the MC analogue (`warm` oracle repair vs `cold` full-DP rebuild
//! per batch). All variants start **after** the trace's warm-up batch
//! (the one-time flash crowd that joins half the universe, absorbed
//! outside the timers) and reprice once per churn batch on identical
//! state sequences, so every number is steady-state churn cost: divide
//! by the batch count for per-batch cost, by the churn event count for
//! per-event cost. The `warm` variants clone the warmed session inside
//! the timer (the vendored criterion shim has no `iter_batched` to hoist
//! it); that overhead counts *against* warm, so the recorded ratios are
//! conservative. The headline warm-vs-cold ratios are recorded in
//! EXPERIMENTS.md.
//!
//! `WMCS_BENCH_SMOKE=1` shrinks warm-up and measurement time so CI can
//! compile-and-run this bench as a bit-rot gate (see
//! `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wmcs_bench::harness::random_euclidean;
use wmcs_geom::{ChurnProcess, ChurnTrace};
use wmcs_wireless::incremental::{shapley_drop_run, shapley_drop_run_from, NetWorthOracle};
use wmcs_wireless::session::{vcg_outcome, McSession, ShapleySession};
use wmcs_wireless::{SubstrateBuilder, TreeKind, UniversalTree};

/// Instance + trace shared by every variant at a given size: bids scaled
/// to the per-player broadcast cost (the T10/T11 regime).
fn setup(n: usize) -> (UniversalTree, ChurnTrace) {
    let net = random_euclidean(42, n, 2.0, 10.0);
    let ut = SubstrateBuilder::new(&net)
        .tree(TreeKind::Spt)
        .build_universal();
    let broadcast = ut.multicast_cost(&ut.network().non_source_stations());
    let hi = 2.0 * broadcast / (n - 1) as f64;
    let trace = ChurnProcess::new(n - 1, 16, ((n - 1) / 64).max(4), hi, 43).generate();
    (ut, trace)
}

/// A session with the warm-up batch (batch 0) already absorbed and
/// repriced — the steady state every timed variant starts from.
fn warmed_session(ut: &UniversalTree, trace: &ChurnTrace) -> ShapleySession {
    let mut session = ShapleySession::new(ut);
    session.apply_batch(&trace.batches[0]);
    session
}

/// Replay the churn batches (after the warm-up) once and record, per
/// batch, the candidate receiver set and bid profile the reprice ran on —
/// the exact state sequence the cold variants must reproduce.
fn record_states(ut: &UniversalTree, trace: &ChurnTrace) -> Vec<(Vec<usize>, Vec<f64>)> {
    let mut session = warmed_session(ut, trace);
    let mut states = Vec::with_capacity(trace.batches.len() - 1);
    for batch in &trace.batches[1..] {
        session.apply_events(batch);
        states.push((session.active_players(), session.reported_profile()));
        session.reprice();
    }
    states
}

fn session_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_churn_shapley");
    g.sample_size(10);
    for &n in &[1024usize, 4096] {
        let (ut, trace) = setup(n);
        let warmed = warmed_session(&ut, &trace);
        let states = record_states(&ut, &trace);
        g.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| {
                let mut s = warmed.clone();
                for batch in &trace.batches[1..] {
                    s.apply_batch(batch);
                }
                s.n_batches()
            })
        });
        g.bench_with_input(BenchmarkId::new("cold_from_set", n), &n, |b, _| {
            b.iter(|| {
                let mut served = 0usize;
                for (players, bids) in &states {
                    served += shapley_drop_run_from(&ut, bids, players).receivers.len();
                }
                served
            })
        });
        g.bench_with_input(BenchmarkId::new("cold_one_shot", n), &n, |b, _| {
            b.iter(|| {
                let mut served = 0usize;
                for (_, bids) in &states {
                    served += shapley_drop_run(&ut, bids).receivers.len();
                }
                served
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("session_churn_mc");
    g.sample_size(10);
    for &n in &[1024usize, 4096] {
        let (ut, trace) = setup(n);
        // A warmed MC session plus, per churn batch, the station-utility
        // vector it holds after that batch (the cold DP's input).
        let mut warmed = McSession::new(&ut);
        warmed.apply_batch(&trace.batches[0]);
        let mut recorder = warmed.clone();
        let mut profiles = Vec::with_capacity(trace.batches.len() - 1);
        for batch in &trace.batches[1..] {
            recorder.apply_events(batch);
            profiles.push(recorder.station_utilities().to_vec());
            recorder.reprice();
        }
        g.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| {
                let mut s = warmed.clone();
                let mut served = 0usize;
                for batch in &trace.batches[1..] {
                    served += s.apply_batch(batch).receivers.len();
                }
                served
            })
        });
        g.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let mut served = 0usize;
                for u in &profiles {
                    served += vcg_outcome(&ut, &NetWorthOracle::new(&ut, u))
                        .receivers
                        .len();
                }
                served
            })
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    if std::env::var_os("WMCS_BENCH_SMOKE").is_some() {
        // CI smoke: one short measurement per case, enough to catch the
        // bench bit-rotting without a real measurement budget.
        Criterion::default()
            .measurement_time(Duration::from_millis(80))
            .warm_up_time(Duration::from_millis(20))
    } else {
        Criterion::default()
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(500))
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = session_churn
}
criterion_main!(benches);
