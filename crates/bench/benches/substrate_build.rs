//! Substrate construction at scale: the `SubstrateBuilder` spatial
//! backend against the dense `O(n²)` reference.
//!
//! Records, per station count and tree kind:
//!
//! * build time of a full universal-tree substrate (canonical growth +
//!   CSR assembly) through `Backend::Spatial` on a **lazy** Euclidean
//!   network at n ∈ {10⁴, 10⁵, 10⁶} — the million-station headline of
//!   the spatial construction path. MST growth is the ~O(n log n) case
//!   (Prim keys are plain edge costs, so candidate streams stay local);
//!   SPT drains streams deeper (keys are source distances, so
//!   low-distance streams must certify far candidates) and lands
//!   measurably superlinear though far below the dense quadratic — both
//!   are byte-identical to the dense reference (T13);
//! * the dense reference at n ∈ {10³, 4096} (above that the `O(n²)`
//!   matrix alone dominates every budget: 8 TB at n = 10⁶);
//! * resident substrate memory, printed as bytes/station for every size
//!   (`TreeSubstrate::memory_bytes`, which counts the SoA arrays, the
//!   rooted tree and the stored points — and the dense matrix when one
//!   is materialised).
//!
//! `WMCS_BENCH_SMOKE=1` shrinks the sweep (spatial n = 10⁴, dense
//! n = 10³) and the measurement time so CI can compile-and-run this
//! bench as a bit-rot gate (see `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Duration;
use wmcs_geom::{Point, PowerModel};
use wmcs_wireless::{Backend, SubstrateBuilder, TreeKind, WirelessNetwork};

fn smoke() -> bool {
    std::env::var_os("WMCS_BENCH_SMOKE").is_some()
}

/// Uniform stations in a square scaled with √n (constant density, the
/// regime the grid index is built for), lazy storage — no `O(n²)`
/// matrix ever exists on this path.
fn lazy_net(n: usize, seed: u64) -> WirelessNetwork {
    let side = (n as f64).sqrt() * 10.0;
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::xy(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    WirelessNetwork::euclidean_lazy(pts, PowerModel::free_space(), 0)
}

fn spatial_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_build/spatial");
    g.sample_size(10);
    let sizes: &[usize] = if smoke() {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    for &n in sizes {
        let net = lazy_net(n, 42);
        for (kind, tag) in [(TreeKind::Spt, "spt"), (TreeKind::Mst, "mst")] {
            let sub = SubstrateBuilder::new(&net)
                .tree(kind)
                .backend(Backend::Spatial)
                .build();
            eprintln!(
                "substrate_build/spatial {tag} n={n}: {} bytes resident, {:.1} bytes/station",
                sub.memory_bytes(),
                sub.memory_bytes() as f64 / n as f64
            );
            drop(sub);
            g.bench_with_input(BenchmarkId::new(tag, n), &n, |b, _| {
                b.iter(|| {
                    SubstrateBuilder::new(&net)
                        .tree(kind)
                        .backend(Backend::Spatial)
                        .build()
                })
            });
        }
    }
    g.finish();
}

fn dense_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_build/dense");
    g.sample_size(10);
    let sizes: &[usize] = if smoke() { &[1_000] } else { &[1_000, 4_096] };
    for &n in sizes {
        let net = lazy_net(n, 42);
        let sub = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .backend(Backend::Dense)
            .build();
        eprintln!(
            "substrate_build/dense n={n}: {} bytes resident, {:.1} bytes/station",
            sub.memory_bytes(),
            sub.memory_bytes() as f64 / n as f64
        );
        drop(sub);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                SubstrateBuilder::new(&net)
                    .tree(TreeKind::Spt)
                    .backend(Backend::Dense)
                    .build()
            })
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    let c = Criterion::default();
    if smoke() {
        c.measurement_time(Duration::from_millis(400))
            .warm_up_time(Duration::from_millis(100))
    } else {
        c.measurement_time(Duration::from_secs(10))
            .warm_up_time(Duration::from_secs(1))
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = spatial_build, dense_build
}
criterion_main!(benches);
