//! T8 — scaling/timing of every mechanism (criterion).
//!
//! Run with `cargo bench`. Sizes are chosen so a full run stays in the
//! minutes range; the polynomial mechanisms scale to hundreds of stations,
//! the exact MEMT reference is exponential by design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wmcs_bench::harness::{random_euclidean, random_line, random_utilities};
use wmcs_game::Mechanism;
use wmcs_mechanisms::{
    EuclideanSteinerMechanism, UniversalMcMechanism, UniversalShapleyMechanism,
    WirelessMulticastMechanism,
};
use wmcs_wireless::{memt_exact, LineSolver, SubstrateBuilder, TreeKind};

fn universal_shapley(c: &mut Criterion) {
    let mut g = c.benchmark_group("universal_shapley_mechanism");
    for &n in &[50usize, 100, 200] {
        let net = random_euclidean(7, n, 2.0, 40.0);
        let mech = UniversalShapleyMechanism::new(
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Mst)
                .build_universal(),
        );
        let u = random_utilities(11, n - 1, 300.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.run(&u))
        });
    }
    g.finish();
}

fn universal_mc(c: &mut Criterion) {
    let mut g = c.benchmark_group("universal_mc_mechanism");
    for &n in &[50usize, 100, 200] {
        let net = random_euclidean(8, n, 2.0, 40.0);
        let mech = UniversalMcMechanism::new(
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Spt)
                .build_universal(),
        );
        let u = random_utilities(12, n - 1, 300.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.run(&u))
        });
    }
    g.finish();
}

fn jv_steiner_mechanism(c: &mut Criterion) {
    let mut g = c.benchmark_group("jv_steiner_mechanism");
    for &n in &[20usize, 40, 80] {
        let net = random_euclidean(9, n, 2.0, 20.0);
        let mech = EuclideanSteinerMechanism::new(&net);
        let u = random_utilities(13, n - 1, 100.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.run(&u))
        });
    }
    g.finish();
}

fn wireless_mechanism(c: &mut Criterion) {
    let mut g = c.benchmark_group("wireless_multicast_mechanism");
    g.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let net = random_euclidean(10, n, 2.0, 8.0);
        let mech = WirelessMulticastMechanism::new(&net);
        let u = random_utilities(14, n - 1, 60.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.run(&u))
        });
    }
    g.finish();
}

fn exact_memt(c: &mut Criterion) {
    let mut g = c.benchmark_group("memt_exact");
    g.sample_size(10);
    for &n in &[10usize, 13, 16] {
        let net = random_euclidean(15, n, 2.0, 10.0);
        let targets: Vec<usize> = (1..n).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| memt_exact(&net, &targets))
        });
    }
    g.finish();
}

fn line_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_chain_solver");
    for &n in &[100usize, 400] {
        let net = random_line(16, n, 2.0, 200.0);
        let solver = LineSolver::new(&net);
        let targets: Vec<usize> = (0..n).filter(|&x| x != net.source()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solver.solve(&targets))
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = universal_shapley, universal_mc, jv_steiner_mechanism,
              wireless_mechanism, exact_memt, line_solver
}
criterion_main!(benches);
