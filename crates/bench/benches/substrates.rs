//! Substrate-level criterion benches: graph algorithms, the JV share
//! computation vs the GW moat ablation, the NWST spider oracle and the
//! simplex core check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wmcs_bench::harness::{random_euclidean, random_nwst};
use wmcs_game::{core_is_empty, ExplicitGame};
use wmcs_graph::{dijkstra, jv_steiner_shares, kmb_steiner, moat_growing, prim_mst, JvSharing};
use wmcs_nwst::{nwst_approximate, NwstConfig};

fn graph_basics(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_substrate");
    for &n in &[100usize, 300] {
        let net = random_euclidean(3, n, 2.0, 50.0);
        g.bench_with_input(BenchmarkId::new("prim_mst", n), &n, |b, _| {
            b.iter(|| prim_mst(net.costs()))
        });
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| dijkstra(net.costs(), 0))
        });
    }
    g.finish();
}

fn steiner_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("steiner_builders");
    g.sample_size(20);
    for &n in &[40usize, 80] {
        let net = random_euclidean(4, n, 2.0, 30.0);
        let terminals: Vec<usize> = (0..n).step_by(4).collect();
        g.bench_with_input(BenchmarkId::new("kmb", n), &n, |b, _| {
            b.iter(|| kmb_steiner(net.costs(), &terminals))
        });
        let receivers: Vec<usize> = terminals.iter().copied().filter(|&t| t != 0).collect();
        g.bench_with_input(BenchmarkId::new("jv_shares", n), &n, |b, _| {
            b.iter(|| jv_steiner_shares(net.costs(), 0, &receivers, JvSharing::Equal, None))
        });
        g.bench_with_input(BenchmarkId::new("gw_moat(ablation)", n), &n, |b, _| {
            b.iter(|| moat_growing(net.costs(), 0, &receivers))
        });
    }
    g.finish();
}

fn nwst_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("nwst_greedy");
    g.sample_size(20);
    for &(n, k) in &[(20usize, 5usize), (40, 8)] {
        let (graph, terminals) = random_nwst(5, n, k);
        g.bench_with_input(
            BenchmarkId::new("branch_spiders", format!("{n}x{k}")),
            &n,
            |b, _| b.iter(|| nwst_approximate(&graph, &terminals, &NwstConfig::default())),
        );
        let kr = NwstConfig {
            min_spider_groups: 2,
            branch_legs: false,
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("klein_ravi(ablation)", format!("{n}x{k}")),
            &n,
            |b, _| b.iter(|| nwst_approximate(&graph, &terminals, &kr)),
        );
    }
    g.finish();
}

fn core_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_feasibility_lp");
    g.sample_size(10);
    for &players in &[8usize, 10] {
        // A submodular max-game: core non-empty; the LP still sweeps all
        // 2^p coalition rows.
        let game = ExplicitGame::from_fn(players, |m| {
            (0..players)
                .filter(|i| m & (1 << i) != 0)
                .map(|i| 1.0 + i as f64)
                .fold(0.0, f64::max)
        });
        g.bench_with_input(BenchmarkId::from_parameter(players), &players, |b, _| {
            b.iter(|| core_is_empty(&game))
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = graph_basics, steiner_builders, nwst_oracle, core_lp
}
criterion_main!(benches);
