//! Uniform grid-bucket spatial index for near-neighbour candidate
//! generation.
//!
//! The O(n log n) universal-tree construction path (`wmcs-graph`'s
//! spatial Prim/Dijkstra) replaces the dense "relax all n − 1
//! neighbours" loop with *candidate streams*: each station asks for its
//! neighbours in ascending distance order and stops early. A
//! [`GridIndex`] is the geometry half of that contract — it buckets the
//! stations into a uniform grid (~[`TARGET_PER_CELL`] points per cell)
//! and exposes **expanding shells**: the cells at Chebyshev ring `r`
//! around a station's cell, together with an exact lower bound
//! ([`GridIndex::shell_min_dist`]) on the distance to *every* point in
//! rings `≥ r`. A consumer that has seen rings `< r` and holds a
//! candidate closer than that bound knows no unseen point can beat it.
//!
//! Determinism contract: for a fixed point set the index layout, the
//! ring enumeration order (lexicographic cell offsets, ascending point
//! ids within a cell) and every bound are pure functions of the input —
//! nothing here can perturb the byte-identity gates the tree builders
//! are held to.
//!
//! The index copies the coordinates into one flattened point-major
//! array (struct-of-arrays, no per-point heap indirection) so the hot
//! shell walks never chase [`Point`]'s inner `Vec`.

use crate::point::Point;

/// Average number of points a grid cell is sized for. Two keeps the
/// candidate heaps short while the cell count (≈ n / 2) stays well
/// below the point count's memory footprint.
pub const TARGET_PER_CELL: f64 = 2.0;

/// A uniform grid-bucket index over a fixed set of points in `R^d`.
///
/// Construction is `O(n)` (two counting passes); the grid has the same
/// number of cells per axis with per-axis cell widths fitted to the
/// bounding box, so skewed boxes (e.g. the d = 1 line layouts) still
/// bucket evenly. Degenerate axes (zero extent, duplicate points) fall
/// back to a single cell slab on that axis.
#[derive(Debug, Clone)]
pub struct GridIndex {
    dim: usize,
    /// Cells per axis (identical on every axis), ≥ 1.
    res: usize,
    /// Bounding-box minimum per axis.
    lo: Vec<f64>,
    /// Cell width per axis (strictly positive; 1.0 on degenerate axes).
    cell_w: Vec<f64>,
    /// Flattened point-major coordinates: `coords[i * dim + a]`.
    coords: Vec<f64>,
    /// Per-axis cell index of each point: `cell_idx[i * dim + a]`.
    cell_idx: Vec<u32>,
    /// CSR starts over linear cell ids; length `res^dim + 1`.
    starts: Vec<u32>,
    /// Point ids grouped by cell, ascending within each cell.
    items: Vec<u32>,
}

impl GridIndex {
    /// Build the index over `points` (all of one dimension, at least one
    /// point, at most `u32::MAX` points).
    pub fn new(points: &[Point]) -> Self {
        let n = points.len();
        assert!(n > 0, "grid index over an empty point set");
        u32::try_from(n).expect("grid index point count fits in u32");
        let dim = points[0].dim();
        let mut coords = Vec::with_capacity(n * dim);
        for p in points {
            assert_eq!(p.dim(), dim, "grid index over mixed-dimension points");
            coords.extend_from_slice(p.coords());
        }

        // Cells per axis: aim for TARGET_PER_CELL points per cell.
        let res = ((n as f64 / TARGET_PER_CELL).powf(1.0 / dim as f64)).floor() as usize;
        let res = res.max(1);

        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for i in 0..n {
            for a in 0..dim {
                let x = coords[i * dim + a];
                assert!(x.is_finite(), "grid index requires finite coordinates");
                lo[a] = lo[a].min(x);
                hi[a] = hi[a].max(x);
            }
        }
        let cell_w: Vec<f64> = (0..dim)
            .map(|a| {
                let extent = hi[a] - lo[a];
                if extent > 0.0 {
                    extent / res as f64
                } else {
                    1.0
                }
            })
            .collect();

        // Per-point per-axis cell indices, clamped so points on the far
        // boundary land in the last cell.
        let mut cell_idx = vec![0u32; n * dim];
        for i in 0..n {
            for a in 0..dim {
                let x = coords[i * dim + a];
                let raw = ((x - lo[a]) / cell_w[a]).floor();
                let idx = if raw <= 0.0 {
                    0
                } else {
                    (raw as usize).min(res - 1)
                };
                cell_idx[i * dim + a] =
                    u32::try_from(idx).expect("cell index fits in u32 (res <= n)");
            }
        }

        // CSR bucket fill (counting sort over linear cell ids); iterating
        // points in ascending id keeps each bucket's ids ascending.
        let n_cells = res.pow(u32::try_from(dim).expect("dimension fits in u32"));
        let linear = |i: usize, cell_idx: &[u32]| -> usize {
            let mut c = 0usize;
            for a in 0..dim {
                c = c * res + cell_idx[i * dim + a] as usize;
            }
            c
        };
        let mut starts = vec![0u32; n_cells + 1];
        for i in 0..n {
            starts[linear(i, &cell_idx) + 1] += 1;
        }
        for c in 0..n_cells {
            starts[c + 1] += starts[c];
        }
        let mut cursor: Vec<u32> = starts.clone();
        let mut items = vec![0u32; n];
        for i in 0..n {
            let c = linear(i, &cell_idx);
            items[cursor[c] as usize] = u32::try_from(i).expect("point id fits in u32");
            cursor[c] += 1;
        }

        Self {
            dim,
            res,
            lo,
            cell_w,
            coords,
            cell_idx,
            starts,
            items,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// True when the index holds no points (unreachable via [`GridIndex::new`],
    /// which rejects empty inputs, but part of the `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Cells per axis.
    pub fn resolution(&self) -> usize {
        self.res
    }

    /// Coordinate `a` of point `i` (from the flattened copy).
    pub fn coord(&self, i: usize, a: usize) -> f64 {
        self.coords[i * self.dim + a]
    }

    /// The point ids bucketed in the linear cell `c`, ascending.
    pub fn cell_points(&self, c: usize) -> &[u32] {
        &self.items[self.starts[c] as usize..self.starts[c + 1] as usize]
    }

    /// The last non-empty shell radius around point `i`'s cell: rings
    /// beyond this contain no cells at all.
    pub fn last_shell(&self, i: usize) -> usize {
        (0..self.dim)
            .map(|a| {
                let idx = self.cell_idx[i * self.dim + a] as usize;
                idx.max(self.res - 1 - idx)
            })
            .max()
            .expect("points have dimension >= 1")
    }

    /// Lower bound on the distance from point `i` to any point bucketed
    /// in a cell of Chebyshev ring `≥ r` around `i`'s cell (0 for
    /// `r = 0`). Monotone non-decreasing in `r`: a candidate stream that
    /// has expanded rings `< r` and holds a candidate strictly closer
    /// than this bound can emit it — no unexpanded cell can beat it.
    pub fn shell_min_dist(&self, i: usize, r: usize) -> f64 {
        if r == 0 {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for a in 0..self.dim {
            let idx = self.cell_idx[i * self.dim + a] as usize;
            let x = self.coords[i * self.dim + a];
            // Offset within the cell along axis a, in [0, w].
            let frac = x - (self.lo[a] + idx as f64 * self.cell_w[a]);
            // Nearest face of a cell r cells to the right / to the left.
            let right = r as f64 * self.cell_w[a] - frac;
            let left = (r - 1) as f64 * self.cell_w[a] + frac;
            best = best.min(right.min(left));
        }
        best.max(0.0)
    }

    /// Visit every point bucketed in the cells of Chebyshev ring exactly
    /// `r` around point `i`'s cell (ring 0 is `i`'s own cell; `i` itself
    /// is **included** — callers filter). Cells are visited in
    /// lexicographic offset order and each cell's ids ascend, so the
    /// visit order is a pure function of the point set.
    pub fn for_shell(&self, i: usize, r: usize, mut visit: impl FnMut(u32)) {
        let center: Vec<isize> = (0..self.dim)
            .map(|a| self.cell_idx[i * self.dim + a] as isize)
            .collect();
        let mut offset = vec![0isize; self.dim];
        self.shell_rec(&center, r as isize, 0, false, &mut offset, &mut visit);
    }

    /// Recursive shell walk: axis by axis, enumerating offsets in
    /// `[-r, r]`; once the last axis is reached without any `|off| = r`
    /// axis yet, only the two extreme offsets are taken, so the walk
    /// touches the ring's surface cells only (O(surface), not O(volume)).
    fn shell_rec(
        &self,
        center: &[isize],
        r: isize,
        axis: usize,
        have_extreme: bool,
        offset: &mut Vec<isize>,
        visit: &mut impl FnMut(u32),
    ) {
        if axis == self.dim {
            // All axes chosen; clip was done per axis.
            let mut c = 0usize;
            for a in 0..self.dim {
                c = c * self.res + (center[a] + offset[a]) as usize;
            }
            for &p in self.cell_points(c) {
                visit(p);
            }
            return;
        }
        let last_axis = axis + 1 == self.dim;
        let take = |off: isize| {
            let idx = center[axis] + off;
            idx >= 0 && idx < self.res as isize
        };
        if last_axis && !have_extreme {
            // Must realise the ring radius on this axis.
            if r == 0 {
                offset[axis] = 0;
                if take(0) {
                    self.shell_rec(center, r, axis + 1, true, offset, visit);
                }
            } else {
                for off in [-r, r] {
                    if take(off) {
                        offset[axis] = off;
                        self.shell_rec(center, r, axis + 1, true, offset, visit);
                    }
                }
            }
        } else {
            for off in -r..=r {
                if take(off) {
                    offset[axis] = off;
                    self.shell_rec(
                        center,
                        r,
                        axis + 1,
                        have_extreme || off.abs() == r,
                        offset,
                        visit,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_2d(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::xy(x, y)).collect()
    }

    /// Brute-force shell membership: Chebyshev cell distance exactly r.
    fn shell_brute(idx: &GridIndex, i: usize, r: usize) -> Vec<u32> {
        let d = idx.dim();
        let mut out = Vec::new();
        for j in 0..idx.len() {
            let cheb = (0..d)
                .map(|a| {
                    let ci = idx.cell_idx[i * d + a] as isize;
                    let cj = idx.cell_idx[j * d + a] as isize;
                    (ci - cj).abs()
                })
                .max()
                .expect("dim >= 1");
            if cheb == r as isize {
                out.push(u32::try_from(j).expect("test sizes fit"));
            }
        }
        out
    }

    fn deterministic_points(seed: u64, n: usize, dim: usize) -> Vec<Point> {
        // SplitMix-style generator, no external RNG needed here.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 * 10.0
        };
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| next()).collect()))
            .collect()
    }

    #[test]
    fn every_point_is_bucketed_exactly_once() {
        for dim in [1usize, 2, 3] {
            let pts = deterministic_points(7 + dim as u64, 100, dim);
            let idx = GridIndex::new(&pts);
            let mut seen = vec![0usize; pts.len()];
            for c in 0..idx.res.pow(u32::try_from(dim).expect("small")) {
                for &p in idx.cell_points(c) {
                    seen[p as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "d = {dim}");
        }
    }

    #[test]
    fn shells_partition_the_point_set() {
        for dim in [1usize, 2, 3] {
            let pts = deterministic_points(42, 80, dim);
            let idx = GridIndex::new(&pts);
            for i in [0usize, 13, 79] {
                let mut seen: Vec<u32> = Vec::new();
                for r in 0..=idx.last_shell(i) {
                    let mut ring = Vec::new();
                    idx.for_shell(i, r, |p| ring.push(p));
                    let mut brute = shell_brute(&idx, i, r);
                    let mut ring_sorted = ring.clone();
                    ring_sorted.sort_unstable();
                    brute.sort_unstable();
                    assert_eq!(ring_sorted, brute, "d = {dim}, i = {i}, r = {r}");
                    seen.extend(ring);
                }
                seen.sort_unstable();
                let all: Vec<u32> = (0..pts.len())
                    .map(|j| u32::try_from(j).expect("test sizes fit"))
                    .collect();
                assert_eq!(seen, all, "d = {dim}, i = {i}");
            }
        }
    }

    #[test]
    fn shell_min_dist_is_a_valid_monotone_lower_bound() {
        for dim in [1usize, 2, 3] {
            let pts = deterministic_points(99, 120, dim);
            let idx = GridIndex::new(&pts);
            for i in [0usize, 60, 119] {
                let mut prev = 0.0f64;
                for r in 0..=idx.last_shell(i) {
                    let bound = idx.shell_min_dist(i, r);
                    assert!(bound >= prev - 1e-15, "bound must be monotone in r");
                    prev = bound;
                    idx.for_shell(i, r, |p| {
                        let d = pts[i].dist(&pts[p as usize]);
                        assert!(
                            d >= bound - 1e-12,
                            "d = {dim}, i = {i}, r = {r}: point {p} at {d} < bound {bound}"
                        );
                    });
                }
            }
        }
    }

    #[test]
    fn boundary_points_land_in_edge_cells() {
        // Points exactly on the bounding-box corners and faces.
        let pts = pts_2d(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 10.0),
            (10.0, 10.0),
            (5.0, 10.0),
            (10.0, 5.0),
            (2.5, 2.5),
            (7.5, 7.5),
        ]);
        let idx = GridIndex::new(&pts);
        let r = idx.resolution();
        for i in 0..pts.len() {
            for a in 0..2 {
                let cell = idx.cell_idx[i * 2 + a] as usize;
                assert!(cell < r, "boundary point {i} axis {a} out of range");
            }
        }
        // The far corner must be clamped into the last cell, not res.
        assert_eq!(idx.cell_idx[3 * 2] as usize, r - 1);
        assert_eq!(idx.cell_idx[3 * 2 + 1] as usize, r - 1);
    }

    #[test]
    fn duplicate_points_share_a_cell_and_bound_zero() {
        let pts = pts_2d(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0), (4.0, 4.0), (9.0, 2.0)]);
        let idx = GridIndex::new(&pts);
        let mut ring0 = Vec::new();
        idx.for_shell(0, 0, |p| ring0.push(p));
        assert!(ring0.contains(&0) && ring0.contains(&1) && ring0.contains(&2));
        assert_eq!(idx.shell_min_dist(0, 0), 0.0);
    }

    #[test]
    fn degenerate_axis_collapses_to_one_slab() {
        // All points share y: the y axis has zero extent.
        let pts = pts_2d(&[(0.0, 3.0), (2.0, 3.0), (5.0, 3.0), (9.0, 3.0)]);
        let idx = GridIndex::new(&pts);
        for i in 0..pts.len() {
            assert_eq!(idx.cell_idx[i * 2 + 1], 0);
        }
        // Shells still cover everything.
        let mut seen = Vec::new();
        for r in 0..=idx.last_shell(0) {
            idx.for_shell(0, r, |p| seen.push(p));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_point_and_single_cell_work() {
        let idx = GridIndex::new(&[Point::xyz(1.0, 2.0, 3.0)]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.last_shell(0), 0);
        let mut seen = Vec::new();
        idx.for_shell(0, 0, |p| seen.push(p));
        assert_eq!(seen, vec![0]);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_input_rejected() {
        let _ = GridIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "mixed-dimension")]
    fn mixed_dimensions_rejected() {
        let _ = GridIndex::new(&[Point::on_line(0.0), Point::xy(1.0, 1.0)]);
    }
}
