//! Deterministic churn traces: arrival/departure/rebid event streams for
//! live multicast sessions.
//!
//! A [`ChurnTrace`] is a sequence of event *batches* over a fixed player
//! universe `0..n_players`. The live-session engines in `wmcs-wireless`
//! consume one batch at a time and re-price the session between batches;
//! the generators here are the churn analogue of [`crate::Scenario`]'s
//! point generators — fully reproducible per seed, so a warm session and
//! a cold rebuild can be compared byte for byte on the same stream.
//!
//! Events use **total semantics** (defined by the session consumers, see
//! `wmcs-wireless::session`): a `Join` of a player already in the session
//! acts as a `Rebid`, while `Leave`/`Rebid` of an absent player are
//! no-ops. The generator therefore never has to know which players the
//! mechanism itself evicted — its subscription bookkeeping may drift from
//! the session's served set without producing invalid traces.

use crate::scenario::Scenario;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One churn event over the player universe of a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// Player `player` enters the session reporting `utility` (acts as a
    /// rebid when the player is already present).
    Join {
        /// Joining player index.
        player: usize,
        /// Reported utility on entry.
        utility: f64,
    },
    /// Player `player` leaves the session (no-op when absent).
    Leave {
        /// Leaving player index.
        player: usize,
    },
    /// Player `player` replaces its reported utility (no-op when absent).
    Rebid {
        /// Rebidding player index.
        player: usize,
        /// The new reported utility.
        utility: f64,
    },
}

impl ChurnEvent {
    /// The player the event concerns.
    pub fn player(&self) -> usize {
        match *self {
            ChurnEvent::Join { player, .. }
            | ChurnEvent::Leave { player }
            | ChurnEvent::Rebid { player, .. } => player,
        }
    }
}

/// A reproducible sequence of churn-event batches.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrace {
    /// Event batches, applied atomically: the session re-prices once per
    /// batch, after all of the batch's events.
    pub batches: Vec<Vec<ChurnEvent>>,
}

impl ChurnTrace {
    /// Total number of events across all batches.
    pub fn n_events(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// A seedable arrival/departure process that generates [`ChurnTrace`]s.
///
/// The process keeps its own subscription view: each event is an arrival
/// (`Join` of an absent player) with probability [`ChurnProcess::join_bias`],
/// otherwise a departure or a rebid of a present player (50/50). When
/// nobody is present the event is forced to an arrival; when everybody
/// is, to a departure/rebid. Reported utilities are uniform in
/// `[0, utility_hi)`. Generation is deterministic per
/// [`ChurnProcess::seed`], mirroring the [`Scenario`] point generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    /// Size of the player universe (players are `0..n_players`).
    pub n_players: usize,
    /// Number of event batches after the warm-up batch.
    pub batches: usize,
    /// Events per batch.
    pub events_per_batch: usize,
    /// Number of distinct players joined by the warm-up batch (batch 0);
    /// 0 suppresses the warm-up batch entirely.
    pub warmup: usize,
    /// Probability that an event is an arrival (vs departure/rebid).
    pub join_bias: f64,
    /// Reported utilities are uniform in `[0, utility_hi)`.
    pub utility_hi: f64,
    /// Generation seed.
    pub seed: u64,
}

impl ChurnProcess {
    /// A balanced process (`join_bias = 0.5`, warm-up joins half the
    /// universe) with the given shape.
    pub fn new(
        n_players: usize,
        batches: usize,
        events_per_batch: usize,
        utility_hi: f64,
        seed: u64,
    ) -> Self {
        assert!(n_players >= 1, "a churn process needs at least one player");
        assert!(events_per_batch >= 1, "batches must carry events");
        Self {
            n_players,
            batches,
            events_per_batch,
            warmup: n_players / 2,
            join_bias: 0.5,
            utility_hi,
            seed,
        }
    }

    /// Light churn for a scenario's player universe: a handful of events
    /// per batch regardless of `n` (the "stable session" regime).
    pub fn light(sc: &Scenario, batches: usize, utility_hi: f64, seed: u64) -> Self {
        Self::new(
            sc.n - 1,
            batches,
            ((sc.n - 1) / 128).max(2),
            utility_hi,
            seed,
        )
    }

    /// Heavy churn for a scenario's player universe: a constant fraction
    /// of the universe churns every batch (the "flash crowd" regime).
    pub fn heavy(sc: &Scenario, batches: usize, utility_hi: f64, seed: u64) -> Self {
        Self::new(
            sc.n - 1,
            batches,
            ((sc.n - 1) / 16).max(8),
            utility_hi,
            seed,
        )
    }

    /// Generate the trace. Deterministic per `self` (including the seed);
    /// two calls return equal traces.
    pub fn generate(&self) -> ChurnTrace {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.n_players;
        let mut present = vec![false; n];
        // Members as a vector for O(1) random choice; `slot[p]` is p's
        // index in it (usize::MAX when absent).
        let mut members: Vec<usize> = Vec::with_capacity(n);
        let mut slot = vec![usize::MAX; n];
        let mut batches = Vec::with_capacity(self.batches + 1);

        let join = |p: usize,
                    rng: &mut SmallRng,
                    present: &mut [bool],
                    members: &mut Vec<usize>,
                    slot: &mut [usize]| {
            present[p] = true;
            slot[p] = members.len();
            members.push(p);
            ChurnEvent::Join {
                player: p,
                utility: rng.gen_range(0.0..self.utility_hi),
            }
        };

        if self.warmup > 0 {
            let mut batch = Vec::with_capacity(self.warmup.min(n));
            while members.len() < self.warmup.min(n) {
                let p = rng.gen_range(0..n);
                if !present[p] {
                    batch.push(join(p, &mut rng, &mut present, &mut members, &mut slot));
                }
            }
            batches.push(batch);
        }

        for _ in 0..self.batches {
            let mut batch = Vec::with_capacity(self.events_per_batch);
            for _ in 0..self.events_per_batch {
                let arrival = members.is_empty()
                    || (members.len() < n && rng.gen_range(0.0..1.0) < self.join_bias);
                if arrival {
                    let p = loop {
                        let p = rng.gen_range(0..n);
                        if !present[p] {
                            break p;
                        }
                    };
                    batch.push(join(p, &mut rng, &mut present, &mut members, &mut slot));
                } else {
                    let p = members[rng.gen_range(0..members.len())];
                    if rng.gen_bool(0.5) {
                        // Departure: swap-remove from the member list.
                        let i = slot[p];
                        members.swap_remove(i);
                        if let Some(&moved) = members.get(i) {
                            slot[moved] = i;
                        }
                        slot[p] = usize::MAX;
                        present[p] = false;
                        batch.push(ChurnEvent::Leave { player: p });
                    } else {
                        batch.push(ChurnEvent::Rebid {
                            player: p,
                            utility: rng.gen_range(0.0..self.utility_hi),
                        });
                    }
                }
            }
            batches.push(batch);
        }
        ChurnTrace { batches }
    }
}

impl ChurnTrace {
    /// The trace with every event's player id mapped through `f` —
    /// how a group-local trace (players `0..m`) is lifted onto the
    /// global universe via the group's member list.
    pub fn map_players(&self, mut f: impl FnMut(usize) -> usize) -> ChurnTrace {
        let batches = self
            .batches
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|ev| match *ev {
                        ChurnEvent::Join { player, utility } => ChurnEvent::Join {
                            player: f(player),
                            utility,
                        },
                        ChurnEvent::Leave { player } => ChurnEvent::Leave { player: f(player) },
                        ChurnEvent::Rebid { player, utility } => ChurnEvent::Rebid {
                            player: f(player),
                            utility,
                        },
                    })
                    .collect()
            })
            .collect();
        ChurnTrace { batches }
    }
}

/// One multicast group's slice of a [`MultiGroupTrace`]: its (overlapping)
/// member universe, its churn regime, and its event stream in **global**
/// player ids.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupChurn {
    /// Global player ids this group draws receivers from, ascending.
    /// Groups overlap: members are sampled independently per group.
    pub members: Vec<usize>,
    /// Heavy churn (a constant fraction of the group per batch) vs light
    /// (a handful of events per batch).
    pub heavy: bool,
    /// The group's event batches (global player ids; all groups have the
    /// same batch count, so batch `b` across groups is one service step).
    pub trace: ChurnTrace,
}

/// A deterministic multi-group churn workload: `G` concurrent groups
/// over one shared player universe, each with its own member set, churn
/// rate and event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiGroupTrace {
    /// Size of the shared player universe.
    pub n_players: usize,
    /// Per-group traces, in group-id order.
    pub groups: Vec<GroupChurn>,
}

impl MultiGroupTrace {
    /// Total number of events across all groups and batches.
    pub fn n_events(&self) -> usize {
        self.groups.iter().map(|g| g.trace.n_events()).sum()
    }

    /// Batches per group (identical across groups, including the
    /// warm-up batch).
    pub fn n_batches(&self) -> usize {
        self.groups.first().map_or(0, |g| g.trace.batches.len())
    }

    /// The trace flattened into one interleaved `(group, event)` stream —
    /// the input shape of the streaming ingestion layer
    /// (`wmcs-wireless::stream`).
    ///
    /// Within each batch round, events are taken **round-robin across
    /// groups** (position 0 of every group in group order, then position
    /// 1, …), so concurrent groups genuinely contend instead of arriving
    /// one group at a time. The stream preserves each group's own event
    /// order, hence replaying the per-group subsequences batch-wise is
    /// equivalent to replaying the original trace — and the interleaving
    /// is a pure function of the trace, fully deterministic.
    pub fn interleaved(&self) -> Vec<(usize, ChurnEvent)> {
        let mut stream = Vec::with_capacity(self.n_events());
        for b in 0..self.n_batches() {
            let widest = self
                .groups
                .iter()
                .map(|g| g.trace.batches[b].len())
                .max()
                .unwrap_or(0);
            for i in 0..widest {
                for (gi, g) in self.groups.iter().enumerate() {
                    if let Some(&ev) = g.trace.batches[b].get(i) {
                        stream.push((gi, ev));
                    }
                }
            }
        }
        stream
    }
}

/// Seedable generator of [`MultiGroupTrace`]s — the churn analogue of the
/// scenario matrix's new group-count axis.
///
/// Group sizes follow a Zipf law over the group rank (`size_g ∝
/// n_players / g^s`, clamped to `[2, n_players]`): a few groups span most
/// of the universe and a long tail stays small, the standard model for
/// concurrent multicast group popularity. Member sets are sampled
/// independently per group, so they **overlap** — the regime the shared
/// substrate exists for. A [`MultiGroupProcess::heavy_fraction`] of the
/// groups churn heavily (mirroring [`ChurnProcess::heavy`]); the rest
/// churn lightly. Generation is deterministic per seed: every group's
/// members and trace derive from `seed` and the group id only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiGroupProcess {
    /// Size of the shared player universe.
    pub n_players: usize,
    /// Number of concurrent groups `G`.
    pub groups: usize,
    /// Churn batches per group (after each group's warm-up batch).
    pub batches: usize,
    /// Zipf exponent `s` for the group-size law.
    pub zipf_exponent: f64,
    /// Fraction of groups (by count) given the heavy churn regime.
    pub heavy_fraction: f64,
    /// Reported utilities are uniform in `[0, utility_hi)`.
    pub utility_hi: f64,
    /// Generation seed.
    pub seed: u64,
}

impl MultiGroupProcess {
    /// A canonical process: Zipf exponent 1, a quarter of the groups
    /// heavy.
    pub fn new(
        n_players: usize,
        groups: usize,
        batches: usize,
        utility_hi: f64,
        seed: u64,
    ) -> Self {
        assert!(n_players >= 2, "groups need at least two players to draw");
        assert!(groups >= 1, "a multi-group trace needs at least one group");
        Self {
            n_players,
            groups,
            batches,
            zipf_exponent: 1.0,
            heavy_fraction: 0.25,
            utility_hi,
            seed,
        }
    }

    /// The Zipf group size at `rank` (1-based), clamped to
    /// `[2, n_players]`.
    pub fn group_size(&self, rank: usize) -> usize {
        let raw = (self.n_players as f64 / (rank as f64).powf(self.zipf_exponent)).round();
        (raw as usize).clamp(2, self.n_players)
    }

    /// Generate the multi-group trace. Deterministic per `self`.
    pub fn generate(&self) -> MultiGroupTrace {
        let groups = (0..self.groups)
            .map(|g| {
                // Per-group rng stream: a SplitMix64 round over (seed, g)
                // so group g's draw never depends on the other groups.
                let mut z = self.seed ^ (g as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let group_seed = z ^ (z >> 31);
                let mut rng = SmallRng::seed_from_u64(group_seed);

                let size = self.group_size(g + 1);
                // Partial Fisher–Yates: the first `size` slots are a
                // uniform sample without replacement.
                let mut pool: Vec<usize> = (0..self.n_players).collect();
                for i in 0..size {
                    let j = rng.gen_range(i..self.n_players);
                    pool.swap(i, j);
                }
                let mut members = pool[..size].to_vec();
                members.sort_unstable();

                let heavy = rng.gen_range(0.0..1.0) < self.heavy_fraction;
                let events_per_batch = if heavy {
                    (size / 16).max(8)
                } else {
                    (size / 128).max(2)
                };
                let local = ChurnProcess::new(
                    size,
                    self.batches,
                    events_per_batch,
                    self.utility_hi,
                    group_seed ^ 0x7ace,
                );
                let trace = local.generate().map_players(|p| members[p]);
                GroupChurn {
                    members,
                    heavy,
                    trace,
                }
            })
            .collect();
        MultiGroupTrace {
            n_players: self.n_players,
            groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LayoutFamily;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = ChurnProcess::new(40, 8, 6, 5.0, 17);
        assert_eq!(p.generate(), p.generate());
        let q = ChurnProcess { seed: 18, ..p };
        assert_ne!(p.generate(), q.generate());
    }

    #[test]
    fn traces_have_the_requested_shape() {
        let p = ChurnProcess::new(30, 5, 4, 1.0, 3);
        let t = p.generate();
        assert_eq!(t.batches.len(), 6, "warm-up batch + 5 churn batches");
        assert_eq!(t.batches[0].len(), 15, "warm-up joins half the universe");
        for b in &t.batches[1..] {
            assert_eq!(b.len(), 4);
        }
        assert_eq!(t.n_events(), 15 + 20);

        let no_warmup = ChurnProcess { warmup: 0, ..p };
        assert_eq!(no_warmup.generate().batches.len(), 5);
    }

    #[test]
    fn events_are_well_formed_under_the_generator_bookkeeping() {
        // The generator's own subscription view is consistent: joins only
        // of absent players, leaves/rebids only of present ones, players
        // in range, utilities in [0, hi).
        let p = ChurnProcess::new(25, 30, 8, 7.5, 99);
        let mut present = [false; 25];
        for batch in &p.generate().batches {
            for ev in batch {
                assert!(ev.player() < 25);
                match *ev {
                    ChurnEvent::Join { player, utility } => {
                        assert!(!present[player], "join of a present player");
                        assert!((0.0..7.5).contains(&utility));
                        present[player] = true;
                    }
                    ChurnEvent::Leave { player } => {
                        assert!(present[player], "leave of an absent player");
                        present[player] = false;
                    }
                    ChurnEvent::Rebid { player, utility } => {
                        assert!(present[player], "rebid of an absent player");
                        assert!((0.0..7.5).contains(&utility));
                    }
                }
            }
        }
    }

    #[test]
    fn multi_group_generation_is_deterministic_and_zipf_shaped() {
        let p = MultiGroupProcess::new(200, 16, 5, 8.0, 7);
        let t = p.generate();
        assert_eq!(t, p.generate());
        assert_ne!(t, MultiGroupProcess { seed: 8, ..p }.generate());
        assert_eq!(t.groups.len(), 16);
        // Zipf sizes: non-increasing in rank, clamped below by 2.
        let sizes: Vec<usize> = (1..=16).map(|r| p.group_size(r)).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(sizes[0], 200);
        assert_eq!(p.group_size(100_000), 2);
        for (g, group) in t.groups.iter().enumerate() {
            assert_eq!(group.members.len(), p.group_size(g + 1));
            assert!(group.members.windows(2).all(|w| w[0] < w[1]));
            assert!(group.members.iter().all(|&m| m < 200));
        }
    }

    #[test]
    fn multi_group_members_overlap_and_events_stay_inside_members() {
        let p = MultiGroupProcess::new(50, 8, 6, 3.0, 21);
        let t = p.generate();
        // The two largest groups must overlap (sizes 50 and 25 out of 50).
        let a = &t.groups[0].members;
        let b = &t.groups[1].members;
        assert!(b.iter().any(|m| a.contains(m)), "groups must overlap");
        // Every event's player is a member of its group; all groups share
        // the batch count (warm-up + churn batches).
        for group in &t.groups {
            assert_eq!(group.trace.batches.len(), 7);
            for batch in &group.trace.batches {
                for ev in batch {
                    assert!(group.members.contains(&ev.player()));
                }
            }
        }
        assert_eq!(t.n_batches(), 7);
        assert_eq!(
            t.n_events(),
            t.groups.iter().map(|g| g.trace.n_events()).sum::<usize>()
        );
    }

    #[test]
    fn multi_group_heavy_fraction_controls_rates() {
        let all_heavy = MultiGroupProcess {
            heavy_fraction: 1.0,
            ..MultiGroupProcess::new(512, 4, 3, 1.0, 3)
        };
        for g in all_heavy.generate().groups {
            assert!(g.heavy);
            let size = g.members.len();
            assert_eq!(g.trace.batches[1].len(), (size / 16).max(8));
        }
        let all_light = MultiGroupProcess {
            heavy_fraction: 0.0,
            ..all_heavy
        };
        for g in all_light.generate().groups {
            assert!(!g.heavy);
            let size = g.members.len();
            assert_eq!(g.trace.batches[1].len(), (size / 128).max(2));
        }
    }

    #[test]
    fn interleaving_round_robins_groups_and_preserves_per_group_order() {
        let p = MultiGroupProcess::new(60, 5, 4, 2.0, 13);
        let t = p.generate();
        let stream = t.interleaved();
        assert_eq!(stream.len(), t.n_events());
        assert_eq!(stream, t.interleaved(), "interleaving is deterministic");
        // Per-group subsequences equal the flattened per-group traces.
        for (gi, g) in t.groups.iter().enumerate() {
            let sub: Vec<ChurnEvent> = stream
                .iter()
                .filter(|&&(sg, _)| sg == gi)
                .map(|&(_, ev)| ev)
                .collect();
            let flat: Vec<ChurnEvent> = g
                .trace
                .batches
                .iter()
                .flat_map(|b| b.iter().copied())
                .collect();
            assert_eq!(sub, flat, "group {gi} order must be preserved");
        }
        // The head of the stream is position 0 of every group in batch 0
        // (round-robin, not group-after-group).
        let head: Vec<usize> = stream[..t.groups.len()].iter().map(|&(g, _)| g).collect();
        assert_eq!(head, (0..t.groups.len()).collect::<Vec<_>>());
    }

    #[test]
    fn map_players_relabels_every_event_kind() {
        let t = ChurnTrace {
            batches: vec![vec![
                ChurnEvent::Join {
                    player: 0,
                    utility: 1.0,
                },
                ChurnEvent::Leave { player: 1 },
                ChurnEvent::Rebid {
                    player: 2,
                    utility: 2.0,
                },
            ]],
        };
        let mapped = t.map_players(|p| p + 10);
        let players: Vec<usize> = mapped.batches[0].iter().map(|e| e.player()).collect();
        assert_eq!(players, vec![10, 11, 12]);
    }

    #[test]
    fn scenario_rates_scale_with_n() {
        let small = Scenario::new(LayoutFamily::UniformBox, 64, 2, 2.0);
        let big = Scenario::new(LayoutFamily::UniformBox, 4096, 2, 2.0);
        assert_eq!(ChurnProcess::light(&small, 10, 1.0, 0).events_per_batch, 2);
        assert_eq!(ChurnProcess::light(&big, 10, 1.0, 0).events_per_batch, 31);
        assert_eq!(ChurnProcess::heavy(&small, 10, 1.0, 0).events_per_batch, 8);
        assert_eq!(ChurnProcess::heavy(&big, 10, 1.0, 0).events_per_batch, 255);
    }
}
