//! Scenario matrix: named layout families crossed with `(n, d, α)` grids.
//!
//! Every experiment table in `wmcs-bench` sweeps a list of [`Scenario`]s
//! instead of a hand-rolled loop over one layout. A scenario pins the
//! *spatial regime* (one of the [`InstanceKind`] families, with canonical
//! parameters derived from `n`), the station count, the ambient dimension
//! and the distance–power gradient `α`; crossing it with a seed yields a
//! fully reproducible [`InstanceConfig`].

use crate::gen::{InstanceConfig, InstanceKind};
use crate::point::Point;
use crate::power::PowerModel;
use serde::Serialize;

/// Canonical box side used by every scenario layout (the paper's tables
/// are scale-free: mechanisms compare ratios, not absolute powers).
pub const SCENARIO_SIDE: f64 = 10.0;

/// The spatial layout families of [`InstanceKind`], without their
/// numeric parameters — scenarios derive those canonically from `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LayoutFamily {
    /// Uniform in `[0, side]^d`.
    UniformBox,
    /// Uniform on a segment (`d = 1`).
    Line,
    /// Uniform-ball clusters around random centres.
    Clustered,
    /// Jittered integer grid (`d = 2`).
    Grid,
    /// Uniform on a circle (`d = 2`).
    Circle,
}

impl LayoutFamily {
    /// Every family, in registry order.
    pub const ALL: [LayoutFamily; 5] = [
        LayoutFamily::UniformBox,
        LayoutFamily::Line,
        LayoutFamily::Clustered,
        LayoutFamily::Grid,
        LayoutFamily::Circle,
    ];

    /// Short lowercase name used in table rows and scenario labels.
    pub fn name(self) -> &'static str {
        match self {
            LayoutFamily::UniformBox => "uniform",
            LayoutFamily::Line => "line",
            LayoutFamily::Clustered => "clustered",
            LayoutFamily::Grid => "grid",
            LayoutFamily::Circle => "circle",
        }
    }
}

/// One cell of the sweep matrix: a layout family at a given size,
/// dimension and attenuation exponent.
///
/// Dimensions are normalised at construction: `Line` forces `d = 1`,
/// `Grid` and `Circle` force `d = 2` (matching the generators in
/// [`crate::gen`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Scenario {
    /// Spatial layout family.
    pub family: LayoutFamily,
    /// Number of stations (including the source).
    pub n: usize,
    /// Ambient dimension.
    pub dim: usize,
    /// Distance–power gradient `α ≥ 1`.
    pub alpha: f64,
    /// Number of concurrent multicast groups `G` sharing the station
    /// universe — the multi-group service axis. Single-group experiments
    /// leave the default `1` (which keeps their labels, and therefore
    /// their per-cell seeds, unchanged).
    pub groups: usize,
}

impl Scenario {
    /// New scenario with the family's dimension constraint applied.
    pub fn new(family: LayoutFamily, n: usize, dim: usize, alpha: f64) -> Self {
        let dim = match family {
            LayoutFamily::Line => 1,
            LayoutFamily::Grid | LayoutFamily::Circle => 2,
            LayoutFamily::UniformBox | LayoutFamily::Clustered => dim.max(1),
        };
        assert!(n >= 2, "a scenario needs a source and at least one player");
        assert!(alpha >= 1.0, "the paper's model requires α ≥ 1");
        Self {
            family,
            n,
            dim,
            alpha,
            groups: 1,
        }
    }

    /// The scenario serving `groups` concurrent multicast groups over its
    /// station universe (the G axis of the service-layer experiments).
    pub fn with_groups(mut self, groups: usize) -> Self {
        assert!(groups >= 1, "a scenario serves at least one group");
        self.groups = groups;
        self
    }

    /// Full cartesian product `families × ns × dims × alphas` (each
    /// normalised via [`Scenario::new`], so e.g. `Line × d=3` collapses
    /// to `d = 1`). Duplicates after normalisation are dropped.
    pub fn matrix(
        families: &[LayoutFamily],
        ns: &[usize],
        dims: &[usize],
        alphas: &[f64],
    ) -> Vec<Scenario> {
        let mut out: Vec<Scenario> = Vec::new();
        for &family in families {
            for &n in ns {
                for &dim in dims {
                    for &alpha in alphas {
                        let sc = Scenario::new(family, n, dim, alpha);
                        if !out.contains(&sc) {
                            out.push(sc);
                        }
                    }
                }
            }
        }
        out
    }

    /// Stable human/machine label, e.g. `"clustered n=8 d=2 α=2"`. Used
    /// as the row key in tables and as part of the per-cell seed
    /// derivation, so changing it re-seeds the sweep.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} n={} d={} α={}",
            self.family.name(),
            self.n,
            self.dim,
            self.alpha
        );
        if self.groups > 1 {
            label.push_str(&format!(" G={}", self.groups));
        }
        label
    }

    /// The canonical [`InstanceKind`] for this scenario's family, with
    /// parameters derived from `n` so density stays comparable across
    /// layouts: everything lives in (a subset of) `[0, 10]^d`.
    pub fn kind(&self) -> InstanceKind {
        match self.family {
            LayoutFamily::UniformBox => InstanceKind::UniformBox {
                side: SCENARIO_SIDE,
            },
            LayoutFamily::Line => InstanceKind::Line {
                length: 2.0 * SCENARIO_SIDE,
            },
            LayoutFamily::Clustered => InstanceKind::Clustered {
                clusters: (self.n / 4).max(2),
                spread: SCENARIO_SIDE / 8.0,
                side: SCENARIO_SIDE,
            },
            LayoutFamily::Grid => InstanceKind::Grid {
                spacing: SCENARIO_SIDE / (self.n as f64).sqrt(),
            },
            LayoutFamily::Circle => InstanceKind::Circle {
                radius: SCENARIO_SIDE / 2.0,
            },
        }
    }

    /// The reproducible instance this scenario denotes at `seed`.
    pub fn instance(&self, seed: u64) -> InstanceConfig {
        InstanceConfig {
            n: self.n,
            dim: self.dim,
            kind: self.kind(),
            seed,
        }
    }

    /// Generate the station coordinates at `seed`.
    pub fn points(&self, seed: u64) -> Vec<Point> {
        self.instance(seed).generate()
    }

    /// The power model `c = dist^α` of this scenario.
    pub fn power_model(&self) -> PowerModel {
        PowerModel::with_alpha(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_constraints_are_normalised() {
        assert_eq!(Scenario::new(LayoutFamily::Line, 5, 3, 2.0).dim, 1);
        assert_eq!(Scenario::new(LayoutFamily::Grid, 5, 3, 2.0).dim, 2);
        assert_eq!(Scenario::new(LayoutFamily::Circle, 5, 1, 2.0).dim, 2);
        assert_eq!(Scenario::new(LayoutFamily::UniformBox, 5, 3, 2.0).dim, 3);
    }

    #[test]
    fn generation_is_deterministic_per_seed_for_every_family() {
        for family in LayoutFamily::ALL {
            let sc = Scenario::new(family, 12, 2, 2.0);
            for seed in [0u64, 1, 7, 0xdead_beef] {
                assert_eq!(sc.points(seed), sc.points(seed), "{}", sc.label());
            }
            // Distinct seeds move at least one coordinate.
            assert_ne!(sc.points(1), sc.points(2), "{}", sc.label());
        }
    }

    #[test]
    fn clustered_grid_circle_respect_their_geometry() {
        let cl = Scenario::new(LayoutFamily::Clustered, 20, 2, 2.0);
        assert_eq!(cl.points(3).len(), 20);

        let gr = Scenario::new(LayoutFamily::Grid, 9, 2, 2.0);
        let spacing = SCENARIO_SIDE / 3.0;
        for (i, p) in gr.points(4).iter().enumerate() {
            // Jitter is ±5% of the spacing around the lattice site.
            let (gx, gy) = ((i % 3) as f64 * spacing, (i / 3) as f64 * spacing);
            assert!((p.coord(0) - gx).abs() <= 0.05 * spacing + 1e-12);
            assert!((p.coord(1) - gy).abs() <= 0.05 * spacing + 1e-12);
        }

        let ci = Scenario::new(LayoutFamily::Circle, 15, 2, 2.0);
        let o = Point::xy(0.0, 0.0);
        for p in ci.points(5) {
            assert!((p.dist(&o) - SCENARIO_SIDE / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_crosses_and_dedups_after_normalisation() {
        let m = Scenario::matrix(
            &[LayoutFamily::UniformBox, LayoutFamily::Line],
            &[6, 8],
            &[2, 3],
            &[2.0],
        );
        // UniformBox: 2 ns × 2 dims = 4; Line collapses d∈{2,3} to d=1 → 2.
        assert_eq!(m.len(), 6);
        let labels: Vec<String> = m.iter().map(Scenario::label).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }

    #[test]
    fn labels_are_stable() {
        let sc = Scenario::new(LayoutFamily::Clustered, 8, 2, 2.0);
        assert_eq!(sc.label(), "clustered n=8 d=2 α=2");
        // The groups axis only shows (and only re-seeds sweeps) when used.
        assert_eq!(sc.with_groups(1).label(), "clustered n=8 d=2 α=2");
        assert_eq!(sc.with_groups(16).label(), "clustered n=8 d=2 α=2 G=16");
    }
}
