//! Tolerant floating-point comparison helpers.
//!
//! Every branch a mechanism takes (drop an agent, accept a spider, compare a
//! ratio against a reported utility) is a comparison of `f64` costs. To keep
//! those decisions deterministic across algebraically equivalent evaluation
//! orders, all of them go through the helpers in this module with a single
//! shared absolute/relative tolerance [`EPS`].

/// Shared tolerance for cost comparisons.
///
/// Costs in this workspace are O(1)..O(10^4) (distances up to ~100 raised to
/// powers up to α = 6 in extreme configurations), so an absolute tolerance of
/// `1e-9` combined with a relative one keeps comparisons meaningful at both
/// ends of the range.
pub const EPS: f64 = 1e-9;

/// Voluntary-participation / per-check absolute slack.
///
/// Bounds the acceptable numerical violation of a *single* f64 comparison
/// gating a verdict: a receiver's share may exceed its bid, or revenue may
/// fall short of served cost, by at most this much (optionally scaled by
/// `1 + |reference|` where the magnitudes are unbounded). Numerically equal
/// to [`EPS`], but named separately so experiment gates read as the
/// invariant they check rather than a bare literal.
pub const VP_TOL: f64 = 1e-9;

/// Budget-balance residual gate over a whole run.
///
/// Bounds the *accumulated relative* error `|revenue − cost| / max(1, cost)`
/// summed over every batch of a session or sweep cell (experiments T10–T12).
/// One decade looser than [`VP_TOL`] because hundreds of per-batch residuals
/// are folded into a single scalar before the comparison.
pub const BB_TOL: f64 = 1e-8;

/// Strategyproofness deviation-gain threshold.
///
/// A unilateral (or group) misreport only counts as a *profitable* deviation
/// if it improves the deviator's welfare by more than this. Used where the
/// mechanism's cost oracle is exact (explicit games, pinned paper
/// instances): tight enough to catch the paper's Eq. (5) counterexamples
/// (gain ≈ 1e-2), loose enough not to flag evaluation-order noise as
/// manipulability.
pub const SP_TOL: f64 = 1e-7;

/// Deviation-gain threshold for approximation-backed mechanisms.
///
/// One decade looser than [`SP_TOL`], for mechanisms whose served cost comes
/// from a multi-stage approximation pipeline (KMB Steiner, greedy NWST,
/// MEMT heuristics): there, `1e-7`-scale welfare "gains" are pipeline
/// rounding noise, not manipulation.
pub const SP_TOL_APPROX: f64 = 1e-6;

/// Loose tolerance for approximation-ratio bounds and optimum matches.
///
/// Used where the two sides of a comparison are produced by *different
/// algorithms* (e.g. a greedy tree vs the exact Dreyfus–Wagner/NWST optimum,
/// or an empirical max ratio vs an analytic `2(3^d − 1)` bound), so the
/// accumulated error of both pipelines — not a single rounding step — must
/// fit inside the slack.
pub const REL_TOL: f64 = 1e-6;

/// Identity threshold: two f64s that are "the same value".
///
/// Three decades below [`EPS`] — used where a comparison asks whether two
/// quantities are *literally the same number* up to representation noise
/// (e.g. the deviation search skipping candidate misreports equal to the
/// truthful report), never to absorb accumulated algorithmic error.
pub const IDENT_TOL: f64 = 1e-12;

/// LP phase-1 feasibility residual gate.
///
/// The two-phase simplex declares a program infeasible when the phase-1
/// artificial objective cannot be driven below this residual. Looser than
/// [`EPS`] because the residual is a sum over all constraint rows of a
/// tableau that has been pivoted many times.
pub const FEAS_TOL: f64 = 1e-7;

/// `a == b` up to [`EPS`] absolute or relative error.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPS || diff <= EPS * a.abs().max(b.abs())
}

/// `a <= b` up to tolerance (i.e. `a` is not significantly greater than `b`).
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS + EPS * a.abs().max(b.abs())
}

/// `a >= b` up to tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    approx_le(b, a)
}

/// `a < b` strictly, beyond tolerance.
#[inline]
pub fn approx_lt(a: f64, b: f64) -> bool {
    !approx_le(b, a)
}

/// Configurable-tolerance comparator for callers that need a different
/// epsilon (e.g. validating Shapley identities at `1e-6` relative error).
#[derive(Debug, Clone, Copy)]
pub struct Eps(pub f64);

impl Eps {
    /// `a == b` within this tolerance (absolute or relative).
    #[inline]
    pub fn eq(&self, a: f64, b: f64) -> bool {
        let diff = (a - b).abs();
        diff <= self.0 || diff <= self.0 * a.abs().max(b.abs())
    }

    /// `a <= b` within this tolerance.
    #[inline]
    pub fn le(&self, a: f64, b: f64) -> bool {
        a <= b + self.0 + self.0 * a.abs().max(b.abs())
    }
}

/// Total order on an `f64` slice index set: sorts indices by value with
/// `f64::total_cmp`, breaking ties by index so the order is deterministic.
pub fn total_cmp_slice(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_tolerates_tiny_differences() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(0.0, 1e-10));
        assert!(!approx_eq(1.0, 1.001));
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        let big = 1e12;
        assert!(approx_eq(big, big * (1.0 + 1e-12)));
        assert!(!approx_eq(big, big * 1.001));
    }

    #[test]
    fn le_ge_lt_are_consistent() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0, 1.0 + 1e-12));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_ge(2.0, 1.0));
        assert!(approx_lt(1.0, 2.0));
        assert!(!approx_lt(1.0, 1.0 + 1e-12));
    }

    #[test]
    fn custom_eps_widens_band() {
        let e = Eps(1e-3);
        assert!(e.eq(1.0, 1.0005));
        assert!(!e.eq(1.0, 1.01));
        assert!(e.le(1.0005, 1.0));
    }

    #[test]
    fn total_cmp_slice_sorts_and_breaks_ties_by_index() {
        let v = [3.0, 1.0, 2.0, 1.0];
        assert_eq!(total_cmp_slice(&v), vec![1, 3, 2, 0]);
    }

    #[test]
    fn total_cmp_slice_empty() {
        assert!(total_cmp_slice(&[]).is_empty());
    }
}
