//! d-dimensional Euclidean points.

use serde::{Deserialize, Serialize};

/// A point in `R^d`.
///
/// Stations in the paper's Euclidean model (§1, §3) are points; `d = 1`
/// (line networks, Lemma 3.1) up to arbitrary `d` (Theorem 3.6) are all
/// exercised, so dimension is dynamic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Create a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "points must have dimension >= 1");
        Self { coords }
    }

    /// A 1-dimensional point (line networks of Lemma 3.1).
    pub fn on_line(x: f64) -> Self {
        Self { coords: vec![x] }
    }

    /// A 2-dimensional point.
    pub fn xy(x: f64, y: f64) -> Self {
        Self { coords: vec![x, y] }
    }

    /// A 3-dimensional point.
    pub fn xyz(x: f64, y: f64, z: f64) -> Self {
        Self {
            coords: vec![x, y, z],
        }
    }

    /// The origin of `R^d`.
    pub fn origin(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// Dimension `d` of the ambient space.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate accessor.
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// All coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "distance between points of different dimensions"
        );
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Midpoint of the segment between two points.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new(
            self.coords
                .iter()
                .zip(&other.coords)
                .map(|(a, b)| (a + b) / 2.0)
                .collect(),
        )
    }

    /// The point `self + t * (other - self)` for `t ∈ \[0, 1\]`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.coords
                .iter()
                .zip(&other.coords)
                .map(|(a, b)| a + t * (b - a))
                .collect(),
        )
    }

    /// Translate by a vector given as a point.
    pub fn translate(&self, delta: &Point) -> Point {
        Point::new(
            self.coords
                .iter()
                .zip(&delta.coords)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn pythagorean_distance() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(3.0, 4.0);
        assert!(approx_eq(a.dist(&b), 5.0));
        assert!(approx_eq(a.dist_sq(&b), 25.0));
    }

    #[test]
    fn one_dimensional_distance_is_absolute_difference() {
        let a = Point::on_line(-2.0);
        let b = Point::on_line(3.5);
        assert!(approx_eq(a.dist(&b), 5.5));
    }

    #[test]
    fn three_dimensional_distance() {
        let a = Point::xyz(1.0, 2.0, 3.0);
        let b = Point::xyz(1.0, 2.0, 3.0);
        assert!(approx_eq(a.dist(&b), 0.0));
        let c = Point::xyz(2.0, 4.0, 5.0);
        assert!(approx_eq(a.dist(&c), 3.0));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(2.0, 4.0);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn translate_moves_coordinates() {
        let a = Point::xy(1.0, 1.0);
        let d = Point::xy(-1.0, 2.0);
        assert_eq!(a.translate(&d), Point::xy(0.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn mismatched_dimensions_panic() {
        let _ = Point::on_line(0.0).dist(&Point::xy(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension >= 1")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                                 bx in -100.0..100.0f64, by in -100.0..100.0f64) {
            let a = Point::xy(ax, ay);
            let b = Point::xy(bx, by);
            prop_assert!(approx_eq(a.dist(&b), b.dist(&a)));
        }

        #[test]
        fn triangle_inequality(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                               bx in -50.0..50.0f64, by in -50.0..50.0f64,
                               cx in -50.0..50.0f64, cy in -50.0..50.0f64) {
            let a = Point::xy(ax, ay);
            let b = Point::xy(bx, by);
            let c = Point::xy(cx, cy);
            prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
        }

        #[test]
        fn dist_sq_is_square_of_dist(ax in -50.0..50.0f64, bx in -50.0..50.0f64) {
            let a = Point::on_line(ax);
            let b = Point::on_line(bx);
            prop_assert!(approx_eq(a.dist(&b) * a.dist(&b), a.dist_sq(&b)));
        }
    }
}
