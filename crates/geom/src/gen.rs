//! Deterministic random-instance generators.
//!
//! Every experiment in `EXPERIMENTS.md` drives its workloads through
//! [`InstanceConfig`] so that each table row is reproducible from a seed.

use crate::point::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spatial layout of a generated station set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InstanceKind {
    /// Points uniform in the axis-aligned box `[0, side]^d`.
    UniformBox {
        /// Box side length.
        side: f64,
    },
    /// Points uniform on a segment of the given length (forced to `d = 1`
    /// semantics: only the first coordinate varies).
    Line {
        /// Segment length.
        length: f64,
    },
    /// `clusters` cluster centres uniform in `[0, side]^d`, points Gaussian-ish
    /// (uniform ball) around centres with the given spread.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Uniform-ball radius around each centre.
        spread: f64,
        /// Side of the box the centres are drawn from.
        side: f64,
    },
    /// Points on a jittered integer grid with the given spacing (2-D only;
    /// higher dimensions fall back to the box layout).
    Grid {
        /// Lattice spacing.
        spacing: f64,
    },
    /// Points uniform on a circle of the given radius (2-D; used by the
    /// pentagon-style constructions of §3.2).
    Circle {
        /// Circle radius.
        radius: f64,
    },
}

/// A reproducible instance: `n` stations in dimension `dim`, laid out
/// according to `kind`, driven by `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// Number of stations (including the source, by convention station 0).
    pub n: usize,
    /// Ambient dimension `d ≥ 1`.
    pub dim: usize,
    /// Spatial layout.
    pub kind: InstanceKind,
    /// RNG seed.
    pub seed: u64,
}

impl InstanceConfig {
    /// Generate the station coordinates.
    pub fn generate(&self) -> Vec<Point> {
        assert!(self.dim >= 1, "dimension must be >= 1");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        match self.kind {
            InstanceKind::UniformBox { side } => uniform_box(&mut rng, self.n, self.dim, side),
            InstanceKind::Line { length } => line(&mut rng, self.n, length),
            InstanceKind::Clustered {
                clusters,
                spread,
                side,
            } => clustered(&mut rng, self.n, self.dim, clusters, spread, side),
            InstanceKind::Grid { spacing } => {
                if self.dim == 2 {
                    grid(&mut rng, self.n, spacing)
                } else {
                    uniform_box(&mut rng, self.n, self.dim, spacing * (self.n as f64).sqrt())
                }
            }
            InstanceKind::Circle { radius } => circle(&mut rng, self.n, radius),
        }
    }
}

fn uniform_box(rng: &mut SmallRng, n: usize, dim: usize, side: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..side)).collect()))
        .collect()
}

fn line(rng: &mut SmallRng, n: usize, length: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::on_line(rng.gen_range(0.0..length)))
        .collect()
}

fn clustered(
    rng: &mut SmallRng,
    n: usize,
    dim: usize,
    clusters: usize,
    spread: f64,
    side: f64,
) -> Vec<Point> {
    let clusters = clusters.max(1);
    let centres = uniform_box(rng, clusters, dim, side);
    (0..n)
        .map(|_| {
            let c = &centres[rng.gen_range(0..clusters)];
            Point::new(
                (0..dim)
                    .map(|k| c.coord(k) + rng.gen_range(-spread..spread))
                    .collect(),
            )
        })
        .collect()
}

fn grid(rng: &mut SmallRng, n: usize, spacing: f64) -> Vec<Point> {
    let cols = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            let jx = rng.gen_range(-0.05..0.05) * spacing;
            let jy = rng.gen_range(-0.05..0.05) * spacing;
            Point::xy(
                (i % cols) as f64 * spacing + jx,
                (i / cols) as f64 * spacing + jy,
            )
        })
        .collect()
}

fn circle(rng: &mut SmallRng, n: usize, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            Point::xy(radius * theta.cos(), radius * theta.sin())
        })
        .collect()
}

/// Convenience: `n` uniform points in `[0, side]^dim` with station 0 moved to
/// the box centre (a natural multicast source position).
pub fn uniform_with_central_source(n: usize, dim: usize, side: f64, seed: u64) -> Vec<Point> {
    let cfg = InstanceConfig {
        n,
        dim,
        kind: InstanceKind::UniformBox { side },
        seed,
    };
    let mut pts = cfg.generate();
    pts[0] = Point::new(vec![side / 2.0; dim]);
    pts
}

/// Convenience: sorted station positions on a segment with the source in the
/// middle position of the sorted order — the d = 1 setting of Lemma 3.1.
pub fn line_instance(n: usize, length: f64, seed: u64) -> (Vec<Point>, usize) {
    let cfg = InstanceConfig {
        n,
        dim: 1,
        kind: InstanceKind::Line { length },
        seed,
    };
    let mut pts = cfg.generate();
    pts.sort_by(|a, b| a.coord(0).total_cmp(&b.coord(0)));
    let source = n / 2;
    (pts, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = InstanceConfig {
            n: 10,
            dim: 2,
            kind: InstanceKind::UniformBox { side: 5.0 },
            seed: 7,
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let cfg2 = InstanceConfig { seed: 8, ..cfg };
        assert_ne!(cfg.generate(), cfg2.generate());
    }

    #[test]
    fn line_points_are_one_dimensional() {
        let cfg = InstanceConfig {
            n: 5,
            dim: 1,
            kind: InstanceKind::Line { length: 3.0 },
            seed: 1,
        };
        for p in cfg.generate() {
            assert_eq!(p.dim(), 1);
            assert!(p.coord(0) >= 0.0 && p.coord(0) <= 3.0);
        }
    }

    #[test]
    fn box_points_stay_in_box() {
        let cfg = InstanceConfig {
            n: 50,
            dim: 3,
            kind: InstanceKind::UniformBox { side: 2.0 },
            seed: 3,
        };
        for p in cfg.generate() {
            for k in 0..3 {
                assert!(p.coord(k) >= 0.0 && p.coord(k) <= 2.0);
            }
        }
    }

    #[test]
    fn circle_points_are_on_circle() {
        let cfg = InstanceConfig {
            n: 20,
            dim: 2,
            kind: InstanceKind::Circle { radius: 4.0 },
            seed: 5,
        };
        let o = Point::xy(0.0, 0.0);
        for p in cfg.generate() {
            assert!((p.dist(&o) - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn central_source_sits_in_middle() {
        let pts = uniform_with_central_source(9, 2, 10.0, 11);
        assert_eq!(pts[0], Point::xy(5.0, 5.0));
    }

    #[test]
    fn line_instance_is_sorted_with_middle_source() {
        let (pts, s) = line_instance(9, 20.0, 13);
        for w in pts.windows(2) {
            assert!(w[0].coord(0) <= w[1].coord(0));
        }
        assert_eq!(s, 4);
    }

    #[test]
    fn clustered_produces_requested_count() {
        let cfg = InstanceConfig {
            n: 33,
            dim: 2,
            kind: InstanceKind::Clustered {
                clusters: 4,
                spread: 0.3,
                side: 8.0,
            },
            seed: 2,
        };
        assert_eq!(cfg.generate().len(), 33);
    }

    #[test]
    fn grid_in_three_dims_falls_back_to_box() {
        let cfg = InstanceConfig {
            n: 8,
            dim: 3,
            kind: InstanceKind::Grid { spacing: 1.0 },
            seed: 2,
        };
        let pts = cfg.generate();
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].dim(), 3);
    }
}
