//! The power-attenuation transmission-cost model.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Euclidean power-attenuation model (paper §1):
/// `c_{α,κ}(x, y) = κ · dist(x, y)^α`.
///
/// * `alpha` — the distance–power gradient (typical values 1..6). The paper's
///   structural results split on `α = 1` (Lemma 3.1: submodular optimum) vs
///   `α > 1` (Lemma 3.3: empty core), and the approximation bounds of §3.2
///   assume `α ≥ d`.
/// * `kappa` — the receivers' common transmission-quality threshold,
///   normalised to 1 in the paper but kept explicit so experiments can vary
///   it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    alpha: f64,
    kappa: f64,
}

impl PowerModel {
    /// Create a model with gradient `alpha ≥ 1` and threshold `kappa > 0`.
    pub fn new(alpha: f64, kappa: f64) -> Self {
        assert!(alpha >= 1.0, "distance-power gradient must satisfy α ≥ 1");
        assert!(kappa > 0.0, "threshold must be positive");
        Self { alpha, kappa }
    }

    /// Model with threshold normalised to 1 (the paper's default).
    pub fn with_alpha(alpha: f64) -> Self {
        Self::new(alpha, 1.0)
    }

    /// The linear model `α = 1, κ = 1` of Lemma 3.1's first case.
    pub fn linear() -> Self {
        Self::new(1.0, 1.0)
    }

    /// The free-space model `α = 2, κ = 1`.
    pub fn free_space() -> Self {
        Self::new(2.0, 1.0)
    }

    /// Distance–power gradient α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Quality threshold κ.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Power required for a direct transmission between `x` and `y`.
    pub fn cost(&self, x: &Point, y: &Point) -> f64 {
        self.cost_of_distance(x.dist(y))
    }

    /// Power required to cover geometric distance `t`.
    pub fn cost_of_distance(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        if self.alpha == 1.0 {
            self.kappa * t
        } else if self.alpha == 2.0 {
            self.kappa * t * t
        } else if self.alpha == 4.0 {
            // Integer-exponent fast path: the scaling sweeps (T10) build
            // dense n = 4096 cost matrices at α = 4, where `powf` would
            // dominate the cell time.
            let sq = t * t;
            self.kappa * sq * sq
        } else {
            self.kappa * t.powf(self.alpha)
        }
    }

    /// Geometric range covered by emission power `p`: the largest `t` with
    /// `cost_of_distance(t) ≤ p`.
    pub fn range_of_power(&self, p: f64) -> f64 {
        debug_assert!(p >= 0.0);
        (p / self.kappa).powf(1.0 / self.alpha)
    }

    /// Full symmetric cost matrix for a set of stations.
    pub fn cost_matrix(&self, points: &[Point]) -> Vec<Vec<f64>> {
        let n = points.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = self.cost(&points[i], &points[j]);
                m[i][j] = c;
                m[j][i] = c;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn linear_model_is_distance() {
        let m = PowerModel::linear();
        assert!(approx_eq(
            m.cost(&Point::xy(0.0, 0.0), &Point::xy(3.0, 4.0)),
            5.0
        ));
    }

    #[test]
    fn free_space_model_is_squared_distance() {
        let m = PowerModel::free_space();
        assert!(approx_eq(
            m.cost(&Point::xy(0.0, 0.0), &Point::xy(3.0, 4.0)),
            25.0
        ));
    }

    #[test]
    fn kappa_scales_cost() {
        let m = PowerModel::new(2.0, 3.0);
        assert!(approx_eq(m.cost_of_distance(2.0), 12.0));
    }

    #[test]
    fn fractional_alpha_uses_powf() {
        let m = PowerModel::new(2.5, 1.0);
        assert!(approx_eq(m.cost_of_distance(4.0), 32.0));
    }

    #[test]
    fn cost_matrix_is_symmetric_with_zero_diagonal() {
        let m = PowerModel::free_space();
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.0, 2.0),
        ];
        let c = m.cost_matrix(&pts);
        for i in 0..3 {
            assert_eq!(c[i][i], 0.0);
            for j in 0..3 {
                assert!(approx_eq(c[i][j], c[j][i]));
            }
        }
        assert!(approx_eq(c[0][1], 1.0));
        assert!(approx_eq(c[0][2], 4.0));
        assert!(approx_eq(c[1][2], 5.0));
    }

    #[test]
    #[should_panic(expected = "α ≥ 1")]
    fn alpha_below_one_rejected() {
        let _ = PowerModel::new(0.5, 1.0);
    }

    proptest! {
        #[test]
        fn range_inverts_cost(alpha in 1.0..6.0f64, t in 0.001..50.0f64) {
            let m = PowerModel::with_alpha(alpha);
            let p = m.cost_of_distance(t);
            prop_assert!((m.range_of_power(p) - t).abs() < 1e-6 * t.max(1.0));
        }

        #[test]
        fn cost_is_monotone_in_distance(alpha in 1.0..6.0f64, a in 0.0..20.0f64, b in 0.0..20.0f64) {
            let m = PowerModel::with_alpha(alpha);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.cost_of_distance(lo) <= m.cost_of_distance(hi) + 1e-12);
        }

        #[test]
        fn superadditivity_for_alpha_ge_one(alpha in 1.0..6.0f64, a in 0.0..20.0f64, b in 0.0..20.0f64) {
            // (a + b)^α ≥ a^α + b^α for α ≥ 1 — the reason single hops are
            // optimal on the line (Lemma 3.1's d = 1 case).
            let m = PowerModel::with_alpha(alpha);
            prop_assert!(m.cost_of_distance(a + b) + 1e-9
                >= m.cost_of_distance(a) + m.cost_of_distance(b));
        }
    }
}
