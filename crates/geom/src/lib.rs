//! # wmcs-geom — geometry substrate
//!
//! Foundation layer for the wireless multicast cost-sharing reproduction
//! (Bilò et al., SPAA 2004 / TCS 2006): d-dimensional Euclidean points, the
//! power-attenuation transmission-cost model `c(x, y) = κ · dist(x, y)^α`,
//! tolerant floating-point comparisons used by every mechanism decision, and
//! deterministic random-instance generators.
//!
//! The paper's model (§1, "Wireless network model"): stations live in
//! `R^d`; the power needed for a direct transmission between stations at
//! distance `t` is `κ · t^α` where `α ≥ 1` is the distance–power gradient
//! and `κ` the transmission-quality threshold (normalised to 1 throughout
//! the paper, kept explicit here).

// Index loops over multiple parallel arrays are idiomatic in this
// numeric code; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Every public item carries rustdoc: substrate crates feed the
// mechanism layers above them, and undocumented invariants become
// silent contract drift there.
#![deny(missing_docs)]

pub mod churn;
pub mod float;
pub mod gen;
pub mod grid;
pub mod point;
pub mod power;
pub mod scenario;

pub use churn::{
    ChurnEvent, ChurnProcess, ChurnTrace, GroupChurn, MultiGroupProcess, MultiGroupTrace,
};
pub use float::{
    approx_eq, approx_ge, approx_le, approx_lt, total_cmp_slice, Eps, BB_TOL, EPS, FEAS_TOL,
    IDENT_TOL, REL_TOL, SP_TOL, SP_TOL_APPROX, VP_TOL,
};
pub use gen::{InstanceConfig, InstanceKind};
pub use grid::GridIndex;
pub use point::Point;
pub use power::PowerModel;
pub use scenario::{LayoutFamily, Scenario, SCENARIO_SIDE};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn model_and_points_cooperate() {
        let m = PowerModel::new(2.0, 1.0);
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert!(approx_eq(m.cost(&a, &b), 25.0));
    }

    #[test]
    fn generated_instances_have_requested_size() {
        for (kind, expect_dim) in [
            (InstanceKind::UniformBox { side: 10.0 }, 2),
            (InstanceKind::Line { length: 10.0 }, 1), // Line forces d = 1
            (
                InstanceKind::Clustered {
                    clusters: 3,
                    spread: 0.5,
                    side: 10.0,
                },
                2,
            ),
            (InstanceKind::Grid { spacing: 1.0 }, 2),
            (InstanceKind::Circle { radius: 5.0 }, 2),
        ] {
            let cfg = InstanceConfig {
                n: 17,
                dim: 2,
                kind,
                seed: 42,
            };
            let pts = cfg.generate();
            assert_eq!(pts.len(), 17);
            for p in &pts {
                assert_eq!(p.dim(), expect_dim);
            }
        }
    }
}
