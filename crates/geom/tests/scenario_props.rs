//! Property tests for the scenario plumbing: the Clustered/Grid/Circle
//! generators (the families the sweep matrix newly exercises) must be
//! deterministic per seed, size-exact, and respect their geometry for
//! arbitrary `(n, seed)` draws.

use proptest::prelude::*;
use wmcs_geom::{LayoutFamily, Point, Scenario, SCENARIO_SIDE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_family_is_deterministic_per_seed(seed in 0u64..1_000_000_000, n in 4usize..24) {
        for family in LayoutFamily::ALL {
            let sc = Scenario::new(family, n, 2, 2.0);
            let a = sc.points(seed);
            prop_assert_eq!(&a, &sc.points(seed), "{} replays", sc.label());
            prop_assert_eq!(a.len(), n, "{} size", sc.label());
            // The instance handle denotes the same draw.
            prop_assert_eq!(&a, &sc.instance(seed).generate(), "{} via config", sc.label());
        }
    }

    #[test]
    fn distinct_seeds_distinct_clouds(seed in 0u64..1_000_000_000, n in 4usize..24) {
        for family in LayoutFamily::ALL {
            let sc = Scenario::new(family, n, 2, 2.0);
            prop_assert_ne!(sc.points(seed), sc.points(seed ^ 1), "{}", sc.label());
        }
    }

    #[test]
    fn clustered_points_stay_in_reach_of_the_box(seed in 0u64..1_000_000_000, n in 4usize..24) {
        let sc = Scenario::new(LayoutFamily::Clustered, n, 2, 2.0);
        // Centres live in [0, side]^2 and points within `spread` of one.
        let slack = SCENARIO_SIDE / 8.0 + 1e-9;
        for p in sc.points(seed) {
            for i in 0..2 {
                prop_assert!(p.coord(i) >= -slack && p.coord(i) <= SCENARIO_SIDE + slack);
            }
        }
    }

    #[test]
    fn circle_points_sit_on_the_circle(seed in 0u64..1_000_000_000, n in 4usize..24) {
        let sc = Scenario::new(LayoutFamily::Circle, n, 2, 2.0);
        let centre = Point::xy(0.0, 0.0);
        for p in sc.points(seed) {
            prop_assert!((p.dist(&centre) - SCENARIO_SIDE / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_points_jitter_around_their_lattice_sites(seed in 0u64..1_000_000_000, n in 4usize..24) {
        let sc = Scenario::new(LayoutFamily::Grid, n, 2, 2.0);
        let pts = sc.points(seed);
        let cols = (n as f64).sqrt().ceil() as usize;
        let spacing = SCENARIO_SIDE / (n as f64).sqrt();
        for (i, p) in pts.iter().enumerate() {
            let site = ((i % cols) as f64 * spacing, (i / cols) as f64 * spacing);
            prop_assert!((p.coord(0) - site.0).abs() <= 0.05 * spacing + 1e-12);
            prop_assert!((p.coord(1) - site.1).abs() <= 0.05 * spacing + 1e-12);
        }
    }
}
