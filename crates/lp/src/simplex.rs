//! Two-phase dense tableau simplex with Bland's anti-cycling rule.
//!
//! Solves `max c·x  s.t.  A x {≤,=,≥} b, x ≥ 0`. Phase 1 minimises the sum
//! of artificial variables to find a basic feasible solution; phase 2
//! optimises the real objective. All pivots use Bland's rule (smallest
//! eligible index), which guarantees finite termination at the price of
//! speed — irrelevant at the problem sizes in this workspace.

use wmcs_geom::{EPS, FEAS_TOL};

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal {
        /// Optimal objective value.
        objective: f64,
        /// Optimal structural variable values.
        x: Vec<f64>,
    },
    /// The constraint system has no solution with `x ≥ 0`.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An LP under construction: `n` structural variables, constraints added
/// incrementally.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

impl LinearProgram {
    /// New program over `n ≥ 1` non-negative structural variables.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            n,
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Add `coeffs · x ≤ rhs`.
    pub fn le(&mut self, coeffs: &[f64], rhs: f64) {
        self.push(coeffs, Relation::Le, rhs);
    }

    /// Add `coeffs · x ≥ rhs`.
    pub fn ge(&mut self, coeffs: &[f64], rhs: f64) {
        self.push(coeffs, Relation::Ge, rhs);
    }

    /// Add `coeffs · x = rhs`.
    pub fn eq(&mut self, coeffs: &[f64], rhs: f64) {
        self.push(coeffs, Relation::Eq, rhs);
    }

    fn push(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) {
        assert_eq!(coeffs.len(), self.n, "coefficient vector of wrong arity");
        self.rows.push((coeffs.to_vec(), rel, rhs));
    }

    /// True if the constraint system admits any `x ≥ 0`.
    pub fn is_feasible(&self) -> bool {
        !matches!(self.maximize(&vec![0.0; self.n]), LpOutcome::Infeasible)
    }

    /// Maximise `obj · x` subject to the constraints.
    pub fn maximize(&self, obj: &[f64]) -> LpOutcome {
        assert_eq!(obj.len(), self.n);
        Tableau::build(self).solve(obj)
    }

    /// Minimise `obj · x` (negated maximisation).
    pub fn minimize(&self, obj: &[f64]) -> LpOutcome {
        let neg: Vec<f64> = obj.iter().map(|c| -c).collect();
        match self.maximize(&neg) {
            LpOutcome::Optimal { objective, x } => LpOutcome::Optimal {
                objective: -objective,
                x,
            },
            other => other,
        }
    }
}

/// Dense tableau: `m` rows over columns
/// `[structural… | slack/surplus… | artificial… | rhs]`.
struct Tableau {
    m: usize,
    n_struct: usize,
    n_slack: usize,
    n_art: usize,
    /// `m` rows, each of width `total_cols + 1` (rhs last).
    rows: Vec<Vec<f64>>,
    /// Basic variable (column index) per row.
    basis: Vec<usize>,
}

impl Tableau {
    fn total_cols(&self) -> usize {
        self.n_struct + self.n_slack + self.n_art
    }

    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.rows.len();
        // Normalise rhs ≥ 0 (flip the relation when multiplying by −1), then
        // count slack/surplus and artificial columns.
        let mut normalised: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
        for (coeffs, rel, rhs) in &lp.rows {
            if *rhs < 0.0 {
                let flipped = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                normalised.push((coeffs.iter().map(|c| -c).collect(), flipped, -rhs));
            } else {
                normalised.push((coeffs.clone(), *rel, *rhs));
            }
        }
        let n_slack = normalised
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Eq)
            .count();
        let n_art = normalised
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Le)
            .count();
        let n_struct = lp.n;
        let total = n_struct + n_slack + n_art;
        let mut rows = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_at = n_struct;
        let mut art_at = n_struct + n_slack;
        for (i, (coeffs, rel, rhs)) in normalised.iter().enumerate() {
            rows[i][..n_struct].copy_from_slice(coeffs);
            rows[i][total] = *rhs;
            match rel {
                Relation::Le => {
                    rows[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Relation::Ge => {
                    rows[i][slack_at] = -1.0; // surplus
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    slack_at += 1;
                    art_at += 1;
                }
                Relation::Eq => {
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }
        Tableau {
            m,
            n_struct,
            n_slack,
            n_art,
            rows,
            basis,
        }
    }

    /// One simplex run on the current tableau for the given full-width
    /// objective (maximisation). Returns `None` on unboundedness.
    fn optimize(&mut self, cost: &[f64]) -> Option<()> {
        loop {
            // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j, computed directly
            // from the canonical tableau.
            let total = self.total_cols();
            let mut entering = None;
            #[allow(clippy::needless_range_loop)] // reduced-cost scan reads cost[j] and columns
            for j in 0..total {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut rj = cost[j];
                for i in 0..self.m {
                    rj -= cost[self.basis[i]] * self.rows[i][j];
                }
                if rj > EPS {
                    entering = Some(j); // Bland: first improving index
                    break;
                }
            }
            let Some(j) = entering else {
                return Some(());
            };
            // Ratio test with Bland tie-breaking (smallest basis index).
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let a = self.rows[i][j];
                if a > EPS {
                    let ratio = self.rows[i][total] / a;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - EPS
                                || ((ratio - lr).abs() <= EPS && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((pivot_row, _)) = leave else {
                return None; // unbounded direction
            };
            self.pivot(pivot_row, j);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.total_cols() + 1;
        let p = self.rows[row][col];
        debug_assert!(p.abs() > EPS);
        for v in self.rows[row].iter_mut() {
            *v /= p;
        }
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let f = self.rows[i][col];
            if f.abs() > EPS {
                for k in 0..width {
                    let delta = f * self.rows[row][k];
                    self.rows[i][k] -= delta;
                }
            }
        }
        self.basis[row] = col;
    }

    fn solve(mut self, obj: &[f64]) -> LpOutcome {
        let total = self.total_cols();
        // Phase 1: maximise −Σ artificials.
        if self.n_art > 0 {
            let mut cost = vec![0.0; total];
            for j in (self.n_struct + self.n_slack)..total {
                cost[j] = -1.0;
            }
            self.optimize(&cost)
                .expect("phase-1 objective is bounded by 0");
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.basis[i] >= self.n_struct + self.n_slack)
                .map(|i| self.rows[i][total])
                .sum();
            if infeas > FEAS_TOL {
                return LpOutcome::Infeasible;
            }
            // Drive any zero-valued artificial out of the basis when a
            // non-artificial pivot exists; a fully-zero row is redundant and
            // harmless to keep.
            for i in 0..self.m {
                if self.basis[i] >= self.n_struct + self.n_slack {
                    if let Some(j) =
                        (0..self.n_struct + self.n_slack).find(|&j| self.rows[i][j].abs() > EPS)
                    {
                        self.pivot(i, j);
                    }
                }
            }
        }
        // Phase 2: real objective; artificials are pinned at cost −∞ by
        // simply making them unattractive (large negative cost) so they
        // never re-enter.
        let mut cost = vec![0.0; total];
        cost[..self.n_struct].copy_from_slice(obj);
        #[allow(clippy::needless_range_loop)]
        for j in (self.n_struct + self.n_slack)..total {
            cost[j] = -1e30;
        }
        if self.optimize(&cost).is_none() {
            return LpOutcome::Unbounded;
        }
        let mut x = vec![0.0; self.n_struct];
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                x[self.basis[i]] = self.rows[i][total];
            }
        }
        let objective = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
        LpOutcome::Optimal { objective, x }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn opt(lp: &LinearProgram, obj: &[f64]) -> (f64, Vec<f64>) {
        match lp.maximize(obj) {
            LpOutcome::Optimal { objective, x } => (objective, x),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn single_variable_box() {
        let mut lp = LinearProgram::new(1);
        lp.le(&[1.0], 7.0);
        let (z, x) = opt(&lp, &[2.0]);
        assert!((z - 14.0).abs() < 1e-7);
        assert!((x[0] - 7.0).abs() < 1e-7);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.le(&[1.0, -1.0], 1.0);
        assert_eq!(lp.maximize(&[1.0, 1.0]), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.ge(&[1.0], 5.0);
        lp.le(&[1.0], 3.0);
        assert_eq!(lp.maximize(&[1.0]), LpOutcome::Infeasible);
    }

    #[test]
    fn equality_constraints_respected() {
        // max x + y  s.t.  x + y = 3, x ≤ 2 → z = 3.
        let mut lp = LinearProgram::new(2);
        lp.eq(&[1.0, 1.0], 3.0);
        lp.le(&[1.0, 0.0], 2.0);
        let (z, x) = opt(&lp, &[1.0, 1.0]);
        assert!((z - 3.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 3.0).abs() < 1e-7);
        assert!(x[0] <= 2.0 + 1e-7);
    }

    #[test]
    fn negative_rhs_normalised() {
        // x ≥ 2 written as −x ≤ −2.
        let mut lp = LinearProgram::new(1);
        lp.le(&[-1.0], -2.0);
        lp.le(&[1.0], 5.0);
        let (z, _) = opt(&lp, &[-1.0]); // maximise −x → x = 2
        assert!((z + 2.0).abs() < 1e-7);
    }

    #[test]
    fn minimize_wrapper_negates() {
        let mut lp = LinearProgram::new(1);
        lp.ge(&[1.0], 3.0);
        lp.le(&[1.0], 10.0);
        match lp.minimize(&[2.0]) {
            LpOutcome::Optimal { objective, x } => {
                assert!((objective - 6.0).abs() < 1e-7);
                assert!((x[0] - 3.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic cycling-prone degenerate LP (Beale's example in max
        // form); Bland's rule must terminate with the optimum 1.25 at
        // x = (1, 0, 1, 0).
        let mut lp = LinearProgram::new(4);
        lp.le(&[0.25, -8.0, -1.0, 9.0], 0.0);
        lp.le(&[0.5, -12.0, -0.5, 3.0], 0.0);
        lp.le(&[0.0, 0.0, 1.0, 0.0], 1.0);
        let (z, x) = opt(&lp, &[0.75, -20.0, 0.5, -6.0]);
        assert!((z - 1.25).abs() < 1e-6, "z = {z}");
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_objective_reports_feasibility() {
        let mut lp = LinearProgram::new(2);
        lp.eq(&[1.0, 1.0], 1.0);
        assert!(lp.is_feasible());
        lp.ge(&[1.0, 1.0], 2.0);
        assert!(!lp.is_feasible());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut lp = LinearProgram::new(2);
        lp.le(&[1.0], 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn box_constrained_lp_picks_positive_corners(
            bounds in proptest::collection::vec(0.1..10.0f64, 1..6),
            costs in proptest::collection::vec(-5.0..5.0f64, 1..6),
        ) {
            // max c·x s.t. x_i ≤ b_i: optimum is Σ_{c_i > 0} c_i b_i.
            let n = bounds.len().min(costs.len());
            let bounds = &bounds[..n];
            let costs = &costs[..n];
            let mut lp = LinearProgram::new(n);
            for i in 0..n {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                lp.le(&row, bounds[i]);
            }
            let expected: f64 = costs
                .iter()
                .zip(bounds)
                .filter(|(c, _)| **c > 0.0)
                .map(|(c, b)| c * b)
                .sum();
            match lp.maximize(costs) {
                LpOutcome::Optimal { objective, .. } => {
                    prop_assert!((objective - expected).abs() < 1e-6,
                        "got {objective}, expected {expected}");
                }
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
        }

        #[test]
        fn primal_feasibility_of_reported_solutions(seed_rows in proptest::collection::vec(
            (proptest::collection::vec(-3.0..3.0f64, 3), 0.5..10.0f64), 1..8))
        {
            let mut lp = LinearProgram::new(3);
            for (coeffs, rhs) in &seed_rows {
                lp.le(coeffs, *rhs);
            }
            if let LpOutcome::Optimal { x, .. } = lp.maximize(&[1.0, 1.0, 1.0]) {
                for (coeffs, rhs) in &seed_rows {
                    let lhs: f64 = coeffs.iter().zip(&x).map(|(a, v)| a * v).sum();
                    prop_assert!(lhs <= rhs + 1e-6);
                }
                for v in &x {
                    prop_assert!(*v >= -1e-9);
                }
            }
        }
    }
}
