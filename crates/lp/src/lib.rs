//! # wmcs-lp — dense two-phase simplex
//!
//! A small linear-programming solver (its only dependency is the shared
//! tolerance constants in [`wmcs_geom::float`]). Its single purpose in
//! this workspace is to decide **core (non-)emptiness** of cost-sharing
//! games *exactly*: Lemma 3.3 of Bilò et al. (SPAA 2004 / TCS 2006) exhibits
//! a wireless multicast instance whose optimal-cost game has an empty core,
//! which is what rules out cross-monotonic (and hence budget-balanced group
//! strategyproof Moulin–Shenker) mechanisms for `α > 1, d > 1`. The core is
//! a polytope with one inequality per coalition, so a feasibility oracle is
//! required; no LP crate is in the allowed offline set, hence this one.
//!
//! The solver is a textbook dense tableau simplex with Bland's rule
//! (guaranteeing termination) and a two-phase start, comfortably adequate
//! for the ≤ few-hundred-row systems produced by the experiments.

// Index loops over multiple parallel arrays are idiomatic in this
// numeric code; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Every public item carries rustdoc: substrate crates feed the
// mechanism layers above them, and undocumented invariants become
// silent contract drift there.
#![deny(missing_docs)]

pub mod simplex;

pub use simplex::{LinearProgram, LpOutcome, Relation};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn textbook_production_problem() {
        // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt 36 at (2, 6).
        let mut lp = LinearProgram::new(2);
        lp.le(&[1.0, 0.0], 4.0);
        lp.le(&[0.0, 2.0], 12.0);
        lp.le(&[3.0, 2.0], 18.0);
        match lp.maximize(&[3.0, 5.0]) {
            LpOutcome::Optimal { objective, x } => {
                assert!((objective - 36.0).abs() < 1e-7);
                assert!((x[0] - 2.0).abs() < 1e-7);
                assert!((x[1] - 6.0).abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn core_style_feasibility_system() {
        // A 3-player cost game with a non-empty core:
        // C({1}) = C({2}) = C({3}) = 2, C(pairs) = 3, C(N) = 4.
        // x = (4/3, 4/3, 4/3) lies in the core.
        let mut lp = LinearProgram::new(3);
        lp.le(&[1.0, 0.0, 0.0], 2.0);
        lp.le(&[0.0, 1.0, 0.0], 2.0);
        lp.le(&[0.0, 0.0, 1.0], 2.0);
        lp.le(&[1.0, 1.0, 0.0], 3.0);
        lp.le(&[1.0, 0.0, 1.0], 3.0);
        lp.le(&[0.0, 1.0, 1.0], 3.0);
        lp.eq(&[1.0, 1.0, 1.0], 4.0);
        assert!(lp.is_feasible());
    }

    #[test]
    fn empty_core_style_system_detected() {
        // Three players, every pair can serve itself for 1, grand coalition
        // costs 2: Σ over the three pair constraints gives 2(x1+x2+x3) ≤ 3,
        // contradicting x1+x2+x3 = 2. Classic empty core.
        let mut lp = LinearProgram::new(3);
        lp.le(&[1.0, 1.0, 0.0], 1.0);
        lp.le(&[1.0, 0.0, 1.0], 1.0);
        lp.le(&[0.0, 1.0, 1.0], 1.0);
        lp.eq(&[1.0, 1.0, 1.0], 2.0);
        assert!(!lp.is_feasible());
    }
}
