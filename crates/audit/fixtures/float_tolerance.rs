//! Fixture: trips `float-tolerance-literal` (inline epsilon literals).

pub fn budget_balanced(revenue: f64, cost: f64) -> bool {
    (revenue - cost).abs() < 1e-9
}

pub fn nearly(a: f64, b: f64) -> bool {
    (a - b).abs() <= 2.5E-7
}
