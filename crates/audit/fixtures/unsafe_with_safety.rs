//! Fixture: `unsafe` with an adjacent SAFETY comment — clean.

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
