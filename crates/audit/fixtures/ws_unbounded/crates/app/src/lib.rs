//! Fixture: unbounded channel constructors called through renamed
//! imports — the spellings `forbidden-api` must resolve away. A plain
//! text grep for `channel::unbounded` or `mpsc::channel` finds neither
//! call below. Audited via `wmcs-audit --root`, never compiled.

use crossbeam::channel as chan;
use std::sync::mpsc as pipe;

/// An unbounded crossbeam-style channel under a module alias; the audit
/// must still flag it.
pub fn open_firehose() {
    let (_tx, _rx) = chan::unbounded();
}

/// The std unbounded channel under a module alias. The **bounded**
/// `sync_channel` next to it stays legal — the registry entry must not
/// suffix-match it.
pub fn open_std_pipe() {
    let (_tx, _rx) = pipe::channel();
    let (_tx2, _rx2) = pipe::sync_channel(1);
}
