//! Fixture: trips `unwrap-in-lib` (bare `.unwrap()` in library code).

pub fn cheapest(costs: &[f64]) -> f64 {
    costs.iter().cloned().reduce(f64::min).unwrap()
}

pub fn sanctioned(costs: &[f64]) -> f64 {
    // .expect with an invariant message is the sanctioned form — not flagged.
    costs
        .iter()
        .cloned()
        .reduce(f64::max)
        .expect("caller guarantees a non-empty cost slice")
}
