//! Fixture: a banned substrate constructor called through a renamed
//! import — the dodge `forbidden-api` resolves away. A plain text grep
//! for `UniversalTree::mst_tree` finds nothing here. Audited via
//! `wmcs-audit --root`, never compiled.

use wmcs_wireless::UniversalTree as UT;

/// Calls the removed shim under an alias; the audit must still flag it.
pub fn build_tree() {
    let _tree = UT::mst_tree();
}
