//! Fixture: a justified pragma that suppresses nothing — flagged as unused.

// wmcs-audit: allow(unwrap-in-lib): historical exception that no longer applies here.
pub fn nothing_to_suppress() -> u32 {
    7
}
