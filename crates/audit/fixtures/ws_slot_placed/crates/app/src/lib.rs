//! Fixture: the sanctioned slot pattern — per-item `OnceLock` slots
//! filled under the spawn, single-threaded float combine after the pool
//! joins. `parallel-float-reduction` must stay silent: the float `+=`
//! in `combine` is only reachable from a slot-disciplined spawn site.
//! Audited via `wmcs-audit --root`, never compiled.

use std::sync::OnceLock;

/// Parallel map with per-item result slots; scheduling order can never
/// reach a float because the combine happens after the scope joins.
pub fn run(xs: &[f64]) -> f64 {
    let slots: Vec<OnceLock<f64>> = xs.iter().map(|_| OnceLock::new()).collect();
    crossbeam::thread::scope(|scope| {
        for (i, x) in xs.iter().enumerate() {
            let slot = &slots[i];
            scope.spawn(move |_| {
                slot.set(x * 2.0).expect("each slot set once");
            });
        }
    })
    .expect("workers joined");
    combine(&slots)
}

fn combine(slots: &[OnceLock<f64>]) -> f64 {
    let mut acc = 0.0;
    for s in slots {
        acc += s.get().copied().expect("every slot filled");
    }
    acc
}
