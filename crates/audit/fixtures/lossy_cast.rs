//! Fixture: trips `lossy-cast` (`as` narrowing onto small integer types).

pub fn node_id(raw: usize) -> u32 {
    raw as u32
}

pub fn widening_is_fine(x: u32) -> u64 {
    // Widening casts are not flagged.
    x as u64
}
