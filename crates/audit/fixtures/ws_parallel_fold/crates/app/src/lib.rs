//! Fixture: an undisciplined crossbeam spawn site whose reachable set
//! contains order-sensitive float accumulation two calls deep — the
//! Mutex-accumulator anti-pattern `parallel-float-reduction` exists to
//! catch. Audited via `wmcs-audit --root`, never compiled.

use std::sync::Mutex;

/// Spawns workers that race `+=` into shared float state, then calls
/// down to a float fold. Neither `OnceLock` nor `.set(…)` appear here,
/// so the spawn is undisciplined and the whole reachable set is scanned.
pub fn run(xs: &[f64]) -> f64 {
    let total = Mutex::new(0.0f64);
    crossbeam::thread::scope(|scope| {
        for chunk in xs.chunks(8) {
            scope.spawn(|_| {
                let partial = summarize(chunk);
                *total.lock().expect("accumulator lock") += partial;
            });
        }
    })
    .expect("workers joined");
    total.into_inner().expect("sole owner")
}

fn summarize(chunk: &[f64]) -> f64 {
    deep_fold(chunk)
}

fn deep_fold(chunk: &[f64]) -> f64 {
    chunk.iter().fold(0.0, |acc, x| acc + x)
}
