//! Fixture: trips `nondeterminism-source` (wall clock + entropy).
use std::time::Instant;

pub fn elapsed_nanos() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn entropy_seed() -> u64 {
    // A from_entropy call in result-affecting code is exactly the bug class.
    let rng = from_entropy();
    rng
}

fn from_entropy() -> u64 {
    0
}
