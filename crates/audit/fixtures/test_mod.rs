//! Fixture: violations inside `#[cfg(test)]` are exempt from the
//! determinism rules; the file is clean when scanned as Lib.

pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unwraps_and_hashes_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u64, double(1));
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert!((0.5f64 - 0.5).abs() < 1e-9);
    }
}
