//! Fixture: trips `nondeterministic-iteration` (HashMap + HashSet).
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u64]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
