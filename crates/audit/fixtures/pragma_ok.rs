//! Fixture: justified pragmas suppressing real violations — clean.

// wmcs-audit: allow(nondeterministic-iteration): lookup-only memo table; iteration order never observed.
use std::collections::HashMap;

// wmcs-audit: allow(nondeterministic-iteration): lookup-only memo table; iteration order never observed.
pub fn memo() -> HashMap<u64, f64> {
    // wmcs-audit: allow(nondeterministic-iteration): lookup-only memo table; iteration order never observed.
    HashMap::new()
}
