//! Fixture: pragma with no justification — the pragma itself is a violation,
//! and the suppression is void so the underlying violation also fires.
use std::collections::HashSet;
// wmcs-audit: allow(nondeterministic-iteration)

pub fn set() -> HashSet<u64> {
    HashSet::new()
}
