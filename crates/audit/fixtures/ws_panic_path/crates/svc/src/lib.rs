//! Fixture: a service ingestion API with panic sites and no committed
//! baseline — every site is "new", so `panic-path` must fail. Audited
//! via `wmcs-audit --root`, never compiled.

/// Stand-in for the real multi-group service.
pub struct MulticastService {
    data: Vec<u32>,
}

impl MulticastService {
    /// Ingestion entry point: one indexing site, one `.expect(…)` site,
    /// plus a panic reachable one call down.
    pub fn step(&self, i: usize) -> u32 {
        let x = self.data[i];
        let y = self.data.first().expect("non-empty batch");
        x + checked(*y)
    }
}

fn checked(v: u32) -> u32 {
    if v > 1_000 {
        panic!("bid out of range");
    }
    v
}
