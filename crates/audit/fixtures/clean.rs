//! Fixture: idiomatic library code — no violations under any rule.
use std::collections::BTreeMap;

/// Deterministic tally: BTreeMap iteration order is the key order.
pub fn tally(xs: &[u64]) -> BTreeMap<u64, usize> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn widest(costs: &[f64]) -> f64 {
    costs
        .iter()
        .cloned()
        .reduce(f64::max)
        .expect("caller guarantees a non-empty cost slice")
}
