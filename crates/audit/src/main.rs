//! The `wmcs-audit` binary: scan the workspace (or explicit files) and
//! exit non-zero on violations.
//!
//! ```text
//! wmcs-audit                     # audit the whole workspace
//! wmcs-audit --list-rules        # print the rule table
//! wmcs-audit --class lib F.rs    # audit explicit files under a class
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wmcs_audit::{audit_workspace, scan_file, FileClass, Violation, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut class = FileClass::Lib;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--list-rules" => {
                for r in RULES {
                    println!("{:<30} {}", r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--class" => {
                i += 1;
                class = match args.get(i).map(String::as_str) {
                    Some("lib") => FileClass::Lib,
                    Some("bin") => FileClass::Bin,
                    Some("test") => FileClass::Test,
                    other => {
                        eprintln!("wmcs-audit: bad --class {other:?} (lib|bin|test)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!("usage: wmcs-audit [--list-rules] [--class lib|bin|test] [FILES…]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("wmcs-audit: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
        i += 1;
    }

    let (violations, scanned) = if files.is_empty() {
        // Workspace root: two levels up from this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        match audit_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("wmcs-audit: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all: Vec<Violation> = Vec::new();
        for f in &files {
            let src = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("wmcs-audit: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            };
            all.extend(scan_file(&f.display().to_string(), &src, class));
        }
        let n = files.len();
        (all, n)
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "wmcs-audit: clean ({scanned} files scanned, {} rules)",
            RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "wmcs-audit: {} violation(s) in {scanned} files scanned",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
