//! The `wmcs-audit` binary: scan the workspace (or explicit files) and
//! exit non-zero on violations.
//!
//! ```text
//! wmcs-audit                       # audit the whole workspace
//! wmcs-audit --json                # machine-readable report on stdout
//! wmcs-audit --json=audit.json     # report to a file, human lines on stdout
//! wmcs-audit --graph               # dump the call graph and exit
//! wmcs-audit --root DIR            # audit a different workspace root
//! wmcs-audit --write-panic-baseline  # regenerate crates/audit/panic_baseline.txt
//! wmcs-audit --list-rules          # print the rule table
//! wmcs-audit --class lib F.rs      # token-rule audit of explicit files
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
// wmcs-audit: allow(nondeterminism-source): wall-clock here is a stderr diagnostic only
use std::time::Instant;
use wmcs_audit::analyses::panic_path;
use wmcs_audit::{
    audit_parsed, parse_workspace, scan_file, FileClass, Violation, ANALYSIS_RULES, RULES,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut class = FileClass::Lib;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut root_override: Option<PathBuf> = None;
    let mut json: Option<Option<PathBuf>> = None;
    let mut dump_graph = false;
    let mut write_baseline = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--list-rules" => {
                for r in RULES.iter().chain(ANALYSIS_RULES.iter()) {
                    println!("{:<30} {}", r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--class" => {
                i += 1;
                class = match args.get(i).map(String::as_str) {
                    Some("lib") => FileClass::Lib,
                    Some("bin") => FileClass::Bin,
                    Some("test") => FileClass::Test,
                    other => {
                        eprintln!("wmcs-audit: bad --class {other:?} (lib|bin|test)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(d) => root_override = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("wmcs-audit: --root needs a directory");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => json = Some(None),
            "--graph" => dump_graph = true,
            "--write-panic-baseline" => write_baseline = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: wmcs-audit [--list-rules] [--json[=PATH]] [--graph] [--root DIR] \
                     [--write-panic-baseline] [--class lib|bin|test] [FILES…]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--json=") => {
                json = Some(Some(PathBuf::from(&flag["--json=".len()..])));
            }
            flag if flag.starts_with("--") => {
                eprintln!("wmcs-audit: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
        i += 1;
    }

    // Explicit-files mode: token rules only (no workspace to parse).
    if !files.is_empty() {
        let mut all: Vec<Violation> = Vec::new();
        for f in &files {
            let src = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("wmcs-audit: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            };
            all.extend(scan_file(&f.display().to_string(), &src, class));
        }
        for v in &all {
            println!("{v}");
        }
        return if all.is_empty() {
            println!(
                "wmcs-audit: clean ({} files scanned, {} rules)",
                files.len(),
                RULES.len()
            );
            ExitCode::SUCCESS
        } else {
            println!(
                "wmcs-audit: {} violation(s) in {} files scanned",
                all.len(),
                files.len()
            );
            ExitCode::FAILURE
        };
    }

    // Workspace mode: default root is two levels up from this crate's
    // manifest; --root overrides (used by the fixture tests).
    let root = root_override.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    #[allow(clippy::disallowed_methods)]
    // wmcs-audit: allow(nondeterminism-source): timing goes to stderr, never into verdicts
    let t0 = Instant::now();
    let ws = match parse_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("wmcs-audit: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if dump_graph {
        println!("{}", ws.graph.dump());
        eprintln!(
            "wmcs-audit: {} functions, {} call edges in {} files",
            ws.graph.nodes.len(),
            ws.graph.n_edges(),
            ws.files.len()
        );
        return ExitCode::SUCCESS;
    }

    if write_baseline {
        let path = root.join(panic_path::BASELINE_PATH);
        let body = panic_path::render_baseline(&ws);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("wmcs-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wmcs-audit: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let report = audit_parsed(&ws);
    let elapsed_ms = t0.elapsed().as_millis();

    match &json {
        Some(None) => {
            // Pure JSON on stdout for pipeline consumption.
            println!("{}", report.to_json());
        }
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("wmcs-audit: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            for v in &report.violations {
                println!("{v}");
            }
        }
        None => {
            for v in &report.violations {
                println!("{v}");
            }
        }
    }
    eprintln!(
        "wmcs-audit: {} files, {} functions, {} call edges, {} rule(s) + {} analyses in {} ms",
        report.files_scanned,
        report.functions,
        report.call_edges,
        RULES.len(),
        ANALYSIS_RULES.len(),
        elapsed_ms
    );
    if report.violations.is_empty() {
        if json.is_none() {
            println!(
                "wmcs-audit: clean ({} files scanned, {} rules)",
                report.files_scanned,
                RULES.len() + ANALYSIS_RULES.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if json.is_none() {
            println!(
                "wmcs-audit: {} violation(s) in {} files scanned",
                report.violations.len(),
                report.files_scanned
            );
        }
        ExitCode::FAILURE
    }
}
