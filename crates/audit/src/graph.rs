//! The cross-crate call graph the v2 analyses run reachability over.
//!
//! Nodes are every `fn` item the [`crate::parser`] found across the
//! workspace; edges are call sites resolved by name with path narrowing:
//!
//! * `Path::name(…)` — the alias-resolved path must suffix-match the
//!   callee's qualified path (so `UT::mst_tree` resolved through
//!   `use … UniversalTree as UT` reaches `UniversalTree::mst_tree`);
//! * `.name(…)` method calls — every impl/trait function of that name is
//!   a candidate (the receiver type is unknown at token level);
//! * bare `name(…)` calls — free functions of that name, preferring the
//!   same module, then the same crate, then anywhere.
//!
//! This is a deliberate **over-approximation**: an edge that might exist
//! does. For reachability-based *safety* analyses (panic surface,
//! parallel-reduction determinism) over-approximation errs toward
//! flagging, never toward silently missing a path — the correct
//! direction for a CI gate. Resolution never consults types, so the
//! graph is stable under formatting and import shuffles, and building it
//! is `O(tokens + calls · candidates)` with everything sorted for
//! deterministic output.

use crate::parser::ParsedFile;
use std::collections::BTreeMap;

/// A function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Index of the `fn` item within that file's [`ParsedFile::fns`].
    pub item: usize,
    /// Fully-qualified path (`crate::module::Type::name`).
    pub qual: String,
}

/// The workspace call graph: nodes, adjacency, and name indices.
#[derive(Debug)]
pub struct CallGraph {
    /// All function nodes, in (file, item) order.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` = sorted, deduplicated callee node indices of node `i`.
    pub edges: Vec<Vec<u32>>,
}

impl CallGraph {
    /// Build the graph over a parsed workspace.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut nodes: Vec<FnNode> = Vec::new();
        // node index of (file, item).
        let mut by_loc: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        // bare name → node indices, split by "has a self type".
        let mut methods: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ii, item) in f.fns.iter().enumerate() {
                let id = u32::try_from(nodes.len()).expect("node count fits in u32");
                by_loc.insert((fi, ii), id);
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    qual: item.qual.clone(),
                });
            }
        }
        for (id, n) in nodes.iter().enumerate() {
            let id = u32::try_from(id).expect("node count fits in u32");
            let item = &files[n.file].fns[n.item];
            if item.self_ty.is_some() {
                methods.entry(item.name.as_str()).or_default().push(id);
            } else {
                free.entry(item.name.as_str()).or_default().push(id);
            }
        }

        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (fi, f) in files.iter().enumerate() {
            for call in &f.calls {
                let Some(owner_item) = call.owner else {
                    continue;
                };
                let from = by_loc[&(fi, owner_item)];
                let mut push = |to: u32| edges[from as usize].push(to);
                if call.is_method {
                    // Unknown receiver: every impl fn of this name.
                    if let Some(cands) = methods.get(call.name.as_str()) {
                        for &c in cands {
                            push(c);
                        }
                    }
                } else if call.path.len() >= 2 {
                    // Qualified call: the resolved path must suffix-match
                    // the candidate's qualified path (checked over both
                    // method and free candidates — `Type::assoc(…)` and
                    // `module::free(…)` are both written this way).
                    for table in [&methods, &free] {
                        if let Some(cands) = table.get(call.name.as_str()) {
                            for &c in cands {
                                if path_suffix_matches(&call.path, &nodes[c as usize].qual) {
                                    push(c);
                                }
                            }
                        }
                    }
                } else if let Some(cands) = free.get(call.name.as_str()) {
                    // Bare call: prefer same file, then same crate.
                    let same_file: Vec<u32> = cands
                        .iter()
                        .copied()
                        .filter(|&c| nodes[c as usize].file == fi)
                        .collect();
                    let chosen: Vec<u32> = if same_file.is_empty() {
                        let krate = f.module.first();
                        let same_crate: Vec<u32> = cands
                            .iter()
                            .copied()
                            .filter(|&c| files[nodes[c as usize].file].module.first() == krate)
                            .collect();
                        if same_crate.is_empty() {
                            cands.clone()
                        } else {
                            same_crate
                        }
                    } else {
                        same_file
                    };
                    for c in chosen {
                        push(c);
                    }
                }
            }
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        CallGraph { nodes, edges }
    }

    /// Node index of the function item `(file, item)`, if present.
    pub fn node_of(&self, file: usize, item: usize) -> Option<u32> {
        // nodes are in (file, item) order — binary search.
        self.nodes
            .binary_search_by_key(&(file, item), |n| (n.file, n.item))
            .ok()
            .map(|i| u32::try_from(i).expect("node count fits in u32"))
    }

    /// Every node reachable from `roots` (inclusive), as a dense mask.
    pub fn reachable(&self, roots: &[u32]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            if !seen[r as usize] {
                seen[r as usize] = true;
                stack.push(r);
            }
        }
        while let Some(v) = stack.pop() {
            for &w in &self.edges[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }

    /// Total edge count (after dedup).
    pub fn n_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Render the graph as sorted `caller -> callee` lines (the binary's
    /// `--graph` dump; stable for diffing across runs).
    pub fn dump(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for &c in &self.edges[i] {
                lines.push(format!("{} -> {}", n.qual, self.nodes[c as usize].qual));
            }
        }
        lines.sort();
        lines.join("\n")
    }
}

/// Does a written (alias-resolved) call path match a qualified function
/// path? `path` matches if its segments are a suffix-aligned subsequence
/// anchored at the end of `qual` — e.g. `[UniversalTree, mst_tree]` and
/// `[wmcs_wireless, universal, UniversalTree, mst_tree]` match, as does
/// the fully-written form; `[OtherType, mst_tree]` does not.
pub fn path_suffix_matches(path: &[String], qual: &str) -> bool {
    let qsegs: Vec<&str> = qual.split("::").collect();
    let mut q = qsegs.iter().rev();
    let mut p = path.iter().rev();
    // The called name itself must match exactly…
    let (Some(pn), Some(qn)) = (p.next(), q.next()) else {
        return false;
    };
    if pn != qn {
        return false;
    }
    // …and every remaining written segment must appear in the qualified
    // path, in order, walking outward — written paths legitimately skip
    // module segments (`crate_b::middle` vs `crate_b::lib::middle`).
    'outer: for seg in p {
        for cand in q.by_ref() {
            if seg == cand {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileClass;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn ws(files: &[(&str, &[&str], &str)]) -> Vec<ParsedFile> {
        files
            .iter()
            .map(|(rel, module, src)| {
                parse_file(
                    rel,
                    lex(src),
                    module.iter().map(|s| s.to_string()).collect(),
                    FileClass::Lib,
                )
            })
            .collect()
    }

    #[test]
    fn cross_crate_reachability_through_two_hops() {
        let files = ws(&[
            (
                "crates/a/src/lib.rs",
                &["crate_a", "lib"],
                "pub fn entry() { crate_b::middle(); }",
            ),
            (
                "crates/b/src/lib.rs",
                &["crate_b", "lib"],
                "pub fn middle() { deep(); } fn deep() {}",
            ),
        ]);
        let g = CallGraph::build(&files);
        let entry = g
            .nodes
            .iter()
            .position(|n| n.qual.ends_with("entry"))
            .expect("entry node");
        let seen = g.reachable(&[u32::try_from(entry).expect("fits")]);
        let deep = g
            .nodes
            .iter()
            .position(|n| n.qual.ends_with("deep"))
            .expect("deep node");
        assert!(seen[deep], "entry must reach deep through middle");
    }

    #[test]
    fn aliased_assoc_call_resolves_to_the_type() {
        let files = ws(&[
            (
                "crates/a/src/lib.rs",
                &["crate_a", "lib"],
                "use crate_b::T as Alias; fn f() { Alias::make(); }",
            ),
            (
                "crates/b/src/lib.rs",
                &["crate_b", "lib"],
                "pub struct T; impl T { pub fn make() {} } \
                 pub struct Other; impl Other { pub fn make() {} }",
            ),
        ]);
        let g = CallGraph::build(&files);
        let f = g
            .nodes
            .iter()
            .position(|n| n.qual.ends_with("::f"))
            .expect("f");
        let callees: Vec<&str> = g.edges[f]
            .iter()
            .map(|&c| g.nodes[c as usize].qual.as_str())
            .collect();
        assert_eq!(callees, ["crate_b::lib::T::make"], "alias must narrow to T");
    }

    #[test]
    fn method_calls_over_approximate_all_impls() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            &["crate_a", "lib"],
            "struct A; impl A { fn go(&self) {} } struct B; impl B { fn go(&self) {} } \
             fn f(a: &A) { a.go(); }",
        )]);
        let g = CallGraph::build(&files);
        let f = g
            .nodes
            .iter()
            .position(|n| n.qual.ends_with("::f"))
            .expect("f");
        assert_eq!(g.edges[f].len(), 2, "both impls are candidates");
    }

    #[test]
    fn bare_calls_prefer_same_file_then_same_crate() {
        let files = ws(&[
            (
                "crates/a/src/lib.rs",
                &["crate_a", "lib"],
                "fn helper() {} fn f() { helper(); }",
            ),
            (
                "crates/b/src/lib.rs",
                &["crate_b", "lib"],
                "pub fn helper() {}",
            ),
        ]);
        let g = CallGraph::build(&files);
        let f = g
            .nodes
            .iter()
            .position(|n| n.qual.ends_with("::f"))
            .expect("f");
        let callees: Vec<&str> = g.edges[f]
            .iter()
            .map(|&c| g.nodes[c as usize].qual.as_str())
            .collect();
        assert_eq!(callees, ["crate_a::lib::helper"]);
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            &["crate_a", "lib"],
            "fn a() { b(); c(); } fn b() {} fn c() {}",
        )]);
        let g = CallGraph::build(&files);
        let d = g.dump();
        assert!(d.contains("crate_a::lib::a -> crate_a::lib::b"));
        let mut lines: Vec<&str> = d.lines().collect();
        let sorted = {
            let mut s = lines.clone();
            s.sort();
            s
        };
        assert_eq!(lines, sorted);
        lines.dedup();
        assert_eq!(lines.len(), g.n_edges());
    }
}
