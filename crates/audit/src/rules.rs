//! The audit rule registry.
//!
//! Every rule is motivated by a concrete reproducibility invariant this
//! workspace gates in CI (exact budget balance, warm ≡ cold byte-identity,
//! thread-count-independent sweep tables — see ROADMAP "Verification
//! posture"). The table here is the single source of truth: the binary's
//! `--list-rules` output, pragma validation, and README/DESIGN.md rule
//! documentation all derive from it.

/// Where a rule applies (see `FileClass` in the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library sources only (`crates/*/src`, root `src/`), outside
    /// `#[cfg(test)]` regions.
    Lib,
    /// Library and binary sources, outside `#[cfg(test)]` regions.
    LibAndBin,
    /// Every audited file, including tests, benches and examples.
    Everywhere,
    /// Applied by a workspace-level analysis over the call graph, not by
    /// the per-file token scanner; file scoping is the analysis's own
    /// business (see `crate::analyses`).
    Workspace,
}

/// One statically enforced invariant.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Rule name, as used in diagnostics and `allow(…)` pragmas.
    pub name: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
    /// Which files the rule scans.
    pub scope: Scope,
}

/// No `HashMap`/`HashSet` in result-affecting code: hashed iteration order
/// is nondeterministic and has already caused real verdict drift of the
/// EPS-tie-break class (PR 3).
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// No inline `1e-9`-style epsilon literals: every tolerance is a named,
/// documented constant in `wmcs_geom::float`.
pub const FLOAT_TOLERANCE_LITERAL: &str = "float-tolerance-literal";
/// No bare `.unwrap()` in library crates: use `.expect("invariant …")` or
/// propagate the error.
pub const UNWRAP_IN_LIB: &str = "unwrap-in-lib";
/// No `as` narrowing onto small integer types: use `::try_from` (or a
/// pragma proving the range) ahead of the u32 node-id memory diet.
pub const LOSSY_CAST: &str = "lossy-cast";
/// No wall-clock or entropy sources in result-affecting code paths.
pub const NONDETERMINISM_SOURCE: &str = "nondeterminism-source";
/// Every `unsafe` needs an adjacent `// SAFETY:` comment.
pub const UNSAFE_WITHOUT_SAFETY_COMMENT: &str = "unsafe-without-safety-comment";
/// Meta rule: malformed, unjustified, unknown-rule or unused
/// `wmcs-audit:` pragmas are themselves violations.
pub const AUDIT_PRAGMA: &str = "audit-pragma";
/// No order-sensitive float accumulation reachable from an undisciplined
/// thread-spawn site (see `analyses::parallel_reduction`).
pub const PARALLEL_FLOAT_REDUCTION: &str = "parallel-float-reduction";
/// The panic surface of the service ingestion API is pinned to a
/// committed baseline (see `analyses::panic_path`).
pub const PANIC_PATH: &str = "panic-path";
/// Banned symbols, matched on alias-resolved call paths (see
/// `analyses::forbidden_api`).
pub const FORBIDDEN_API: &str = "forbidden-api";

/// The six content rules, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        name: NONDETERMINISTIC_ITERATION,
        summary: "no HashMap/HashSet in result-affecting crates; use BTreeMap/BTreeSet \
                  or a sorted Vec so iteration order can never reach a verdict",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: FLOAT_TOLERANCE_LITERAL,
        summary: "no inline 1e-9-style tolerance literals outside wmcs_geom::float; \
                  comparisons go through named, documented constants (EPS, VP_TOL, \
                  BB_TOL, SP_TOL, REL_TOL, FEAS_TOL)",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: UNWRAP_IN_LIB,
        summary: "no bare .unwrap() in library crates; state the invariant with \
                  .expect(\"…\") or propagate the error (bins/tests/benches exempt)",
        scope: Scope::Lib,
    },
    Rule {
        name: LOSSY_CAST,
        summary: "no `as` narrowing onto u8/u16/u32/i8/i16/i32; use ::try_from with \
                  an invariant message (the u32 node-id layer routes through the one \
                  documented NodeId::try_from helper)",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: NONDETERMINISM_SOURCE,
        summary: "no thread_rng/from_entropy/Instant/SystemTime in result-affecting \
                  code; wall-clock and entropy must never flow into verdicts or shares",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: UNSAFE_WITHOUT_SAFETY_COMMENT,
        summary: "every `unsafe` carries a `// SAFETY:` comment within the three \
                  preceding lines (applies everywhere, tests included)",
        scope: Scope::Everywhere,
    },
];

/// The three workspace-level analysis rules, in diagnostic order. Their
/// summaries live with the analyses themselves (`crate::analyses`); the
/// entries here exist so `--list-rules` and pragma validation see one
/// uniform registry.
pub const ANALYSIS_RULES: &[Rule] = &[
    Rule {
        name: PARALLEL_FLOAT_REDUCTION,
        summary: "no order-sensitive float accumulation (fold/sum/reduce, += on float \
                  or lock-guarded state) reachable from a thread-spawn site that does \
                  not place results in per-item OnceLock slots",
        scope: Scope::Workspace,
    },
    Rule {
        name: PANIC_PATH,
        summary: "the panic surface reachable from the MulticastService/GroupSession \
                  public API matches crates/audit/panic_baseline.txt; regenerate with \
                  --write-panic-baseline",
        scope: Scope::Workspace,
    },
    Rule {
        name: FORBIDDEN_API,
        summary: "no calls to banned symbols (removed substrate constructor shims, \
                  std hash collections), matched on use-alias-resolved paths",
        scope: Scope::Workspace,
    },
];

/// Look a rule up by pragma name, across both token rules and analyses.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES
        .iter()
        .chain(ANALYSIS_RULES.iter())
        .find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(RULES.len(), 6);
        assert_eq!(ANALYSIS_RULES.len(), 3);
        assert!(rule_by_name(UNWRAP_IN_LIB).is_some());
        assert!(rule_by_name(PANIC_PATH).is_some());
        assert!(rule_by_name(FORBIDDEN_API).is_some());
        assert!(rule_by_name("no-such-rule").is_none());
        // Names are kebab-case and unique across both tables.
        let all: Vec<&Rule> = RULES.iter().chain(ANALYSIS_RULES.iter()).collect();
        for (i, r) in all.iter().enumerate() {
            assert!(r.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(all[i + 1..].iter().all(|s| s.name != r.name));
        }
        for r in ANALYSIS_RULES {
            assert_eq!(r.scope, Scope::Workspace);
        }
    }
}
