//! The audit rule registry.
//!
//! Every rule is motivated by a concrete reproducibility invariant this
//! workspace gates in CI (exact budget balance, warm ≡ cold byte-identity,
//! thread-count-independent sweep tables — see ROADMAP "Verification
//! posture"). The table here is the single source of truth: the binary's
//! `--list-rules` output, pragma validation, and README/DESIGN.md rule
//! documentation all derive from it.

/// Where a rule applies (see `FileClass` in the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library sources only (`crates/*/src`, root `src/`), outside
    /// `#[cfg(test)]` regions.
    Lib,
    /// Library and binary sources, outside `#[cfg(test)]` regions.
    LibAndBin,
    /// Every audited file, including tests, benches and examples.
    Everywhere,
}

/// One statically enforced invariant.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Rule name, as used in diagnostics and `allow(…)` pragmas.
    pub name: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
    /// Which files the rule scans.
    pub scope: Scope,
}

/// No `HashMap`/`HashSet` in result-affecting code: hashed iteration order
/// is nondeterministic and has already caused real verdict drift of the
/// EPS-tie-break class (PR 3).
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// No inline `1e-9`-style epsilon literals: every tolerance is a named,
/// documented constant in `wmcs_geom::float`.
pub const FLOAT_TOLERANCE_LITERAL: &str = "float-tolerance-literal";
/// No bare `.unwrap()` in library crates: use `.expect("invariant …")` or
/// propagate the error.
pub const UNWRAP_IN_LIB: &str = "unwrap-in-lib";
/// No `as` narrowing onto small integer types: use `::try_from` (or a
/// pragma proving the range) ahead of the u32 node-id memory diet.
pub const LOSSY_CAST: &str = "lossy-cast";
/// No wall-clock or entropy sources in result-affecting code paths.
pub const NONDETERMINISM_SOURCE: &str = "nondeterminism-source";
/// Every `unsafe` needs an adjacent `// SAFETY:` comment.
pub const UNSAFE_WITHOUT_SAFETY_COMMENT: &str = "unsafe-without-safety-comment";
/// Meta rule: malformed, unjustified, unknown-rule or unused
/// `wmcs-audit:` pragmas are themselves violations.
pub const AUDIT_PRAGMA: &str = "audit-pragma";

/// The six content rules, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        name: NONDETERMINISTIC_ITERATION,
        summary: "no HashMap/HashSet in result-affecting crates; use BTreeMap/BTreeSet \
                  or a sorted Vec so iteration order can never reach a verdict",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: FLOAT_TOLERANCE_LITERAL,
        summary: "no inline 1e-9-style tolerance literals outside wmcs_geom::float; \
                  comparisons go through named, documented constants (EPS, VP_TOL, \
                  BB_TOL, SP_TOL, REL_TOL, FEAS_TOL)",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: UNWRAP_IN_LIB,
        summary: "no bare .unwrap() in library crates; state the invariant with \
                  .expect(\"…\") or propagate the error (bins/tests/benches exempt)",
        scope: Scope::Lib,
    },
    Rule {
        name: LOSSY_CAST,
        summary: "no `as` narrowing onto u8/u16/u32/i8/i16/i32; use ::try_from with \
                  an invariant message (the u32 node-id layer routes through the one \
                  documented NodeId::try_from helper)",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: NONDETERMINISM_SOURCE,
        summary: "no thread_rng/from_entropy/Instant/SystemTime in result-affecting \
                  code; wall-clock and entropy must never flow into verdicts or shares",
        scope: Scope::LibAndBin,
    },
    Rule {
        name: UNSAFE_WITHOUT_SAFETY_COMMENT,
        summary: "every `unsafe` carries a `// SAFETY:` comment within the three \
                  preceding lines (applies everywhere, tests included)",
        scope: Scope::Everywhere,
    },
];

/// Look a rule up by pragma name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(RULES.len(), 6);
        assert!(rule_by_name(UNWRAP_IN_LIB).is_some());
        assert!(rule_by_name("no-such-rule").is_none());
        // Names are kebab-case and unique.
        for (i, r) in RULES.iter().enumerate() {
            assert!(r.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(RULES[i + 1..].iter().all(|s| s.name != r.name));
        }
    }
}
