//! # wmcs-audit — workspace static analysis for determinism & numeric safety
//!
//! Every guarantee this repository sells — exact budget-balance and
//! voluntary-participation gates, warm ≡ cold byte-identity,
//! thread-count-independent sweep tables — rests on determinism invariants
//! that the compiler does not enforce. PR 3's EPS tie-break drift in
//! `largest_efficient_set` was exactly such a bug: semantically invisible,
//! caught only because a byte-identity gate happened to cover it. This
//! crate enforces the invariant *class* statically, at CI time.
//!
//! ## How it works
//!
//! Two layers feed one diagnostic stream:
//!
//! * **Token rules** — a comment- and string-aware token scanner
//!   ([`lexer`]) walks every workspace `.rs` source; the registry
//!   ([`rules::RULES`]) defines six per-file invariants applied by the
//!   [`engine`] with build-role classification (library / binary / test)
//!   and `#[cfg(test)]` exemption.
//! * **Workspace analyses** — a lightweight item parser ([`parser`])
//!   extracts every `fn`, call site and `use` alias; a cross-crate call
//!   graph ([`graph`]) joins them; the three [`analyses`] run
//!   reachability over it: `parallel-float-reduction` (order-sensitive
//!   float accumulation below an undisciplined thread-spawn),
//!   `panic-path` (the service API's panic surface, pinned to a committed
//!   baseline), and `forbidden-api` (banned symbols matched on
//!   alias-resolved paths).
//!
//! Both layers honour inline pragmas for vetted exceptions:
//!
//! ```text
//! // wmcs-audit: allow(<rule>): <justification, ≥ 10 chars>
//! ```
//!
//! A pragma covers its own line and the next. A pragma without a real
//! justification, naming an unknown rule, or suppressing nothing is itself
//! a violation (`audit-pragma`), so the exception list can never rot
//! silently.
//!
//! The `wmcs-audit` binary (`cargo run -p wmcs-audit`) exits non-zero on
//! any violation; `--json` emits the machine-readable [`AuditReport`]
//! that CI feeds through a GitHub problem matcher, and `--graph` dumps
//! the call graph for inspection. See DESIGN.md §5 for the rule table.
//!
//! ## Adding an analysis
//!
//! 1. **Name the rule.** Add a `pub const MY_RULE: &str = "my-rule"`
//!    kebab-case constant in [`rules`] and a row in
//!    [`rules::ANALYSIS_RULES`] with `Scope::Workspace` — that one table
//!    entry makes `--list-rules` print it and `allow(my-rule)` pragmas
//!    validate.
//! 2. **Implement [`analyses::Analysis`]** in a new
//!    `src/analyses/my_rule.rs`: `rule()` returns the constant, `run()`
//!    takes the parsed [`Workspace`] (files, token streams, `fn` items,
//!    call graph) and returns raw [`Violation`]s anchored to `file:line`.
//!    Do not apply pragmas yourself — the engine suppresses and tracks
//!    unused pragmas uniformly for both layers.
//! 3. **Register it** in [`analyses::ANALYSES`]. Order there is
//!    diagnostic order.
//! 4. **Prove it fires.** Add a failing mini-workspace under
//!    `crates/audit/fixtures/` (excluded from the self-audit by
//!    [`classify`]) and a test in `tests/analyses_cli.rs` that runs the
//!    real binary with `--root` against it, asserting exit code 1 and the
//!    `file:line` diagnostic; the workspace self-audit test then proves
//!    it stays quiet on clean code.
//!
//! Analyses should over-approximate: on a reachability question, a
//! spurious edge costs a pragma with a written justification, a missing
//! edge costs a silent determinism bug in a shipped table.

#![deny(missing_docs)]

pub mod analyses;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use analyses::{Analysis, ANALYSES};
pub use engine::{
    audit_parsed, audit_workspace, classify, parse_workspace, scan_file, workspace_files,
    AuditReport, FileClass, Violation, Workspace,
};
pub use graph::{CallGraph, FnNode};
pub use parser::{parse_file, CallSite, FnItem, ParsedFile};
pub use rules::{rule_by_name, Rule, Scope, ANALYSIS_RULES, RULES};
