//! # wmcs-audit — workspace determinism & numeric-safety lint pass
//!
//! Every guarantee this repository sells — exact budget-balance and
//! voluntary-participation gates, warm ≡ cold byte-identity,
//! thread-count-independent sweep tables — rests on determinism invariants
//! that the compiler does not enforce. PR 3's EPS tie-break drift in
//! `largest_efficient_set` was exactly such a bug: semantically invisible,
//! caught only because a byte-identity gate happened to cover it. This
//! crate enforces the invariant *class* statically, at CI time.
//!
//! ## How it works
//!
//! A comment- and string-aware token scanner ([`lexer`]) walks every
//! workspace `.rs` source; a rule registry ([`rules`]) defines six
//! invariants; the engine ([`engine`]) classifies files by build role
//! (library / binary / test), exempts `#[cfg(test)]` modules from the
//! result-determinism rules, and honours inline pragmas for vetted
//! exceptions:
//!
//! ```text
//! // wmcs-audit: allow(<rule>): <justification, ≥ 10 chars>
//! ```
//!
//! A pragma covers its own line and the next. A pragma without a real
//! justification, naming an unknown rule, or suppressing nothing is itself
//! a violation (`audit-pragma`), so the exception list can never rot
//! silently.
//!
//! The `wmcs-audit` binary (`cargo run -p wmcs-audit`) exits non-zero on
//! any violation and is wired into CI next to clippy (which backs the
//! rules it can express via `clippy.toml` `disallowed-types` /
//! `disallowed-methods`) — see DESIGN.md §5 for the rule table.

#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{audit_workspace, classify, scan_file, workspace_files, FileClass, Violation};
pub use rules::{rule_by_name, Rule, Scope, RULES};
