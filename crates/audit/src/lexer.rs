//! A minimal, lossless-enough Rust lexer for static auditing.
//!
//! The audit rules only need to see *code* identifiers, number literals and
//! punctuation, plus the comments (for pragmas and `SAFETY:` annotations) —
//! while never being fooled by rule-triggering text inside string literals,
//! doc comments, or char literals. This lexer classifies exactly that much:
//! it is not a full Rust grammar, but it handles nested block comments, raw
//! strings (`r#"…"#`, any hash depth), byte strings, escapes, lifetimes vs
//! char literals, and exponent-form float literals (`1e-9`, `2.5E-12`),
//! which is everything the rules in this crate key on.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unwrap`, `unsafe`, `as`, …).
    Ident,
    /// Numeric literal, including float exponent forms and suffixes.
    Number,
    /// String literal of any flavour (plain, raw, byte); text excludes quotes.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Line comment, `//` included in the text (covers `///` and `//!`).
    LineComment,
    /// Block comment (possibly nested), delimiters included in the text.
    BlockComment,
    /// Any single punctuation character.
    Punct,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (see per-kind notes on [`TokKind`]).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Lex `src` into audit tokens. Never fails: bytes the lexer does not
/// understand are emitted as single-character [`TokKind::Punct`] tokens, so
/// a syntactically broken file degrades to weaker auditing, not a crash.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            toks.push(tok(TokKind::LineComment, &chars[start..i], line));
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(tok(TokKind::BlockComment, &chars[start..i], start_line));
            continue;
        }
        // Raw strings: r"…", r#"…"#, br"…", br#"…"# (any hash depth).
        if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
            let after_prefix = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while chars.get(after_prefix + hashes) == Some(&'#') {
                hashes += 1;
            }
            if chars.get(after_prefix + hashes) == Some(&'"') {
                let start_line = line;
                let mut j = after_prefix + hashes + 1;
                let body_start = j;
                let mut body_end = chars.len();
                while j < chars.len() {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if chars[j] == '"' && (0..hashes).all(|h| chars.get(j + 1 + h) == Some(&'#')) {
                        body_end = j;
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                toks.push(tok(TokKind::Str, &chars[body_start..body_end], start_line));
                i = j;
                continue;
            }
            // Not a raw string: fall through to identifier handling below.
        }
        // Byte strings / byte chars: b"…", b'…'.
        if c == 'b' && matches!(chars.get(i + 1), Some('"' | '\'')) {
            let quote = chars[i + 1];
            let (j, nl, body) = scan_quoted(&chars, i + 1, quote);
            let kind = if quote == '"' {
                TokKind::Str
            } else {
                TokKind::CharLit
            };
            toks.push(Tok {
                kind,
                text: body,
                line,
            });
            line += nl;
            i = j;
            continue;
        }
        // Plain strings.
        if c == '"' {
            let (j, nl, body) = scan_quoted(&chars, i, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text: body,
                line,
            });
            line += nl;
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = chars.get(i + 1) == Some(&'\\')
                || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''));
            if is_char {
                let (j, nl, body) = scan_quoted(&chars, i, '\'');
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: body,
                    line,
                });
                line += nl;
                i = j;
                continue;
            }
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(tok(TokKind::Lifetime, &chars[start..i], line));
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(tok(TokKind::Ident, &chars[start..i], line));
            continue;
        }
        // Numbers, including `1_000`, `0xff`, `1.5`, `1e-9`, `2.5E+3f64`.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
                i += 2;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() {
                    let ch = chars[i];
                    if ch.is_ascii_digit() || ch == '_' {
                        i += 1;
                    } else if ch == '.' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // Consume `.` only into `1.5`, never `1..n` / `1.max(…)`.
                        i += 1;
                    } else if matches!(ch, 'e' | 'E')
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        i += 2;
                    } else if matches!(ch, 'e' | 'E')
                        && matches!(chars.get(i + 1), Some('+' | '-'))
                        && chars.get(i + 2).is_some_and(|n| n.is_ascii_digit())
                    {
                        i += 3;
                    } else if ch.is_ascii_alphabetic() {
                        // Type suffix (`f64`, `u32`, `usize`).
                        while i < chars.len()
                            && (chars[i].is_ascii_alphanumeric() || chars[i] == '_')
                        {
                            i += 1;
                        }
                        break;
                    } else {
                        break;
                    }
                }
            }
            toks.push(tok(TokKind::Number, &chars[start..i], line));
            continue;
        }
        // Everything else: one punctuation character.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// True if a decimal number literal carries a negative exponent (`1e-9`).
pub fn has_negative_exponent(number_text: &str) -> bool {
    !number_text.starts_with("0x")
        && !number_text.starts_with("0X")
        && (number_text.contains("e-") || number_text.contains("E-"))
}

fn tok(kind: TokKind, chars: &[char], line: u32) -> Tok {
    Tok {
        kind,
        text: chars.iter().collect(),
        line,
    }
}

/// Scan a quoted literal starting at the opening quote `chars[open]`.
/// Returns `(index past the closing quote, newlines crossed, body text)`.
fn scan_quoted(chars: &[char], open: usize, quote: char) -> (usize, u32, String) {
    let mut j = open + 1;
    let mut newlines = 0u32;
    let body_start = j;
    let mut body_end = chars.len();
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            ch if ch == quote => {
                body_end = j;
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (
        j,
        newlines,
        chars[body_start..body_end.min(chars.len())]
            .iter()
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_rule_triggers() {
        let ts = kinds(r#"let s = "HashMap 1e-9 unwrap";"#);
        assert!(ts
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "HashMap" && t != "unwrap")));
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("HashMap")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let ts = kinds(r##"let s = r#"a "quoted" 1e-9"#; let t = 2;"##);
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quoted")));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Number && t == "2"));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = lex("/* a /* b */ c */\nlet x = 1;\n");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        let x = toks.iter().find(|t| t.text == "x").expect("ident x");
        assert_eq!(x.line, 2);
    }

    #[test]
    fn exponent_forms() {
        let toks = lex("let a = 1e-9; let b = 2.5E-12f64; let c = 1e9; let d = 0..n;");
        let nums: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Number).collect();
        assert_eq!(nums[0].text, "1e-9");
        assert!(has_negative_exponent(&nums[0].text));
        assert_eq!(nums[1].text, "2.5E-12f64");
        assert!(has_negative_exponent(&nums[1].text));
        assert!(!has_negative_exponent(&nums[2].text));
        // `0..n` must not swallow the range dots.
        assert_eq!(nums[3].text, "0");
    }

    #[test]
    fn method_call_on_int_is_not_merged() {
        let toks = lex("let a = 1.max(2);");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "max"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::CharLit && t.text == "x"));
    }

    #[test]
    fn comments_keep_their_text_for_pragmas() {
        let toks = lex("// wmcs-audit: allow(x): why\nlet y = 1;");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("wmcs-audit"));
        assert_eq!(toks[0].line, 1);
    }
}
