//! Panic-path reachability: the panic surface of the service ingestion
//! API, gated against a committed baseline.
//!
//! A panic inside `MulticastService::step` tears down a worker and, with
//! it, a whole batch of groups — in the production regime the roadmap
//! aims at, the ingestion path's panic surface is an availability
//! contract. This analysis computes it statically: starting from the
//! public API of the service layer (every `pub fn` of
//! [`ROOT_TYPES`]), it walks the call graph and records, per reachable
//! function, its **panic sites**:
//!
//! * slice/array indexing (`xs[i]`, `xs[a..b]`);
//! * `.expect(…)` and `.unwrap()` calls;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros;
//! * `assert!` / `assert_eq!` / `assert_ne!` macros (these stay armed in
//!   release builds; `debug_assert*` is deliberately *not* counted — it
//!   is the sanctioned invariant-check mechanism and vanishes from the
//!   release panic surface).
//!
//! Plain integer arithmetic is also a panic source under the workspace's
//! `overflow-checks = true` dev/test profile, but counting every `+`
//! would bury the signal; overflow is enforced *dynamically* by tier-1
//! running all numeric paths with checked arithmetic (see Cargo.toml).
//!
//! The surface is compared entry-by-entry against the committed baseline
//! `crates/audit/panic_baseline.txt` (`function kind count` lines,
//! sorted). A **new or grown** entry fails the audit at the offending
//! site's file:line; a **stale** entry (function shrank its surface or
//! disappeared) fails at the baseline line, so the file can never rot in
//! either direction. `wmcs-audit --write-panic-baseline` regenerates it;
//! the diff of that file in review *is* the panic-surface diff of the PR.

use super::{code_indices, is_punct, Analysis};
use crate::engine::{FileClass, Violation, Workspace};
use crate::lexer::{Tok, TokKind};
use crate::rules::PANIC_PATH;
use std::collections::BTreeMap;

/// Self-types whose `pub fn`s root the reachability walk: the service
/// ingestion API.
pub const ROOT_TYPES: &[&str] = &[
    "MulticastService",
    "GroupSession",
    "StreamService",
    "StreamHandle",
];

/// Workspace-relative path of the committed baseline.
pub const BASELINE_PATH: &str = "crates/audit/panic_baseline.txt";

/// The `panic-path` analysis (see module docs).
pub struct PanicPath;

/// Panic sites of one function: kind → (count, first line).
type Surface = BTreeMap<&'static str, (usize, u32)>;

impl Analysis for PanicPath {
    fn rule(&self) -> &'static str {
        PANIC_PATH
    }

    fn summary(&self) -> &'static str {
        "the panic surface (indexing, expect/unwrap, panic!/assert! macros) reachable \
         from the MulticastService/GroupSession public API must match the committed \
         crates/audit/panic_baseline.txt; regenerate with --write-panic-baseline"
    }

    fn run(&self, ws: &Workspace) -> Vec<Violation> {
        let current = reachable_surface(ws);
        if current.is_empty() && !ws.root.join(BASELINE_PATH).exists() {
            // No service API in this tree and no baseline: nothing to gate
            // (fixture mini-workspaces without a service layer).
            return Vec::new();
        }
        let baseline_src = std::fs::read_to_string(ws.root.join(BASELINE_PATH)).unwrap_or_default();
        let mut baseline: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
        for (li, line) in baseline_src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(f), Some(k), Some(c)) = (parts.next(), parts.next(), parts.next()) {
                if let Ok(c) = c.parse::<usize>() {
                    let lno = u32::try_from(li + 1).unwrap_or(u32::MAX);
                    baseline.insert((f.to_string(), k.to_string()), (c, lno));
                }
            }
        }

        let mut violations = Vec::new();
        for (qual, (file_rel, surface)) in &current {
            for (kind, (count, line)) in surface {
                let base = baseline.remove(&(qual.clone(), kind.to_string()));
                let allowed = base.map_or(0, |(c, _)| c);
                if *count > allowed {
                    violations.push(Violation {
                        file: file_rel.clone(),
                        line: *line,
                        rule: PANIC_PATH,
                        message: format!(
                            "new panic site: `{qual}` now has {count} `{kind}` site(s) \
                             reachable from the service ingestion API (baseline \
                             {allowed}); remove it or regenerate {BASELINE_PATH} \
                             with --write-panic-baseline"
                        ),
                    });
                }
            }
        }
        // Entries left in the baseline are stale (shrunk or gone).
        for ((qual, kind), (count, lno)) in baseline {
            let now = current
                .get(&qual)
                .and_then(|(_, s)| s.get(kind.as_str()))
                .map_or(0, |(c, _)| *c);
            if now < count {
                violations.push(Violation {
                    file: BASELINE_PATH.to_string(),
                    line: lno,
                    rule: PANIC_PATH,
                    message: format!(
                        "stale baseline entry: `{qual}` has {now} `{kind}` site(s) \
                         reachable (baseline {count}); regenerate {BASELINE_PATH} \
                         with --write-panic-baseline"
                    ),
                });
            }
        }
        violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        violations
    }
}

/// Compute the reachable panic surface: qual → (file, kind → count/line).
fn reachable_surface(ws: &Workspace) -> BTreeMap<String, (String, Surface)> {
    let mut roots: Vec<u32> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.class != FileClass::Lib {
            continue;
        }
        for (ii, item) in file.fns.iter().enumerate() {
            let rooted = !item.in_cfg_test
                && item.is_pub
                && item
                    .self_ty
                    .as_deref()
                    .is_some_and(|t| ROOT_TYPES.contains(&t));
            if rooted {
                if let Some(n) = ws.graph.node_of(fi, ii) {
                    roots.push(n);
                }
            }
        }
    }
    let mut out: BTreeMap<String, (String, Surface)> = BTreeMap::new();
    if roots.is_empty() {
        return out;
    }
    let reachable = ws.graph.reachable(&roots);
    for (ni, seen) in reachable.iter().enumerate() {
        if !seen {
            continue;
        }
        let node = &ws.graph.nodes[ni];
        let file = &ws.files[node.file];
        if file.class != FileClass::Lib {
            continue;
        }
        let item = &file.fns[node.item];
        if item.in_cfg_test {
            continue;
        }
        let surface = panic_sites(&file.toks, item.body.clone());
        if !surface.is_empty() {
            out.insert(item.qual.clone(), (file.rel.clone(), surface));
        }
    }
    out
}

/// Serialize the current reachable surface as the baseline file body.
pub fn render_baseline(ws: &Workspace) -> String {
    let mut lines = vec![
        "# Panic surface reachable from the MulticastService/GroupSession public API.".to_string(),
        "# Generated by `wmcs-audit --write-panic-baseline`; reviewed, not hand-edited."
            .to_string(),
        "# One line per (function, kind): `qualified_fn kind count`.".to_string(),
    ];
    for (qual, (_, surface)) in reachable_surface(ws) {
        for (kind, (count, _)) in surface {
            lines.push(format!("{qual} {kind} {count}"));
        }
    }
    lines.push(String::new());
    lines.join("\n")
}

/// Scan a body token range for panic sites.
fn panic_sites(toks: &[Tok], body: std::ops::Range<usize>) -> Surface {
    let code = code_indices(toks, body);
    let mut out = Surface::new();
    let mut add = |kind: &'static str, line: u32| {
        let e = out.entry(kind).or_insert((0, line));
        e.0 += 1;
    };
    for ci in 0..code.len() {
        let t = &toks[code[ci]];
        match t.kind {
            TokKind::Ident => {
                let after_dot = ci > 0 && is_punct(&toks[code[ci - 1]], ".");
                let called = code.get(ci + 1).is_some_and(|&i| is_punct(&toks[i], "("));
                let banged = code.get(ci + 1).is_some_and(|&i| is_punct(&toks[i], "!"));
                match t.text.as_str() {
                    "expect" if after_dot && called => add("expect", t.line),
                    "unwrap" if after_dot && called => add("unwrap", t.line),
                    "panic" | "unreachable" | "todo" | "unimplemented" if banged => {
                        add("panic-macro", t.line)
                    }
                    "assert" | "assert_eq" | "assert_ne" if banged => add("assert-macro", t.line),
                    _ => {}
                }
            }
            TokKind::Punct if t.text == "[" && ci > 0 => {
                let prev = &toks[code[ci - 1]];
                // Indexing: `xs[…]`, `f()[…]`, `xs[i][j]` — but not
                // attributes (`#[…]`), array types/literals (`[u8; 4]`)
                // or `vec![…]` (prev `!`).
                if prev.kind == TokKind::Ident && !is_type_like(&prev.text)
                    || is_punct(prev, ")")
                    || is_punct(prev, "]")
                {
                    add("index", t.line);
                }
            }
            _ => {}
        }
    }
    out
}

/// Idents that precede `[` without meaning indexing (type positions).
fn is_type_like(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && matches!(s, "Box" | "Vec" | "Option" | "Some" | "None" | "Ok" | "Err")
        || matches!(s, "dyn" | "mut" | "in" | "as" | "return" | "else")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn surface(src: &str) -> Vec<(String, usize)> {
        let toks = lex(src);
        let n = toks.len();
        panic_sites(&toks, 0..n)
            .into_iter()
            .map(|(k, (c, _))| (k.to_string(), c))
            .collect()
    }

    #[test]
    fn all_kinds_are_counted() {
        let s = surface(
            "fn f(xs: &[u32], i: usize) -> u32 {
                assert!(i > 0);
                let a = xs[i] + xs[i - 1];
                let b = xs.first().expect(\"non-empty\");
                if a > 10 { panic!(\"too big\") }
                *b
            }",
        );
        assert!(s.contains(&("index".into(), 2)), "{s:?}");
        assert!(s.contains(&("expect".into(), 1)), "{s:?}");
        assert!(s.contains(&("panic-macro".into(), 1)), "{s:?}");
        assert!(s.contains(&("assert-macro".into(), 1)), "{s:?}");
    }

    #[test]
    fn non_panicking_brackets_are_not_indexing() {
        assert!(surface("let v: Vec<[u8; 4]> = vec![]; #[inline] fn g() {}").is_empty());
        assert!(surface("let x: [f64; 2] = [0.0, 1.0];").is_empty());
        // Slicing an expression IS indexing (can panic).
        assert_eq!(surface("let s = &xs[1..];"), [("index".to_string(), 1)]);
    }

    #[test]
    fn debug_asserts_are_exempt() {
        assert!(surface("debug_assert!(x > 0); debug_assert_eq!(a, b);").is_empty());
    }
}
