//! Forbidden-API enforcement at resolved-path level.
//!
//! PR 7 removed the deprecated substrate constructors behind
//! `SubstrateBuilder`, and this PR deletes the shims outright — but a
//! text grep cannot keep them out: `use wmcs_wireless::UniversalTree as
//! UT; UT::mst_tree(…)` contains neither banned string. This analysis
//! checks every call site *after* the parser has resolved `use` aliases
//! and `crate::`/`self::`/`super::` prefixes, so a renamed import still
//! matches the registry entry.
//!
//! Each [`Banned`] entry is a `::`-separated path pattern matched as a
//! **suffix** of the resolved call path (`TreeSubstrate::new` matches
//! `wmcs_wireless::substrate::TreeSubstrate::new`). Entries whose final
//! segment is a distinctive-enough method name (no collisions with
//! legitimate workspace idioms — `new` is NOT such a name) additionally
//! match bare method calls (`x.mst_tree()`), catching receivers the
//! parser cannot type.
//!
//! The registry is seeded with the substrate shims removed in this PR
//! (so they can never be reintroduced, under any import spelling), the
//! std hash collections, whose iteration order is nondeterministic —
//! defense in depth alongside the token-level `nondeterministic-
//! iteration` rule, which only sees literal `HashMap` tokens — and the
//! unbounded channel constructors (`crossbeam`-style
//! `channel::unbounded`, `std::sync::mpsc::channel`), which would
//! silently void the streaming layer's bounded-admission contract.

use super::Analysis;
use crate::engine::{FileClass, Violation, Workspace};
use crate::rules::FORBIDDEN_API;

/// One banned symbol: a path pattern plus the replacement to name in the
/// diagnostic.
pub struct Banned {
    /// `::`-separated pattern, suffix-matched against resolved call paths.
    pub pattern: &'static str,
    /// Whether a bare `.method()` call on the final segment also fires
    /// (only for names distinctive enough to never collide).
    pub match_method: bool,
    /// What to use instead, quoted verbatim in the diagnostic.
    pub instead: &'static str,
}

/// The banned-symbol registry. Ordered; diagnostics cite entries verbatim.
pub const REGISTRY: &[Banned] = &[
    // Substrate constructor shims removed in this PR. `new` collides with
    // every constructor in the workspace, so those entries are
    // path-only; the tree helpers are distinctive and also match as bare
    // methods.
    Banned {
        pattern: "UniversalTree::new",
        match_method: false,
        instead: "SubstrateBuilder::…::build_universal()",
    },
    Banned {
        pattern: "UniversalTree::shortest_path_tree",
        match_method: true,
        instead: "SubstrateBuilder::shortest_path(root).build_universal()",
    },
    Banned {
        pattern: "UniversalTree::mst_tree",
        match_method: true,
        instead: "SubstrateBuilder::mst(root).build_universal()",
    },
    Banned {
        pattern: "TreeSubstrate::new",
        match_method: false,
        instead: "SubstrateBuilder::…::build()",
    },
    Banned {
        pattern: "TreeSubstrate::shortest_path",
        match_method: false, // `shortest_path` is a common graph-API name
        instead: "SubstrateBuilder::shortest_path(root).build()",
    },
    Banned {
        pattern: "TreeSubstrate::mst",
        match_method: false, // `mst` collides with wmcs_graph free fns
        instead: "SubstrateBuilder::mst(root).build()",
    },
    // Nondeterministic-iteration collections, at path level: the token
    // rule misses `use std::collections::HashMap as Map;`.
    Banned {
        pattern: "collections::HashMap::new",
        match_method: false,
        instead: "BTreeMap (deterministic iteration order)",
    },
    Banned {
        pattern: "collections::HashSet::new",
        match_method: false,
        instead: "BTreeSet (deterministic iteration order)",
    },
    // Unbounded channel constructors: the streaming layer's admission
    // contract (PR 9) is that every queue is bounded and saturation is
    // surfaced as a deterministic `Admission::Busy` — an unbounded
    // channel anywhere in a product path silently repeals it. Note the
    // `mpsc::channel` entry does not catch `mpsc::sync_channel` (the
    // bounded constructor stays legal).
    Banned {
        pattern: "channel::unbounded",
        match_method: false,
        instead: "a bounded queue (`channel::bounded` semantics; see wmcs_wireless::stream)",
    },
    Banned {
        pattern: "mpsc::channel",
        match_method: false,
        instead: "std::sync::mpsc::sync_channel (bounded) or the stream layer's queues",
    },
];

/// The `forbidden-api` analysis (see module docs).
pub struct ForbiddenApi;

impl Analysis for ForbiddenApi {
    fn rule(&self) -> &'static str {
        FORBIDDEN_API
    }

    fn summary(&self) -> &'static str {
        "banned symbols (removed substrate constructor shims, std hash collections, \
         unbounded channel constructors) must not be called; matched on \
         use-alias-resolved paths, so renamed imports cannot dodge the registry"
    }

    fn run(&self, ws: &Workspace) -> Vec<Violation> {
        let mut violations = Vec::new();
        for file in &ws.files {
            if file.class == FileClass::Test {
                // Tests may exercise adversarial spellings (fixtures do).
                continue;
            }
            for call in &file.calls {
                // `#[cfg(test)]` regions are exempt like the token rules:
                // tests may exercise adversarial spellings deliberately.
                if call.owner.is_some_and(|fi| file.fns[fi].in_cfg_test) {
                    continue;
                }
                for banned in REGISTRY {
                    let pat: Vec<&str> = banned.pattern.split("::").collect();
                    let path_hit = !call.is_method && path_suffix_eq(&call.path, &pat);
                    let method_hit = banned.match_method
                        && call.is_method
                        && pat.last().is_some_and(|last| call.name == *last);
                    if path_hit || method_hit {
                        violations.push(Violation {
                            file: file.rel.clone(),
                            line: call.line,
                            rule: FORBIDDEN_API,
                            message: format!(
                                "forbidden API `{}` (resolved from `{}`); use {} instead",
                                banned.pattern,
                                call.path.join("::"),
                                banned.instead
                            ),
                        });
                        break; // one diagnostic per call site
                    }
                }
            }
        }
        violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        violations
    }
}

/// Does resolved path `path` end with the segments of `pat`?
fn path_suffix_eq(path: &[String], pat: &[&str]) -> bool {
    pat.len() <= path.len() && path.iter().rev().zip(pat.iter().rev()).all(|(a, b)| a == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_matching_ignores_leading_segments() {
        let path: Vec<String> = ["wmcs_wireless", "universal", "UniversalTree", "mst_tree"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(path_suffix_eq(&path, &["UniversalTree", "mst_tree"]));
        assert!(!path_suffix_eq(&path, &["TreeSubstrate", "mst_tree"]));
        assert!(!path_suffix_eq(&path[3..], &["UniversalTree", "mst_tree"]));
    }

    #[test]
    fn registry_entries_are_well_formed() {
        for b in REGISTRY {
            assert!(
                b.pattern.contains("::"),
                "{} lacks a type segment",
                b.pattern
            );
            assert!(!b.instead.is_empty());
            if b.match_method {
                // Method-matched names must be distinctive (long enough to
                // not collide with common idioms).
                let last = b.pattern.rsplit("::").next().unwrap_or_default();
                assert!(
                    last.len() > 4,
                    "`{last}` is too generic for method matching"
                );
            }
        }
    }
}
