//! Parallel-reduction determinism: no order-sensitive float accumulation
//! reachable from an undisciplined thread-spawn site.
//!
//! The MulticastService byte-identity contract (T11–T13) requires every
//! mechanism output to be identical across thread counts. The one
//! sanctioned way to combine parallel work is the **slot pattern**: each
//! work item's result is placed into a per-item `OnceLock` slot by index,
//! and the single-threaded fold over the slots happens after the pool
//! joins — scheduling order can then never reach a float. This analysis
//! statically enforces that shape:
//!
//! * a **spawn site** is any function that calls `.spawn(…)` (crossbeam
//!   scope or `std::thread`);
//! * a spawn site is **slot-disciplined** if its body uses `OnceLock`
//!   and places results with `.set(…)`;
//! * from every spawn site that is *not* slot-disciplined, every
//!   function reachable in the call graph is scanned for order-sensitive
//!   float accumulation: float-seeded `.fold(…)`, float-typed `.sum()` /
//!   `.product()` / `.reduce(…)`, and `+=` onto a float local or through
//!   a `lock()`-guarded target (the Mutex-accumulator anti-pattern).
//!
//! Accumulation *below a slot-disciplined spawn* is deliberately exempt:
//! each worker applies its item's events sequentially, so its internal
//! float arithmetic is order-deterministic; the dynamic byte-identity
//! gates (T12) pin exactly that. What they cannot pin is a *new* spawn
//! site someone adds without slot placement — which is exactly what this
//! rule catches, two calls deep or twenty.

use super::{code_indices, is_float_token, is_punct, stmt_start, Analysis};
use crate::engine::{FileClass, Violation, Workspace};
use crate::lexer::{Tok, TokKind};
use crate::rules::PARALLEL_FLOAT_REDUCTION;
use std::collections::BTreeSet;

/// The `parallel-float-reduction` analysis (see module docs).
pub struct ParallelReduction;

impl Analysis for ParallelReduction {
    fn rule(&self) -> &'static str {
        PARALLEL_FLOAT_REDUCTION
    }

    fn summary(&self) -> &'static str {
        "no order-sensitive float accumulation (float fold/sum/reduce, += on float \
         or lock-guarded state) in any function reachable from a thread-spawn site, \
         unless the spawn places results in per-item OnceLock slots"
    }

    fn run(&self, ws: &Workspace) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut flagged: BTreeSet<(usize, u32)> = BTreeSet::new();
        // Spawn sites in result-affecting files, in deterministic order.
        for (fi, file) in ws.files.iter().enumerate() {
            if file.class == FileClass::Test {
                continue;
            }
            for (ii, item) in file.fns.iter().enumerate() {
                if item.in_cfg_test {
                    continue;
                }
                if !is_spawn_site(file, ii) || is_slot_disciplined(file, ii) {
                    continue;
                }
                let Some(root) = ws.graph.node_of(fi, ii) else {
                    continue;
                };
                let reachable = ws.graph.reachable(&[root]);
                for (ni, seen) in reachable.iter().enumerate() {
                    if !seen {
                        continue;
                    }
                    let node = &ws.graph.nodes[ni];
                    let nfile = &ws.files[node.file];
                    if nfile.class == FileClass::Test {
                        continue;
                    }
                    let nfn = &nfile.fns[node.item];
                    if nfn.in_cfg_test {
                        continue;
                    }
                    for site in accumulation_sites(&nfile.toks, nfn.body.clone()) {
                        if !flagged.insert((node.file, site.line)) {
                            continue;
                        }
                        violations.push(Violation {
                            file: nfile.rel.clone(),
                            line: site.line,
                            rule: PARALLEL_FLOAT_REDUCTION,
                            message: format!(
                                "order-sensitive float accumulation ({}) in `{}`, reachable \
                                 from thread-spawn site `{}` ({}:{}) which does not place \
                                 results in per-item OnceLock slots; use the slot pattern \
                                 or add a justified pragma",
                                site.kind, nfn.qual, item.qual, file.rel, item.line
                            ),
                        });
                    }
                }
            }
        }
        violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        violations
    }
}

/// Does function `ii` of `file` call `.spawn(…)` / `thread::spawn(…)`?
fn is_spawn_site(file: &crate::parser::ParsedFile, ii: usize) -> bool {
    file.calls.iter().any(|c| {
        c.owner == Some(ii)
            && c.name == "spawn"
            && (c.is_method || c.path.last().is_some_and(|s| s == "spawn"))
    })
}

/// Does the spawn site's body follow the slot pattern (`OnceLock` state
/// plus `.set(…)` placement)?
fn is_slot_disciplined(file: &crate::parser::ParsedFile, ii: usize) -> bool {
    let body = file.fns[ii].body.clone();
    let toks = &file.toks[body.start..body.end.min(file.toks.len())];
    let has_oncelock = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "OnceLock");
    let has_set = file
        .calls
        .iter()
        .any(|c| c.owner == Some(ii) && c.is_method && c.name == "set");
    has_oncelock && has_set
}

/// One detected accumulation site.
struct Site {
    line: u32,
    kind: &'static str,
}

/// Scan a body token range for order-sensitive float accumulation.
fn accumulation_sites(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<Site> {
    let code = code_indices(toks, body);
    let mut sites = Vec::new();
    // Pass 1: float-typed locals (`let [mut] x` with float evidence in
    // the same statement).
    let mut float_vars: BTreeSet<&str> = BTreeSet::new();
    let mut ci = 0usize;
    while ci < code.len() {
        let t = &toks[code[ci]];
        if t.kind == TokKind::Ident && t.text == "let" {
            let mut j = ci + 1;
            if toks
                .get(code.get(j).copied().unwrap_or(usize::MAX))
                .is_some_and(|t| t.text == "mut")
            {
                j += 1;
            }
            let name = code
                .get(j)
                .map(|&i| &toks[i])
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str());
            // Scan the statement for float evidence.
            let mut k = j;
            let mut float = false;
            while k < code.len() && !is_punct(&toks[code[k]], ";") {
                float |= is_float_token(&toks[code[k]]);
                k += 1;
            }
            if let (Some(name), true) = (name, float) {
                float_vars.insert(name);
            }
            ci = k;
            continue;
        }
        ci += 1;
    }
    // Pass 2: accumulation sites.
    for ci in 0..code.len() {
        let t = &toks[code[ci]];
        // `.fold(…)` / `.sum()` / `.product()` / `.reduce(…)`.
        if t.kind == TokKind::Ident
            && ci > 0
            && is_punct(&toks[code[ci - 1]], ".")
            && matches!(t.text.as_str(), "fold" | "sum" | "product" | "reduce")
        {
            if float_reduction_evidence(toks, &code, ci) {
                sites.push(Site {
                    line: t.line,
                    kind: match t.text.as_str() {
                        "fold" => "float `.fold(…)`",
                        "sum" => "float `.sum()`",
                        "product" => "float `.product()`",
                        _ => "float `.reduce(…)`",
                    },
                });
            }
            continue;
        }
        // `+=`: two adjacent puncts.
        if is_punct(t, "+")
            && code
                .get(ci + 1)
                .is_some_and(|&i| is_punct(&toks[i], "=") && i == code[ci] + 1)
        {
            let start = stmt_start(toks, &code, ci);
            let stmt = &code[start..];
            let stmt_end = stmt
                .iter()
                .position(|&i| is_punct(&toks[i], ";"))
                .map_or(stmt.len(), |p| p + 1);
            let stmt = &stmt[..stmt_end];
            let target_is_float = code
                .get(ci.wrapping_sub(1))
                .map(|&i| &toks[i])
                .is_some_and(|t| t.kind == TokKind::Ident && float_vars.contains(t.text.as_str()));
            let through_lock = stmt
                .iter()
                .take_while(|&&i| i < code[ci])
                .any(|&i| toks[i].kind == TokKind::Ident && toks[i].text == "lock");
            let float_rhs = stmt
                .iter()
                .skip_while(|&&i| i <= code[ci] + 1)
                .any(|&i| is_float_token(&toks[i]));
            if target_is_float || through_lock || float_rhs {
                sites.push(Site {
                    line: t.line,
                    kind: if through_lock {
                        "`+=` through a lock() guard"
                    } else {
                        "`+=` on float state"
                    },
                });
            }
        }
    }
    sites
}

/// Float evidence for a reduction method at code index `ci`: a float
/// first argument (`fold(0.0, …)`), an `::<f64>` turbofish, or float
/// typing elsewhere in the enclosing statement
/// (`let s: f64 = xs.iter().sum();`).
fn float_reduction_evidence(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    // Turbofish / argument scan forward to the opening paren + 2 tokens.
    let mut j = ci + 1;
    let mut angle = 0i32;
    while j < code.len() {
        let t = &toks[code[j]];
        if is_punct(t, "<") {
            angle += 1;
        } else if is_punct(t, ">") {
            angle -= 1;
        } else if angle > 0 && is_float_token(t) {
            return true; // ::<f64>
        } else if is_punct(t, "(") {
            // First-argument evidence: `fold(0.0, …)`, `fold(f64::…, …)`.
            return code
                .get(j + 1)
                .map(|&i| &toks[i])
                .is_some_and(is_float_token)
                || stmt_has_float(toks, code, ci);
        }
        j += 1;
    }
    false
}

/// Does the statement enclosing code index `ci` carry float evidence
/// anywhere before the reduction call (type ascription, float literal)?
fn stmt_has_float(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    let start = stmt_start(toks, code, ci);
    code[start..ci].iter().any(|&i| is_float_token(&toks[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sites(src: &str) -> Vec<&'static str> {
        let toks = lex(src);
        let n = toks.len();
        accumulation_sites(&toks, 0..n)
            .into_iter()
            .map(|s| s.kind)
            .collect()
    }

    #[test]
    fn float_folds_and_sums_are_detected() {
        assert_eq!(
            sites("xs.iter().fold(0.0, |a, b| a + b)"),
            ["float `.fold(…)`"]
        );
        assert_eq!(sites("let s: f64 = xs.iter().sum();"), ["float `.sum()`"]);
        assert_eq!(sites("xs.iter().sum::<f64>()"), ["float `.sum()`"]);
        assert_eq!(
            sites("let t: f64 = v.into_iter().reduce(g).unwrap_or(0.0);"),
            ["float `.reduce(…)`"]
        );
    }

    #[test]
    fn integer_reductions_are_not() {
        assert!(sites("xs.iter().sum::<usize>()").is_empty());
        assert!(sites("xs.iter().fold(0usize, |a, b| a + b)").is_empty());
        assert!(sites("let n: usize = v.len(); xs.iter().count()").is_empty());
    }

    #[test]
    fn float_plus_eq_and_lock_accumulators_are_detected() {
        assert_eq!(
            sites("let mut acc = 0.0; for v in xs { acc += v; }"),
            ["`+=` on float state"]
        );
        assert_eq!(
            sites("*total.lock().expect(\"ok\") += partial;"),
            ["`+=` through a lock() guard"]
        );
        assert_eq!(sites("share[v] += 0.5;"), ["`+=` on float state"]);
    }

    #[test]
    fn integer_plus_eq_is_not() {
        assert!(sites("let mut n = 0usize; n += 1;").is_empty());
        assert!(sites("cursor += 1;").is_empty());
    }
}
