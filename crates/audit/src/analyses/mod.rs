//! The v2 workspace-level analyses: call-graph reachability checks that
//! no per-file token rule can express.
//!
//! Where the token rules ([`crate::rules`]) look at one token in one
//! file, an [`Analysis`] sees the whole parsed workspace — every
//! function, every call edge — and can therefore answer questions like
//! "is this float `fold` reachable from a thread-pool spawn?" that
//! PR 6's linter was structurally blind to. Each analysis owns one rule
//! name (usable in `wmcs-audit: allow(<rule>): …` pragmas like any token
//! rule) and returns ordinary [`Violation`]s, so diagnostics, pragmas,
//! JSON output and CI annotation are uniform across both layers.
//!
//! The three shipped analyses:
//!
//! * [`parallel_reduction`] — order-sensitive float accumulation
//!   reachable from an undisciplined thread-spawn site
//!   (`parallel-float-reduction`);
//! * [`panic_path`] — the panic surface reachable from the
//!   `MulticastService` ingestion API, gated against a committed
//!   baseline (`panic-path`);
//! * [`forbidden_api`] — banned symbols checked at resolved-path level
//!   so renamed imports cannot dodge them (`forbidden-api`).
//!
//! See the crate docs for the "adding an analysis" walkthrough.

pub mod forbidden_api;
pub mod panic_path;
pub mod parallel_reduction;

use crate::engine::{Violation, Workspace};
use crate::lexer::{Tok, TokKind};

/// One workspace-level analysis.
pub trait Analysis {
    /// The rule name used in diagnostics and `allow(…)` pragmas.
    fn rule(&self) -> &'static str;
    /// One-line statement of the invariant (for `--list-rules`).
    fn summary(&self) -> &'static str;
    /// Run over the parsed workspace; return raw violations (pragma
    /// application happens in the engine, uniformly with token rules).
    fn run(&self, ws: &Workspace) -> Vec<Violation>;
}

/// The analysis registry, in diagnostic order.
pub static ANALYSES: &[&(dyn Analysis + Sync)] = &[
    &parallel_reduction::ParallelReduction,
    &panic_path::PanicPath,
    &forbidden_api::ForbiddenApi,
];

/// Indices of non-comment tokens within a body token range.
pub(crate) fn code_indices(toks: &[Tok], range: std::ops::Range<usize>) -> Vec<usize> {
    (range.start..range.end.min(toks.len()))
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect()
}

/// Is token `t` the punctuation `s`?
pub(crate) fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Float evidence on a single token: a float-shaped number literal
/// (`0.0`, `1e3`, `2.5f64`) or the `f64`/`f32` type idents.
pub(crate) fn is_float_token(t: &Tok) -> bool {
    match t.kind {
        TokKind::Number => {
            let s = &t.text;
            if s.starts_with("0x") || s.starts_with("0X") {
                return false;
            }
            // A decimal point, an `f64`/`f32` suffix, or a real exponent
            // (`e`/`E` followed by a digit or sign — NOT the `e` inside
            // integer suffixes like `0usize`).
            s.contains('.')
                || s.ends_with("f64")
                || s.ends_with("f32")
                || s.as_bytes().windows(2).any(|w| {
                    (w[0] == b'e' || w[0] == b'E')
                        && (w[1].is_ascii_digit() || w[1] == b'+' || w[1] == b'-')
                })
        }
        TokKind::Ident => t.text == "f64" || t.text == "f32",
        _ => false,
    }
}

/// Walk back from code-index `ci` to the start of the enclosing
/// statement (`;`, `{` or `}`), returning the code-index just after it.
pub(crate) fn stmt_start(toks: &[Tok], code: &[usize], ci: usize) -> usize {
    let mut j = ci;
    while j > 0 {
        let t = &toks[code[j - 1]];
        if is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") {
            break;
        }
        j -= 1;
    }
    j
}
