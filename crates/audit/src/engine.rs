//! File classification, pragma handling, rule application and the
//! workspace walk.

use crate::lexer::{has_negative_exponent, lex, Tok, TokKind};
use crate::rules::{
    rule_by_name, Scope, AUDIT_PRAGMA, FLOAT_TOLERANCE_LITERAL, LOSSY_CAST, NONDETERMINISM_SOURCE,
    NONDETERMINISTIC_ITERATION, UNSAFE_WITHOUT_SAFETY_COMMENT, UNWRAP_IN_LIB,
};
use std::fmt;
use std::path::{Path, PathBuf};

/// How a source file participates in the build, which decides the rule set
/// applied to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: `crates/*/src/**` (minus `src/bin`) and the root
    /// facade `src/`. Result-affecting; every rule applies.
    Lib,
    /// Binary source: `src/bin/**` and `src/main.rs`. Determinism rules
    /// apply (bins emit the committed baselines); panicking shortcuts are
    /// tolerated.
    Bin,
    /// Tests, benches and examples. Only the `unsafe` rule applies.
    Test,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (see the registry in `rules`).
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Classify a workspace-relative path, or `None` if it is outside the audit
/// surface (vendored shims, build artifacts, the audit's own fixtures).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    // Vendored shims are third-party API surface, audited upstream of
    // this workspace's invariants; target/ is build output.
    if let Some(&"vendor" | &"target" | &".git") = parts.first() {
        return None;
    }
    // The audit's own rule fixtures intentionally violate every rule.
    if parts.starts_with(&["crates", "audit", "fixtures"]) {
        return None;
    }
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
    {
        return Some(FileClass::Test);
    }
    if parts.contains(&"src") {
        if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
            return Some(FileClass::Bin);
        }
        return Some(FileClass::Lib);
    }
    None
}

/// A parsed `// wmcs-audit: allow(<rule>): <justification>` pragma.
#[derive(Debug, Clone)]
struct Suppression {
    rule: &'static str,
    /// Line of the pragma comment; it covers this line and the next.
    line: u32,
    used: bool,
}

/// Minimum justification length: long enough to force an actual reason,
/// not a placeholder like "ok".
const MIN_JUSTIFICATION: usize = 10;

/// Scan one file's source text under the given class. `rel` is the
/// workspace-relative path used in diagnostics and per-file exceptions.
pub fn scan_file(rel: &str, src: &str, class: FileClass) -> Vec<Violation> {
    let toks = lex(src);
    let in_test = test_region_mask(&toks);
    let mut violations: Vec<Violation> = Vec::new();
    let mut suppressions = collect_pragmas(rel, &toks, &mut violations);

    // The float-tolerance home is allowed to define the constants.
    let is_float_home = rel == "crates/geom/src/float.rs";

    // Indices of non-comment tokens, for neighbour lookups.
    let code_idx: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut raw: Vec<Violation> = Vec::new();
    for (ci, &i) in code_idx.iter().enumerate() {
        let t = &toks[i];
        let scoped = |scope: Scope| match scope {
            Scope::Lib => class == FileClass::Lib && !in_test[i],
            Scope::LibAndBin => class != FileClass::Test && !in_test[i],
            Scope::Everywhere => true,
        };
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "HashMap" | "HashSet" if scoped(Scope::LibAndBin) => {
                    raw.push(violation(
                        rel,
                        t.line,
                        NONDETERMINISTIC_ITERATION,
                        format!(
                            "`{}` in result-affecting code: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
                            t.text
                        ),
                    ));
                }
                "unwrap" if scoped(Scope::Lib) => {
                    let after_dot = ci > 0 && is_punct(&toks[code_idx[ci - 1]], ".");
                    let called = ci + 1 < code_idx.len() && is_punct(&toks[code_idx[ci + 1]], "(");
                    if after_dot && called {
                        raw.push(violation(
                            rel,
                            t.line,
                            UNWRAP_IN_LIB,
                            "bare `.unwrap()` in a library crate: state the invariant \
                             with `.expect(\"…\")` or propagate the error"
                                .to_string(),
                        ));
                    }
                }
                "as" if scoped(Scope::LibAndBin) => {
                    if let Some(&next) = code_idx.get(ci + 1) {
                        let target = toks[next].text.as_str();
                        if toks[next].kind == TokKind::Ident
                            && matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
                        {
                            raw.push(violation(
                                rel,
                                toks[next].line,
                                LOSSY_CAST,
                                format!(
                                    "`as {target}` silently truncates; use \
                                     `{target}::try_from(…)` with an invariant message"
                                ),
                            ));
                        }
                    }
                }
                "thread_rng" | "from_entropy" | "Instant" | "SystemTime"
                    if scoped(Scope::LibAndBin) =>
                {
                    raw.push(violation(
                        rel,
                        t.line,
                        NONDETERMINISM_SOURCE,
                        format!(
                            "`{}` is a nondeterminism source; wall-clock and entropy \
                             must never flow into verdicts or shares",
                            t.text
                        ),
                    ));
                }
                "unsafe" => {
                    let documented = toks.iter().any(|c| {
                        matches!(c.kind, TokKind::LineComment | TokKind::BlockComment)
                            && c.text.contains("SAFETY:")
                            && c.line + 3 >= t.line
                            && c.line <= t.line
                    });
                    if !documented {
                        raw.push(violation(
                            rel,
                            t.line,
                            UNSAFE_WITHOUT_SAFETY_COMMENT,
                            "`unsafe` without a `// SAFETY:` comment in the three \
                             preceding lines"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            },
            TokKind::Number
                if scoped(Scope::LibAndBin) && !is_float_home && has_negative_exponent(&t.text) =>
            {
                raw.push(violation(
                    rel,
                    t.line,
                    FLOAT_TOLERANCE_LITERAL,
                    format!(
                        "inline tolerance literal `{}`: use a named constant from \
                         wmcs_geom::float (EPS, VP_TOL, BB_TOL, SP_TOL, REL_TOL, …)",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }

    // Apply suppressions: a pragma on line L covers violations on L and L+1.
    for v in raw {
        let suppressed = suppressions
            .iter_mut()
            .find(|s| s.rule == v.rule && (s.line == v.line || s.line + 1 == v.line));
        match suppressed {
            Some(s) => s.used = true,
            None => violations.push(v),
        }
    }
    for s in &suppressions {
        if !s.used {
            violations.push(violation(
                rel,
                s.line,
                AUDIT_PRAGMA,
                format!(
                    "pragma `allow({})` suppresses nothing on this or the next \
                     line; remove it",
                    s.rule
                ),
            ));
        }
    }
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// Parse `wmcs-audit:` pragmas out of the comment tokens. Malformed,
/// unknown-rule or unjustified pragmas are pushed as violations directly.
fn collect_pragmas(rel: &str, toks: &[Tok], violations: &mut Vec<Violation>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("wmcs-audit:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(name, just)| (name.trim(), just));
        let Some((name, justification)) = parsed else {
            violations.push(violation(
                rel,
                t.line,
                AUDIT_PRAGMA,
                format!(
                    "malformed pragma `{rest}`: expected \
                     `wmcs-audit: allow(<rule>): <justification>`"
                ),
            ));
            continue;
        };
        let Some(rule) = rule_by_name(name) else {
            violations.push(violation(
                rel,
                t.line,
                AUDIT_PRAGMA,
                format!("unknown rule `{name}` in allow(…) pragma"),
            ));
            continue;
        };
        let justification = justification
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        if justification.len() < MIN_JUSTIFICATION {
            violations.push(violation(
                rel,
                t.line,
                AUDIT_PRAGMA,
                format!(
                    "pragma `allow({name})` lacks a justification: every vetted \
                     exception must say why it is safe"
                ),
            ));
            continue;
        }
        out.push(Suppression {
            rule: rule.name,
            line: t.line,
            used: false,
        });
    }
    out
}

/// Per-token flag: inside a `#[cfg(test)] mod … { … }` region.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code = |t: &Tok| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment);
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !code(t) {
            i += 1;
            continue;
        }
        // Attribute: scan `#[…]`, noting whether it is cfg(test)-like.
        if is_punct(t, "#") {
            let mut j = i + 1;
            while j < toks.len() && !code(&toks[j]) {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "[") {
                let mut depth = 0usize;
                let mut has_cfg = false;
                let mut has_test = false;
                while j < toks.len() {
                    let a = &toks[j];
                    if is_punct(a, "[") {
                        depth += 1;
                    } else if is_punct(a, "]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.kind == TokKind::Ident {
                        has_cfg |= a.text == "cfg";
                        has_test |= a.text == "test";
                    }
                    j += 1;
                }
                if has_cfg && has_test {
                    pending_cfg_test = true;
                }
                i = j + 1;
                continue;
            }
        }
        if pending_cfg_test && t.kind == TokKind::Ident && t.text == "mod" {
            // Find the module body and mark it wholesale.
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "{") {
                let mut depth = 0usize;
                let start = j;
                while j < toks.len() {
                    if is_punct(&toks[j], "{") {
                        depth += 1;
                    } else if is_punct(&toks[j], "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j.min(toks.len() - 1) + 1).skip(start) {
                    *m = true;
                }
                i = j + 1;
            } else {
                i = j + 1;
            }
            pending_cfg_test = false;
            continue;
        }
        // Any other code token consumes a pending cfg(test) attribute
        // (e.g. `#[cfg(test)] use …`): the region heuristic only tracks
        // whole test modules, which is the convention in this workspace.
        if pending_cfg_test {
            pending_cfg_test = false;
        }
        i += 1;
    }
    mask
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn violation(rel: &str, line: u32, rule: &'static str, message: String) -> Violation {
    Violation {
        file: rel.to_string(),
        line,
        rule,
        message,
    }
}

/// Collect every auditable `.rs` file under the workspace root, sorted for
/// deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            if path.is_dir() {
                let first = rel.iter().next().and_then(|c| c.to_str());
                if matches!(first, Some("vendor" | "target" | ".git" | ".github")) {
                    continue;
                }
                stack.push(path);
            } else if classify(&rel).is_some() {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Audit the whole workspace rooted at `root`. Returns all violations plus
/// the number of files scanned.
pub fn audit_workspace(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    let files = workspace_files(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let class = classify(rel).expect("workspace_files only returns classified files");
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_str()
            .expect("workspace paths are valid UTF-8")
            .replace('\\', "/");
        violations.extend(scan_file(&rel_str, &src, class));
    }
    Ok((violations, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn classification_matches_build_roles() {
        let c = |p: &str| classify(Path::new(p));
        assert_eq!(c("crates/game/src/cost.rs"), Some(FileClass::Lib));
        assert_eq!(c("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(
            c("crates/bench/src/bin/all_experiments.rs"),
            Some(FileClass::Bin)
        );
        assert_eq!(c("crates/audit/src/main.rs"), Some(FileClass::Bin));
        assert_eq!(
            c("crates/wireless/tests/session_props.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(
            c("crates/bench/benches/drop_engine.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(c("examples/quickstart.rs"), Some(FileClass::Test));
        assert_eq!(c("vendor/rand/src/lib.rs"), None);
        assert_eq!(c("crates/audit/fixtures/clean.rs"), None);
        assert_eq!(c("README.md"), None);
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_scoped_rules() {
        let src = "
fn lib_code() -> usize { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        let x = 1e-9;
        let _ = (m.len(), x, Some(2).unwrap());
    }
}
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "test-module code must be exempt: {vs:?}");
    }

    #[test]
    fn lib_code_before_and_after_test_mod_is_still_scanned() {
        let src = "
use std::collections::HashMap;
#[cfg(test)]
mod tests {}
fn after() { let _ = 1e-9; }
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"nondeterministic-iteration"), "{vs:?}");
        assert!(rules.contains(&"float-tolerance-literal"), "{vs:?}");
    }

    #[test]
    fn pragma_same_line_and_next_line_both_cover() {
        let src = "
// wmcs-audit: allow(float-tolerance-literal): pinned paper value, not a tolerance
const A: f64 = 1e-9;
const B: f64 = 2e-9; // wmcs-audit: allow(float-tolerance-literal): second pinned paper value
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unused_and_unjustified_pragmas_are_violations() {
        let src = "
// wmcs-audit: allow(unwrap-in-lib): nothing here actually unwraps anywhere
fn fine() {}
// wmcs-audit: allow(lossy-cast)
fn cast(x: usize) -> u32 { x as u32 }
// wmcs-audit: bogus
fn also_fine() {}
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        let pragma_violations = vs.iter().filter(|v| v.rule == "audit-pragma").count();
        assert_eq!(pragma_violations, 3, "{vs:?}");
        // The unjustified allow(lossy-cast) must NOT suppress the cast.
        assert!(vs.iter().any(|v| v.rule == "lossy-cast"), "{vs:?}");
    }

    #[test]
    fn unsafe_rule_applies_even_in_tests_and_accepts_safety_comments() {
        let bad = "fn f() { let p = 0 as *const u8; unsafe { p.read() }; }";
        let vs = scan_file("crates/x/tests/t.rs", bad, FileClass::Test);
        assert!(vs.iter().any(|v| v.rule == "unsafe-without-safety-comment"));

        let good = "
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { p.read() }
}
";
        let vs = scan_file("crates/x/src/lib.rs", good, FileClass::Lib);
        assert!(
            !vs.iter().any(|v| v.rule == "unsafe-without-safety-comment"),
            "{vs:?}"
        );
    }

    #[test]
    fn bins_are_exempt_from_unwrap_but_not_determinism() {
        let src = "fn main() { let _ = Some(1).unwrap(); let _ = 1e-9; }";
        let vs = scan_file("crates/bench/src/bin/x.rs", src, FileClass::Bin);
        assert!(!vs.iter().any(|v| v.rule == "unwrap-in-lib"), "{vs:?}");
        assert!(
            vs.iter().any(|v| v.rule == "float-tolerance-literal"),
            "{vs:?}"
        );
    }

    #[test]
    fn float_home_may_define_tolerances() {
        let src = "pub const EPS: f64 = 1e-9;";
        let vs = scan_file("crates/geom/src/float.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "{vs:?}");
        let vs = scan_file("crates/geom/src/power.rs", src, FileClass::Lib);
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn string_and_comment_content_never_trips_rules() {
        let src = r#"
// HashMap, unwrap(), 1e-9, Instant::now() — all just prose.
fn f() -> &'static str { "HashMap 1e-9 unsafe unwrap Instant" }
"#;
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "{vs:?}");
    }
}
