//! File classification, pragma handling, rule application, the workspace
//! walk, and the v2 parsed-workspace pipeline.
//!
//! Two layers feed one diagnostic stream:
//!
//! 1. **Token rules** ([`crate::rules::RULES`]) — per-file, applied by
//!    [`scan_file`] / `scan_tokens` exactly as in PR 6;
//! 2. **Workspace analyses** ([`crate::analyses`]) — run over a
//!    [`Workspace`] (every file parsed by [`crate::parser`], joined by
//!    the [`crate::graph`] call graph).
//!
//! Both layers' violations flow through the same pragma machinery: a
//! `// wmcs-audit: allow(<rule>): <justification>` comment suppresses a
//! violation of that rule on its own or the next line, whichever layer
//! produced it, and an unused pragma is itself a violation. The merged,
//! sorted result is packaged as an [`AuditReport`] with graph statistics
//! and a hand-rolled JSON serialization (this crate stays
//! dependency-free) for CI consumption.

use crate::analyses::ANALYSES;
use crate::graph::CallGraph;
use crate::lexer::{has_negative_exponent, lex, Tok, TokKind};
use crate::parser::{parse_file, ParsedFile};
use crate::rules::{
    rule_by_name, Scope, AUDIT_PRAGMA, FLOAT_TOLERANCE_LITERAL, LOSSY_CAST, NONDETERMINISM_SOURCE,
    NONDETERMINISTIC_ITERATION, UNSAFE_WITHOUT_SAFETY_COMMENT, UNWRAP_IN_LIB,
};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// How a source file participates in the build, which decides the rule set
/// applied to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: `crates/*/src/**` (minus `src/bin`) and the root
    /// facade `src/`. Result-affecting; every rule applies.
    Lib,
    /// Binary source: `src/bin/**` and `src/main.rs`. Determinism rules
    /// apply (bins emit the committed baselines); panicking shortcuts are
    /// tolerated.
    Bin,
    /// Tests, benches and examples. Only the `unsafe` rule applies.
    Test,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (see the registry in `rules`).
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The whole workspace in parsed form: every auditable file with its
/// token stream and items, joined by the cross-crate call graph. This is
/// what a [`crate::analyses::Analysis`] runs over.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root (analyses may read committed baselines
    /// relative to it).
    pub root: PathBuf,
    /// Parsed files, in sorted path order.
    pub files: Vec<ParsedFile>,
    /// The call graph over `files` (node `(file, item)` indices point
    /// into it).
    pub graph: CallGraph,
}

/// The result of a full workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of `fn` items parsed (call-graph nodes).
    pub functions: usize,
    /// Number of call-graph edges (after dedup).
    pub call_edges: usize,
}

impl AuditReport {
    /// Machine-readable form, consumed by the CI problem matcher. Schema:
    ///
    /// ```json
    /// {"schema":"wmcs-audit/v2","files_scanned":N,"functions":N,
    ///  "call_edges":N,"violations":[{"file":"…","line":N,"rule":"…",
    ///  "message":"…"}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"wmcs-audit/v2\"");
        out.push_str(&format!(
            ",\"files_scanned\":{},\"functions\":{},\"call_edges\":{}",
            self.files_scanned, self.functions, self.call_edges
        ));
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&v.file),
                v.line,
                v.rule,
                json_escape(&v.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// Classify a workspace-relative path, or `None` if it is outside the audit
/// surface (vendored shims, build artifacts, the audit's own fixtures).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    // Vendored shims are third-party API surface, audited upstream of
    // this workspace's invariants; target/ is build output.
    if let Some(&"vendor" | &"target" | &".git") = parts.first() {
        return None;
    }
    // The audit's own rule fixtures intentionally violate every rule.
    if parts.starts_with(&["crates", "audit", "fixtures"]) {
        return None;
    }
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
    {
        return Some(FileClass::Test);
    }
    if parts.contains(&"src") {
        if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
            return Some(FileClass::Bin);
        }
        return Some(FileClass::Lib);
    }
    None
}

/// A parsed `// wmcs-audit: allow(<rule>): <justification>` pragma.
#[derive(Debug, Clone)]
struct Suppression {
    rule: &'static str,
    /// Line of the pragma comment; it covers this line and the next.
    line: u32,
    used: bool,
}

/// Minimum justification length: long enough to force an actual reason,
/// not a placeholder like "ok".
const MIN_JUSTIFICATION: usize = 10;

/// Scan one file's source text under the given class, token rules only.
/// `rel` is the workspace-relative path used in diagnostics and per-file
/// exceptions. The workspace analyses need the whole parsed workspace and
/// run in [`audit_workspace`]; this entry point stays for single-file use
/// (`wmcs-audit --class lib FILE`).
pub fn scan_file(rel: &str, src: &str, class: FileClass) -> Vec<Violation> {
    let toks = lex(src);
    let mut violations: Vec<Violation> = Vec::new();
    let mut suppressions = collect_pragmas(rel, &toks, &mut violations);
    let raw = scan_tokens(rel, &toks, class);
    apply_suppressions(raw, &mut suppressions, &mut violations);
    flush_unused_pragmas(rel, &suppressions, &mut violations);
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// Apply the six token rules to a lexed file; raw violations, no pragma
/// handling.
fn scan_tokens(rel: &str, toks: &[Tok], class: FileClass) -> Vec<Violation> {
    let in_test = test_region_mask(toks);

    // The float-tolerance home is allowed to define the constants.
    let is_float_home = rel == "crates/geom/src/float.rs";

    // Indices of non-comment tokens, for neighbour lookups.
    let code_idx: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut raw: Vec<Violation> = Vec::new();
    for (ci, &i) in code_idx.iter().enumerate() {
        let t = &toks[i];
        let scoped = |scope: Scope| match scope {
            Scope::Lib => class == FileClass::Lib && !in_test[i],
            Scope::LibAndBin => class != FileClass::Test && !in_test[i],
            Scope::Everywhere => true,
            Scope::Workspace => false, // analyses never route through here
        };
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "HashMap" | "HashSet" if scoped(Scope::LibAndBin) => {
                    raw.push(violation(
                        rel,
                        t.line,
                        NONDETERMINISTIC_ITERATION,
                        format!(
                            "`{}` in result-affecting code: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
                            t.text
                        ),
                    ));
                }
                "unwrap" if scoped(Scope::Lib) => {
                    let after_dot = ci > 0 && is_punct(&toks[code_idx[ci - 1]], ".");
                    let called = ci + 1 < code_idx.len() && is_punct(&toks[code_idx[ci + 1]], "(");
                    if after_dot && called {
                        raw.push(violation(
                            rel,
                            t.line,
                            UNWRAP_IN_LIB,
                            "bare `.unwrap()` in a library crate: state the invariant \
                             with `.expect(\"…\")` or propagate the error"
                                .to_string(),
                        ));
                    }
                }
                "as" if scoped(Scope::LibAndBin) => {
                    if let Some(&next) = code_idx.get(ci + 1) {
                        let target = toks[next].text.as_str();
                        if toks[next].kind == TokKind::Ident
                            && matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
                        {
                            raw.push(violation(
                                rel,
                                toks[next].line,
                                LOSSY_CAST,
                                format!(
                                    "`as {target}` silently truncates; use \
                                     `{target}::try_from(…)` with an invariant message"
                                ),
                            ));
                        }
                    }
                }
                "thread_rng" | "from_entropy" | "Instant" | "SystemTime"
                    if scoped(Scope::LibAndBin) =>
                {
                    raw.push(violation(
                        rel,
                        t.line,
                        NONDETERMINISM_SOURCE,
                        format!(
                            "`{}` is a nondeterminism source; wall-clock and entropy \
                             must never flow into verdicts or shares",
                            t.text
                        ),
                    ));
                }
                "unsafe" => {
                    let documented = toks.iter().any(|c| {
                        matches!(c.kind, TokKind::LineComment | TokKind::BlockComment)
                            && c.text.contains("SAFETY:")
                            && c.line + 3 >= t.line
                            && c.line <= t.line
                    });
                    if !documented {
                        raw.push(violation(
                            rel,
                            t.line,
                            UNSAFE_WITHOUT_SAFETY_COMMENT,
                            "`unsafe` without a `// SAFETY:` comment in the three \
                             preceding lines"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            },
            TokKind::Number
                if scoped(Scope::LibAndBin) && !is_float_home && has_negative_exponent(&t.text) =>
            {
                raw.push(violation(
                    rel,
                    t.line,
                    FLOAT_TOLERANCE_LITERAL,
                    format!(
                        "inline tolerance literal `{}`: use a named constant from \
                         wmcs_geom::float (EPS, VP_TOL, BB_TOL, SP_TOL, REL_TOL, …)",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
    raw
}

/// Apply suppressions: a pragma on line L covers violations on L and L+1.
fn apply_suppressions(
    raw: Vec<Violation>,
    suppressions: &mut [Suppression],
    out: &mut Vec<Violation>,
) {
    for v in raw {
        let suppressed = suppressions
            .iter_mut()
            .find(|s| s.rule == v.rule && (s.line == v.line || s.line + 1 == v.line));
        match suppressed {
            Some(s) => s.used = true,
            None => out.push(v),
        }
    }
}

/// Unused pragmas are themselves violations, so the exception list can
/// never rot silently.
fn flush_unused_pragmas(rel: &str, suppressions: &[Suppression], out: &mut Vec<Violation>) {
    for s in suppressions {
        if !s.used {
            out.push(violation(
                rel,
                s.line,
                AUDIT_PRAGMA,
                format!(
                    "pragma `allow({})` suppresses nothing on this or the next \
                     line; remove it",
                    s.rule
                ),
            ));
        }
    }
}

/// Parse `wmcs-audit:` pragmas out of the comment tokens. Malformed,
/// unknown-rule or unjustified pragmas are pushed as violations directly.
fn collect_pragmas(rel: &str, toks: &[Tok], violations: &mut Vec<Violation>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("wmcs-audit:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(name, just)| (name.trim(), just));
        let Some((name, justification)) = parsed else {
            violations.push(violation(
                rel,
                t.line,
                AUDIT_PRAGMA,
                format!(
                    "malformed pragma `{rest}`: expected \
                     `wmcs-audit: allow(<rule>): <justification>`"
                ),
            ));
            continue;
        };
        let Some(rule) = rule_by_name(name) else {
            violations.push(violation(
                rel,
                t.line,
                AUDIT_PRAGMA,
                format!("unknown rule `{name}` in allow(…) pragma"),
            ));
            continue;
        };
        let justification = justification
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        if justification.len() < MIN_JUSTIFICATION {
            violations.push(violation(
                rel,
                t.line,
                AUDIT_PRAGMA,
                format!(
                    "pragma `allow({name})` lacks a justification: every vetted \
                     exception must say why it is safe"
                ),
            ));
            continue;
        }
        out.push(Suppression {
            rule: rule.name,
            line: t.line,
            used: false,
        });
    }
    out
}

/// Per-token flag: inside a `#[cfg(test)] mod … { … }` region.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code = |t: &Tok| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment);
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !code(t) {
            i += 1;
            continue;
        }
        // Attribute: scan `#[…]`, noting whether it is cfg(test)-like.
        if is_punct(t, "#") {
            let mut j = i + 1;
            while j < toks.len() && !code(&toks[j]) {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "[") {
                let mut depth = 0usize;
                let mut has_cfg = false;
                let mut has_test = false;
                while j < toks.len() {
                    let a = &toks[j];
                    if is_punct(a, "[") {
                        depth += 1;
                    } else if is_punct(a, "]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.kind == TokKind::Ident {
                        has_cfg |= a.text == "cfg";
                        has_test |= a.text == "test";
                    }
                    j += 1;
                }
                if has_cfg && has_test {
                    pending_cfg_test = true;
                }
                i = j + 1;
                continue;
            }
        }
        if pending_cfg_test && t.kind == TokKind::Ident && t.text == "mod" {
            // Find the module body and mark it wholesale.
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "{") {
                let mut depth = 0usize;
                let start = j;
                while j < toks.len() {
                    if is_punct(&toks[j], "{") {
                        depth += 1;
                    } else if is_punct(&toks[j], "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j.min(toks.len() - 1) + 1).skip(start) {
                    *m = true;
                }
                i = j + 1;
            } else {
                i = j + 1;
            }
            pending_cfg_test = false;
            continue;
        }
        // Any other code token consumes a pending cfg(test) attribute
        // (e.g. `#[cfg(test)] use …`): the region heuristic only tracks
        // whole test modules, which is the convention in this workspace.
        if pending_cfg_test {
            pending_cfg_test = false;
        }
        i += 1;
    }
    mask
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn violation(rel: &str, line: u32, rule: &'static str, message: String) -> Violation {
    Violation {
        file: rel.to_string(),
        line,
        rule,
        message,
    }
}

/// Collect every auditable `.rs` file under the workspace root, sorted for
/// deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            if path.is_dir() {
                let first = rel.iter().next().and_then(|c| c.to_str());
                if matches!(first, Some("vendor" | "target" | ".git" | ".github")) {
                    continue;
                }
                stack.push(path);
            } else if classify(&rel).is_some() {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Read a crate name from a `Cargo.toml`, falling back to `fallback`,
/// normalised to identifier form (hyphens → underscores). Cached per
/// manifest path.
fn crate_name(
    root: &Path,
    manifest_rel: &Path,
    fallback: &str,
    cache: &mut BTreeMap<PathBuf, String>,
) -> String {
    if let Some(n) = cache.get(manifest_rel) {
        return n.clone();
    }
    let name = std::fs::read_to_string(root.join(manifest_rel))
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.trim()
                    .strip_prefix("name")
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix('='))
                    .map(str::trim)
                    .and_then(|v| v.strip_prefix('"'))
                    .and_then(|v| v.split('"').next())
                    .map(str::to_string)
            })
        })
        .unwrap_or_else(|| fallback.to_string())
        .replace('-', "_");
    cache.insert(manifest_rel.to_path_buf(), name.clone());
    name
}

/// Derive a file's module path (crate name first) from its workspace-
/// relative location: `crates/wireless/src/service.rs` →
/// `["wmcs_wireless", "service"]`, with `lib`/`main`/`mod` stems dropped
/// so `crate::`-relative call paths line up with qualified item paths.
fn module_path(root: &Path, rel: &Path, cache: &mut BTreeMap<PathBuf, String>) -> Vec<String> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (manifest, fallback, rest): (PathBuf, &str, &[&str]) =
        if parts.len() > 2 && parts[0] == "crates" {
            (
                Path::new("crates").join(parts[1]).join("Cargo.toml"),
                parts[1],
                &parts[2..],
            )
        } else {
            (PathBuf::from("Cargo.toml"), "workspace", &parts[..])
        };
    let mut out = vec![crate_name(root, &manifest, fallback, cache)];
    for (i, p) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if !last && *p == "src" {
            continue;
        }
        let seg = if last { p.trim_end_matches(".rs") } else { p };
        if last && matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        out.push(seg.to_string());
    }
    out
}

/// Parse every auditable file under `root` and build the call graph.
pub fn parse_workspace(root: &Path) -> std::io::Result<Workspace> {
    let files = workspace_files(root)?;
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut cache: BTreeMap<PathBuf, String> = BTreeMap::new();
    for rel in &files {
        let class = classify(rel).expect("workspace_files only returns classified files");
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_str()
            .expect("workspace paths are valid UTF-8")
            .replace('\\', "/");
        let module = module_path(root, rel, &mut cache);
        parsed.push(parse_file(&rel_str, lex(&src), module, class));
    }
    let graph = CallGraph::build(&parsed);
    Ok(Workspace {
        root: root.to_path_buf(),
        files: parsed,
        graph,
    })
}

/// Audit the whole workspace rooted at `root`: token rules on every file
/// plus the workspace analyses over the call graph, with uniform pragma
/// handling.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let ws = parse_workspace(root)?;
    Ok(audit_parsed(&ws))
}

/// Run the full audit over an already-parsed workspace.
pub fn audit_parsed(ws: &Workspace) -> AuditReport {
    // Analysis violations, grouped per file so the owning file's pragmas
    // can suppress them. Violations against non-source files (e.g. the
    // committed panic baseline) pass through unsuppressed.
    let mut by_file: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    let mut passthrough: Vec<Violation> = Vec::new();
    for analysis in ANALYSES {
        for v in analysis.run(ws) {
            if ws.files.iter().any(|f| f.rel == v.file) {
                by_file.entry(v.file.clone()).or_default().push(v);
            } else {
                passthrough.push(v);
            }
        }
    }
    let mut violations: Vec<Violation> = Vec::new();
    for file in &ws.files {
        let mut out: Vec<Violation> = Vec::new();
        let mut suppressions = collect_pragmas(&file.rel, &file.toks, &mut out);
        let mut raw = scan_tokens(&file.rel, &file.toks, file.class);
        raw.extend(by_file.remove(&file.rel).unwrap_or_default());
        apply_suppressions(raw, &mut suppressions, &mut out);
        flush_unused_pragmas(&file.rel, &suppressions, &mut out);
        violations.extend(out);
    }
    violations.extend(passthrough);
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AuditReport {
        violations,
        files_scanned: ws.files.len(),
        functions: ws.graph.nodes.len(),
        call_edges: ws.graph.n_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn classification_matches_build_roles() {
        let c = |p: &str| classify(Path::new(p));
        assert_eq!(c("crates/game/src/cost.rs"), Some(FileClass::Lib));
        assert_eq!(c("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(
            c("crates/bench/src/bin/all_experiments.rs"),
            Some(FileClass::Bin)
        );
        assert_eq!(c("crates/audit/src/main.rs"), Some(FileClass::Bin));
        assert_eq!(
            c("crates/wireless/tests/session_props.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(
            c("crates/bench/benches/drop_engine.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(c("examples/quickstart.rs"), Some(FileClass::Test));
        assert_eq!(c("vendor/rand/src/lib.rs"), None);
        assert_eq!(c("crates/audit/fixtures/clean.rs"), None);
        assert_eq!(c("README.md"), None);
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_scoped_rules() {
        let src = "
fn lib_code() -> usize { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        let x = 1e-9;
        let _ = (m.len(), x, Some(2).unwrap());
    }
}
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "test-module code must be exempt: {vs:?}");
    }

    #[test]
    fn lib_code_before_and_after_test_mod_is_still_scanned() {
        let src = "
use std::collections::HashMap;
#[cfg(test)]
mod tests {}
fn after() { let _ = 1e-9; }
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"nondeterministic-iteration"), "{vs:?}");
        assert!(rules.contains(&"float-tolerance-literal"), "{vs:?}");
    }

    #[test]
    fn pragma_same_line_and_next_line_both_cover() {
        let src = "
// wmcs-audit: allow(float-tolerance-literal): pinned paper value, not a tolerance
const A: f64 = 1e-9;
const B: f64 = 2e-9; // wmcs-audit: allow(float-tolerance-literal): second pinned paper value
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unused_and_unjustified_pragmas_are_violations() {
        let src = "
// wmcs-audit: allow(unwrap-in-lib): nothing here actually unwraps anywhere
fn fine() {}
// wmcs-audit: allow(lossy-cast)
fn cast(x: usize) -> u32 { x as u32 }
// wmcs-audit: bogus
fn also_fine() {}
";
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        let pragma_violations = vs.iter().filter(|v| v.rule == "audit-pragma").count();
        assert_eq!(pragma_violations, 3, "{vs:?}");
        // The unjustified allow(lossy-cast) must NOT suppress the cast.
        assert!(vs.iter().any(|v| v.rule == "lossy-cast"), "{vs:?}");
    }

    #[test]
    fn unsafe_rule_applies_even_in_tests_and_accepts_safety_comments() {
        let bad = "fn f() { let p = 0 as *const u8; unsafe { p.read() }; }";
        let vs = scan_file("crates/x/tests/t.rs", bad, FileClass::Test);
        assert!(vs.iter().any(|v| v.rule == "unsafe-without-safety-comment"));

        let good = "
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { p.read() }
}
";
        let vs = scan_file("crates/x/src/lib.rs", good, FileClass::Lib);
        assert!(
            !vs.iter().any(|v| v.rule == "unsafe-without-safety-comment"),
            "{vs:?}"
        );
    }

    #[test]
    fn bins_are_exempt_from_unwrap_but_not_determinism() {
        let src = "fn main() { let _ = Some(1).unwrap(); let _ = 1e-9; }";
        let vs = scan_file("crates/bench/src/bin/x.rs", src, FileClass::Bin);
        assert!(!vs.iter().any(|v| v.rule == "unwrap-in-lib"), "{vs:?}");
        assert!(
            vs.iter().any(|v| v.rule == "float-tolerance-literal"),
            "{vs:?}"
        );
    }

    #[test]
    fn float_home_may_define_tolerances() {
        let src = "pub const EPS: f64 = 1e-9;";
        let vs = scan_file("crates/geom/src/float.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "{vs:?}");
        let vs = scan_file("crates/geom/src/power.rs", src, FileClass::Lib);
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn string_and_comment_content_never_trips_rules() {
        let src = r#"
// HashMap, unwrap(), 1e-9, Instant::now() — all just prose.
fn f() -> &'static str { "HashMap 1e-9 unsafe unwrap Instant" }
"#;
        let vs = scan_file("crates/x/src/lib.rs", src, FileClass::Lib);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn module_paths_derive_from_location_and_manifest() {
        // No manifest on disk: fall back to the directory name.
        let mut cache = BTreeMap::new();
        let root = Path::new("/nonexistent-audit-test-root");
        assert_eq!(
            module_path(
                root,
                Path::new("crates/wireless/src/service.rs"),
                &mut cache
            ),
            ["wireless", "service"]
        );
        assert_eq!(
            module_path(root, Path::new("crates/wireless/src/lib.rs"), &mut cache),
            ["wireless"]
        );
        assert_eq!(
            module_path(root, Path::new("src/lib.rs"), &mut cache),
            ["workspace"]
        );
        assert_eq!(
            module_path(root, Path::new("crates/bench/src/bin/sweep.rs"), &mut cache),
            ["bench", "bin", "sweep"]
        );
    }

    #[test]
    fn report_json_escapes_and_round_trips_shape() {
        let report = AuditReport {
            violations: vec![Violation {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "unwrap-in-lib",
                message: "say \"why\"\nplease".to_string(),
            }],
            files_scanned: 1,
            functions: 2,
            call_edges: 1,
        };
        let j = report.to_json();
        assert!(j.starts_with("{\"schema\":\"wmcs-audit/v2\""), "{j}");
        assert!(j.contains("\"files_scanned\":1"), "{j}");
        assert!(j.contains("\\\"why\\\"\\nplease"), "{j}");
        assert!(!j.contains('\n'), "JSON must be one line for CI: {j}");
    }
}
