//! A lightweight item parser on top of the [`crate::lexer`] token stream.
//!
//! The v2 call-graph analyses need to know *which function* a token
//! belongs to and *what that function calls* — not full Rust semantics.
//! This parser extracts exactly that much from one file:
//!
//! * every `fn` item (free, inherent/trait method, or nested), with its
//!   fully-qualified path, visibility, enclosing `impl`/`trait` type and
//!   body token range;
//! * every call site (`name(…)`, `Path::name(…)`, `.name(…)`), attributed
//!   to its innermost enclosing function, with `use`-alias resolution
//!   applied to path-qualified calls so a renamed import cannot dodge a
//!   resolved-path check;
//! * the file's `use` alias table (`use a::b::C as D` ⇒ `D → a::b::C`,
//!   including brace groups and nested groups).
//!
//! The grammar subset is deliberately "workspace Rust": no macro
//! expansion, no type inference, generics skipped structurally. Anything
//! the parser does not understand degrades to weaker resolution (a call
//! with an unresolvable path keeps its written path), never to a crash —
//! the same posture as the lexer.

use crate::engine::FileClass;
use crate::lexer::{Tok, TokKind};

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Fully-qualified path: `crate_name::module::Type::name` for
    /// methods/associated functions, `crate_name::module::name` for free
    /// functions (inline `mod` scopes included).
    pub qual: String,
    /// Enclosing `impl`/`trait` self-type name, if any.
    pub self_ty: Option<String>,
    /// `pub fn` with unrestricted visibility (`pub(crate)` etc. count as
    /// private — they are not API surface).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (brace to matching brace,
    /// inclusive) in the file's token stream; empty for bodyless trait
    /// method declarations.
    pub body: std::ops::Range<usize>,
    /// Defined inside a `#[cfg(test)] mod … { … }` region of a lib/bin
    /// file — such functions never ship, so reachability analyses skip
    /// them the same way the token rules do.
    pub in_cfg_test: bool,
}

/// One call site inside a function body (or at item scope).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (last path segment / method name).
    pub name: String,
    /// Alias-resolved path segments for `Path::name(…)` calls (the
    /// written path with its first segment expanded through the file's
    /// `use` table; `crate`/`self`/`super` expanded against the module
    /// path). Empty for bare calls and method calls.
    pub path: Vec<String>,
    /// `.name(…)` method-call form (receiver type unknown).
    pub is_method: bool,
    /// Index into [`ParsedFile::fns`] of the innermost enclosing
    /// function, if any.
    pub owner: Option<usize>,
    /// 1-based line of the called name.
    pub line: u32,
}

/// One file's parsed items, plus the token stream the ranges index into.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path (diagnostic anchor).
    pub rel: String,
    /// Build-role classification of the file.
    pub class: FileClass,
    /// The lexed token stream (analyses scan body ranges of it).
    pub toks: Vec<Tok>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// All call sites, in source order.
    pub calls: Vec<CallSite>,
    /// `use` alias table: local name → full path segments.
    pub aliases: Vec<(String, Vec<String>)>,
    /// Module path of the file itself (crate name + file modules).
    pub module: Vec<String>,
}

impl ParsedFile {
    /// Look an alias up by local name.
    pub fn resolve_alias(&self, name: &str) -> Option<&[String]> {
        self.aliases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }
}

/// What kind of scope a brace opened.
#[derive(Debug, Clone)]
enum ScopeKind {
    /// `mod name { … }`.
    Mod(String),
    /// `impl Type { … }` / `trait Name { … }` — `self_ty` for methods.
    SelfTy(String),
    /// `fn … { … }` — index into `fns`. Other braces (blocks, closures,
    /// match arms, struct literals) only bump the depth counter and never
    /// land on the scope stack.
    Fn(usize),
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth at which this scope closes.
    depth: usize,
}

/// Parse one lexed file. `module` is the module path derived from the
/// file's location (crate name first); `class` is its build role.
pub fn parse_file(rel: &str, toks: Vec<Tok>, module: Vec<String>, class: FileClass) -> ParsedFile {
    let in_test = crate::engine::test_region_mask(&toks);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut calls: Vec<CallSite> = Vec::new();
    let mut aliases: Vec<(String, Vec<String>)> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;

    let is_p = |ci: usize, s: &str| {
        code.get(ci)
            .is_some_and(|&i| toks[i].kind == TokKind::Punct && toks[i].text == s)
    };
    let ident_at = |ci: usize| -> Option<&str> {
        code.get(ci)
            .and_then(|&i| (toks[i].kind == TokKind::Ident).then_some(toks[i].text.as_str()))
    };

    let mut ci = 0usize;
    while ci < code.len() {
        let t = &toks[code[ci]];
        match t.kind {
            TokKind::Punct if t.text == "{" => {
                depth += 1;
                ci += 1;
            }
            TokKind::Punct if t.text == "}" => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.depth > depth) {
                    let s = scopes.pop().expect("non-empty scope stack");
                    if let ScopeKind::Fn(fi) = s.kind {
                        fns[fi].body.end = code[ci] + 1;
                    }
                }
                ci += 1;
            }
            TokKind::Ident if t.text == "use" => {
                ci = parse_use(&toks, &code, ci + 1, &module, &mut aliases);
            }
            TokKind::Ident if t.text == "mod" => {
                // `mod name { … }` opens a module scope; `mod name;` is a
                // file module handled by the per-file module path.
                if let Some(name) = ident_at(ci + 1) {
                    let name = name.to_string();
                    if is_p(ci + 2, "{") {
                        scopes.push(Scope {
                            kind: ScopeKind::Mod(name),
                            depth: depth + 1,
                        });
                        depth += 1;
                        ci += 3;
                    } else {
                        ci += 2;
                    }
                } else {
                    ci += 1;
                }
            }
            TokKind::Ident if t.text == "impl" || t.text == "trait" => {
                let is_trait = t.text == "trait";
                let (name, next) = parse_impl_header(&toks, &code, ci + 1, is_trait);
                if is_p(next, "{") {
                    scopes.push(Scope {
                        kind: ScopeKind::SelfTy(name),
                        depth: depth + 1,
                    });
                    depth += 1;
                    ci = next + 1;
                } else {
                    ci = next;
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let Some(name) = ident_at(ci + 1) else {
                    ci += 1;
                    continue;
                };
                let name = name.to_string();
                let is_pub = fn_is_pub(&toks, &code, ci);
                let (self_ty, qual) = qualify(&module, &scopes, &name);
                let fi = fns.len();
                fns.push(FnItem {
                    name,
                    qual,
                    self_ty,
                    is_pub,
                    line: t.line,
                    body: 0..0,
                    in_cfg_test: in_test[code[ci]],
                });
                // Skip the signature (generics, params, return type,
                // where clause) up to the body `{` or a bodyless `;`.
                let mut j = ci + 2;
                let mut angle = 0i32;
                let mut paren = 0i32;
                while j < code.len() {
                    let tt = &toks[code[j]];
                    if tt.kind == TokKind::Punct {
                        match tt.text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "{" if angle <= 0 && paren == 0 => break,
                            ";" if paren == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if j < code.len() && is_p(j, "{") {
                    fns[fi].body = code[j]..code[j] + 1;
                    scopes.push(Scope {
                        kind: ScopeKind::Fn(fi),
                        depth: depth + 1,
                    });
                    depth += 1;
                    ci = j + 1;
                } else {
                    ci = j.saturating_add(1).min(code.len());
                }
            }
            TokKind::Ident => {
                // Call-site detection: Ident followed by `(`, excluding
                // declarations (preceded by `fn`) and macro calls
                // (followed by `!`).
                if is_p(ci + 1, "(") && !is_keyword(&t.text) {
                    let owner = innermost_fn(&scopes);
                    let prev_dot = is_p(ci.wrapping_sub(1), ".") && ci > 0;
                    let path = call_path(&toks, &code, ci, &module, &aliases);
                    if prev_dot {
                        calls.push(CallSite {
                            name: t.text.clone(),
                            path: Vec::new(),
                            is_method: true,
                            owner,
                            line: t.line,
                        });
                    } else {
                        calls.push(CallSite {
                            name: t.text.clone(),
                            path,
                            is_method: false,
                            owner,
                            line: t.line,
                        });
                    }
                }
                ci += 1;
            }
            _ => ci += 1,
        }
    }
    // Close any scopes left open by a truncated file.
    while let Some(s) = scopes.pop() {
        if let ScopeKind::Fn(fi) = s.kind {
            fns[fi].body.end = toks.len();
        }
    }
    ParsedFile {
        rel: rel.to_string(),
        class,
        toks,
        fns,
        calls,
        aliases,
        module,
    }
}

/// Keywords that look like calls when followed by `(` but are not.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "let"
            | "else"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "use"
            | "where"
            | "impl"
            | "dyn"
            | "ref"
            | "mut"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "break"
            | "continue"
            | "await"
    )
}

/// Innermost enclosing function on the scope stack.
fn innermost_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s.kind {
        ScopeKind::Fn(fi) => Some(fi),
        _ => None,
    })
}

/// Was the `fn` at code index `ci` declared `pub` (unrestricted)?
/// Walks back over `const`/`unsafe`/`async`/`extern "…"` qualifiers.
fn fn_is_pub(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    let mut j = ci;
    while j > 0 {
        j -= 1;
        let t = &toks[code[j]];
        match t.kind {
            TokKind::Ident
                if matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            TokKind::Str => {} // extern ABI string
            TokKind::Ident if t.text == "pub" => return true,
            // `pub(crate)` etc.: the `)` of the restriction lands here
            // before `pub` — restricted visibility is not public API.
            _ => return false,
        }
    }
    false
}

/// Parse an `impl`/`trait` header starting after the keyword. Returns the
/// self-type name (last path segment of the implemented-on type, with
/// `impl Trait for Type` taking `Type`) and the code index of the body
/// `{` (or wherever scanning stopped).
fn parse_impl_header(
    toks: &[Tok],
    code: &[usize],
    mut ci: usize,
    is_trait: bool,
) -> (String, usize) {
    let mut angle = 0i32;
    let mut in_where = false;
    let mut name = String::new();
    while ci < code.len() {
        let t = &toks[code[ci]];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" if angle <= 0 => break,
                _ => {}
            },
            TokKind::Ident if angle <= 0 && !in_where => match t.text.as_str() {
                // `impl Trait for Type`: the self type restarts after `for`.
                "for" if !is_trait => name.clear(),
                "where" => in_where = true,
                "dyn" => {}
                // The last path-segment ident before the body (or `for`,
                // or `where`) is the self-type name.
                other => name = other.to_string(),
            },
            _ => {}
        }
        ci += 1;
    }
    (name, ci)
}

/// Build the qualified path of a `fn` from the module path and scope
/// stack. Returns `(self_ty, qual)`.
fn qualify(module: &[String], scopes: &[Scope], name: &str) -> (Option<String>, String) {
    let mut parts: Vec<&str> = module.iter().map(String::as_str).collect();
    let mut self_ty: Option<String> = None;
    for s in scopes {
        match &s.kind {
            ScopeKind::Mod(m) => parts.push(m),
            ScopeKind::SelfTy(t) => self_ty = Some(t.clone()),
            _ => {}
        }
    }
    let mut parts: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    if let Some(t) = &self_ty {
        parts.push(t.clone());
    }
    parts.push(name.to_string());
    let qual = parts.join("::");
    (self_ty, qual)
}

/// Extract and resolve the `a::b::name` path written before a call at
/// code index `ci` (the called name). Returns the full resolved segment
/// list including the name, or empty if the call is bare.
fn call_path(
    toks: &[Tok],
    code: &[usize],
    ci: usize,
    module: &[String],
    aliases: &[(String, Vec<String>)],
) -> Vec<String> {
    // Walk back over `seg ::` pairs: … seg : : seg : : name.
    let mut segs: Vec<String> = vec![toks[code[ci]].text.clone()];
    let mut j = ci;
    loop {
        if j < 3
            || toks[code[j - 1]].kind != TokKind::Punct
            || toks[code[j - 1]].text != ":"
            || toks[code[j - 2]].kind != TokKind::Punct
            || toks[code[j - 2]].text != ":"
        {
            break;
        }
        // Skip a turbofish `::<…>` segment: `seg :: < … > :: name` — the
        // token before `::` would be `>`; paths in this workspace don't
        // use turbofish before the final name, so treat it as a stop.
        let prev = &toks[code[j - 3]];
        if prev.kind != TokKind::Ident || is_keyword_path_stop(&prev.text) {
            if prev.kind == TokKind::Ident {
                segs.push(prev.text.clone());
            }
            break;
        }
        segs.push(prev.text.clone());
        j -= 3;
    }
    if segs.len() < 2 {
        return Vec::new();
    }
    segs.reverse();
    resolve_path(segs, module, aliases)
}

/// Path-leading keywords that terminate backward path collection but are
/// kept as the first segment for relative-path resolution.
fn is_keyword_path_stop(s: &str) -> bool {
    matches!(s, "crate" | "self" | "super" | "Self")
}

/// Resolve a written path against the module path and `use` aliases.
pub fn resolve_path(
    mut segs: Vec<String>,
    module: &[String],
    aliases: &[(String, Vec<String>)],
) -> Vec<String> {
    match segs.first().map(String::as_str) {
        Some("crate") => {
            let mut out = vec![module.first().cloned().unwrap_or_default()];
            out.extend(segs.drain(1..));
            out
        }
        Some("self") => {
            let mut out: Vec<String> = module.to_vec();
            out.extend(segs.drain(1..));
            out
        }
        Some("super") => {
            let mut out: Vec<String> = module[..module.len().saturating_sub(1)].to_vec();
            out.extend(segs.drain(1..));
            out
        }
        Some(first) => {
            if let Some((_, full)) = aliases.iter().find(|(n, _)| n == first) {
                let mut out = full.clone();
                out.extend(segs.drain(1..));
                out
            } else {
                segs
            }
        }
        None => segs,
    }
}

/// Parse a `use` declaration starting at the code index after `use`.
/// Handles plain paths, `as` renames, brace groups (nested), and globs
/// (ignored). Returns the code index after the terminating `;`.
fn parse_use(
    toks: &[Tok],
    code: &[usize],
    start: usize,
    module: &[String],
    aliases: &mut Vec<(String, Vec<String>)>,
) -> usize {
    // Collect the raw token texts of the declaration up to `;`.
    let mut ci = start;
    let mut flat: Vec<&Tok> = Vec::new();
    while ci < code.len() {
        let t = &toks[code[ci]];
        if t.kind == TokKind::Punct && t.text == ";" {
            ci += 1;
            break;
        }
        flat.push(t);
        ci += 1;
    }
    // Recursive expansion of the use tree.
    fn walk(
        toks: &[&Tok],
        mut i: usize,
        prefix: &[String],
        module: &[String],
        aliases: &mut Vec<(String, Vec<String>)>,
    ) -> usize {
        let mut path: Vec<String> = prefix.to_vec();
        while i < toks.len() {
            let t = toks[i];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "as") => {
                    if let Some(alias) = toks.get(i + 1) {
                        let resolved = resolve_leading(&path, module);
                        aliases.push((alias.text.clone(), resolved));
                    }
                    return i + 2;
                }
                (TokKind::Ident, _) => {
                    path.push(t.text.clone());
                    i += 1;
                }
                (TokKind::Punct, ":") => i += 1,
                (TokKind::Punct, "{") => {
                    // Group: each comma-separated subtree extends `path`.
                    i += 1;
                    loop {
                        i = walk(toks, i, &path, module, aliases);
                        match toks.get(i).map(|t| t.text.as_str()) {
                            Some(",") => i += 1,
                            Some("}") => return i + 1,
                            _ => return i,
                        }
                    }
                }
                (TokKind::Punct, "*") => {
                    // Glob imports resolve nothing (documented limitation).
                    return i + 1;
                }
                (TokKind::Punct, "," | "}") => break,
                _ => i += 1,
            }
        }
        if path.len() > prefix.len() {
            let name = path.last().cloned().unwrap_or_default();
            let resolved = resolve_leading(&path, module);
            aliases.push((name, resolved));
        }
        i
    }
    /// Expand `crate`/`self`/`super` at the head of a use path.
    fn resolve_leading(path: &[String], module: &[String]) -> Vec<String> {
        resolve_path(path.to_vec(), module, &[])
    }
    walk(&flat, 0, &[], module, aliases);
    ci
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(
            "crates/x/src/lib.rs",
            lex(src),
            vec!["wmcs_x".into(), "lib".into()],
            FileClass::Lib,
        )
    }

    #[test]
    fn free_fns_methods_and_nesting_qualify() {
        let p = parse(
            "
pub fn top() {}
mod inner {
    pub struct S;
    impl S {
        pub fn method(&self) { helper(); }
        fn helper_caller() { self::helper(); }
    }
    fn helper() {}
}
trait T { fn required(&self); fn provided(&self) { } }
",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert!(quals.contains(&"wmcs_x::lib::top"));
        assert!(quals.contains(&"wmcs_x::lib::inner::S::method"));
        assert!(quals.contains(&"wmcs_x::lib::inner::helper"));
        assert!(quals.contains(&"wmcs_x::lib::T::required"));
        assert!(quals.contains(&"wmcs_x::lib::T::provided"));
        let method = p.fns.iter().find(|f| f.name == "method").expect("method");
        assert!(method.is_pub);
        assert_eq!(method.self_ty.as_deref(), Some("S"));
        let helper = p.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert!(!helper.is_pub);
        // The call inside `method` is attributed to `method`.
        let call = p.calls.iter().find(|c| c.name == "helper").expect("call");
        assert_eq!(p.fns[call.owner.expect("owned")].name, "method");
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let p = parse("struct S; trait T { fn f(&self); } impl T for S { fn f(&self) {} }");
        let f = p
            .fns
            .iter()
            .find(|f| f.name == "f" && f.self_ty.as_deref() == Some("S"))
            .expect("impl fn");
        assert_eq!(f.qual, "wmcs_x::lib::S::f");
    }

    #[test]
    fn use_aliases_resolve_call_paths() {
        let p = parse(
            "
use wmcs_wireless::universal::UniversalTree as UT;
use std::collections::{BTreeMap, BTreeSet as Set};
fn f() { let _ = UT::mst_tree(); let _ = Set::new(); }
",
        );
        let call = p.calls.iter().find(|c| c.name == "mst_tree").expect("call");
        assert_eq!(
            call.path,
            ["wmcs_wireless", "universal", "UniversalTree", "mst_tree"]
        );
        let set = p.calls.iter().find(|c| c.name == "new").expect("Set::new");
        assert_eq!(set.path, ["std", "collections", "BTreeSet", "new"]);
    }

    #[test]
    fn crate_relative_paths_resolve_against_the_module() {
        let p = parse("fn f() { crate::builder::canonical(); }");
        let call = p
            .calls
            .iter()
            .find(|c| c.name == "canonical")
            .expect("call");
        assert_eq!(call.path, ["wmcs_x", "builder", "canonical"]);
    }

    #[test]
    fn method_calls_are_marked_and_pathless() {
        let p = parse("fn f(v: &[u32]) { v.iter().sum::<u32>(); helper(); }");
        let iter = p.calls.iter().find(|c| c.name == "iter").expect("iter");
        assert!(iter.is_method);
        assert!(iter.path.is_empty());
        let helper = p.calls.iter().find(|c| c.name == "helper").expect("helper");
        assert!(!helper.is_method);
    }

    #[test]
    fn pub_crate_is_not_public_api() {
        let p = parse("pub(crate) fn internal() {} pub fn api() {} pub const fn capi() {}");
        assert!(
            !p.fns
                .iter()
                .find(|f| f.name == "internal")
                .expect("fn")
                .is_pub
        );
        assert!(p.fns.iter().find(|f| f.name == "api").expect("fn").is_pub);
        assert!(p.fns.iter().find(|f| f.name == "capi").expect("fn").is_pub);
    }

    #[test]
    fn bodies_cover_their_braces_and_close() {
        let src = "fn a() { if x { y(); } } fn b() {}";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        let body: String = p.toks[a.body.clone()]
            .iter()
            .map(|t| t.text.clone())
            .collect::<Vec<_>>()
            .join(" ");
        assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
        assert!(body.contains('y'), "{body}");
    }

    #[test]
    fn generic_signatures_do_not_derail_body_detection() {
        let p = parse(
            "fn g<T: Ord<Rhs = U>, const N: usize>(x: Vec<T>) -> impl Iterator<Item = T> \
             where T: Clone { inner() }",
        );
        assert_eq!(p.fns.len(), 1);
        let call = p.calls.iter().find(|c| c.name == "inner").expect("call");
        assert_eq!(call.owner, Some(0));
    }
}
