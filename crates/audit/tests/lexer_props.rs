//! Adversarial property tests for the audit lexer.
//!
//! The whole audit stands on the lexer never being fooled by
//! rule-triggering text inside strings or comments, and never crashing on
//! broken input (a syntactically invalid file must degrade to weaker
//! auditing, not take CI down). Two attack surfaces, two suites:
//!
//! * **Fragment goldens** — each adversarial fragment (nested block
//!   comments, raw/byte strings at several hash depths, lifetimes vs char
//!   literals, exponent floats vs integer suffixes) is pinned to its exact
//!   token-kind sequence, and random *sequences* of fragments must lex to
//!   the concatenation of their golden kinds: no fragment may bleed past
//!   its delimiter and swallow a neighbour.
//! * **Char soup** — random strings over the lexer's trickiest alphabet
//!   (quote, backslash, `r`, `#`, comment stars …) must lex without
//!   panicking, deterministically, with monotone line numbers.

use proptest::collection;
use proptest::prelude::*;
use wmcs_audit::lexer::{lex, TokKind};

use TokKind::{BlockComment, CharLit, Ident, Lifetime, LineComment, Number, Punct, Str};

/// Adversarial single-line fragments with their golden kind sequences.
/// Every pair of fragments must compose when separated by a newline.
const FRAGMENTS: &[(&str, &[TokKind])] = &[
    ("/* outer /* nested */ tail */", &[BlockComment]),
    ("/* a /* b /* c */ */ still comment */", &[BlockComment]),
    ("r\"raw // not a comment\"", &[Str]),
    ("r#\"raw \" quote inside\"#", &[Str]),
    ("r##\"deeper \"# terminator inside\"##", &[Str]),
    ("br#\"byte raw /* not a comment */\"#", &[Str]),
    ("b\"bytes with \\\" escape\"", &[Str]),
    ("\"plain /* not a comment */ string\"", &[Str]),
    ("\"escaped \\\" quote\"", &[Str]),
    ("'x'", &[CharLit]),
    ("b'\\n'", &[CharLit]),
    ("'\\''", &[CharLit]),
    ("'static", &[Lifetime]),
    ("&'a str", &[Punct, Lifetime, Ident]),
    ("// line comment with \" and /* inside", &[LineComment]),
    ("1e-9", &[Number]),
    ("2.5E+3f64", &[Number]),
    ("1_000u32", &[Number]),
    ("0xFF_u8", &[Number]),
    ("0b1010", &[Number]),
    ("1..9", &[Number, Punct, Punct, Number]),
    ("1.max(2)", &[Number, Punct, Ident, Punct, Number, Punct]),
    ("x.unwrap()", &[Ident, Punct, Ident, Punct, Punct]),
];

/// The pinned goldens themselves, one by one, with readable failures.
#[test]
fn fragment_goldens_hold() {
    for (src, want) in FRAGMENTS {
        let got: Vec<TokKind> = lex(src).iter().map(|t| t.kind).collect();
        assert_eq!(&got, want, "token kinds for {src:?}");
    }
}

/// Characters the lexer branches on; soup drawn from these hits every
/// delimiter state machine (strings, raw hashes, comments, exponents).
const ALPHABET: &[char] = &[
    '"', '\'', '\\', '/', '*', '#', 'r', 'b', 'e', 'E', '1', '9', '0', '.', '-', '+', '_', 'a',
    'x', 'u', '3', '2', '\n', ' ', '(', ')', '!', '&',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Fragment sequences compose: joined with newlines, the token stream
    /// is exactly the concatenation of the per-fragment goldens, and every
    /// token carries the 1-based line of its fragment — so no raw string,
    /// nested comment or line comment ever swallows its neighbour.
    #[test]
    fn fragments_never_bleed_across_newlines(picks in collection::vec(0u64..23, 1..24)) {
        let idxs: Vec<usize> = picks
            .iter()
            .map(|&p| usize::try_from(p).expect("fragment index fits usize") % FRAGMENTS.len())
            .collect();
        let src: Vec<&str> = idxs.iter().map(|&i| FRAGMENTS[i].0).collect();
        let toks = lex(&src.join("\n"));
        let mut at = 0usize;
        for (fragno, &i) in idxs.iter().enumerate() {
            let want = FRAGMENTS[i].1;
            for &kind in want {
                let t = toks.get(at).unwrap_or_else(|| {
                    panic!("fragment {i} ({:?}) truncated at token {at}", FRAGMENTS[i].0)
                });
                prop_assert_eq!(t.kind, kind, "fragment {} ({:?})", i, FRAGMENTS[i].0);
                let line =
                    u32::try_from(fragno + 1).expect("fragment count fits u32");
                prop_assert_eq!(t.line, line, "line of fragment {} ({:?})", i, FRAGMENTS[i].0);
                at += 1;
            }
        }
        prop_assert_eq!(at, toks.len(), "trailing tokens after the last fragment");
    }

    /// Arbitrary soup over the delimiter alphabet: the lexer must not
    /// panic (unterminated strings and comments degrade, not crash), must
    /// be deterministic, and must keep token lines monotone and in range.
    #[test]
    fn char_soup_lexes_deterministically(picks in collection::vec(0u64..29, 0..120)) {
        let src: String = picks
            .iter()
            .map(|&p| ALPHABET[usize::try_from(p).expect("alphabet index fits usize") % ALPHABET.len()])
            .collect();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.len(), b.len());
        let total_lines = u32::try_from(src.matches('\n').count() + 1)
            .expect("soup line count fits u32");
        let mut prev = 1u32;
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(x.line, y.line);
            prop_assert!(x.line >= prev, "token lines must be monotone in {src:?}");
            prop_assert!(x.line <= total_lines, "token line past EOF in {src:?}");
            prev = x.line;
        }
    }
}
