//! End-to-end tests for the `wmcs-audit` binary: one fixture per rule must
//! fail with the right diagnostic, clean fixtures must pass, and the
//! workspace itself must self-audit clean.

use std::path::Path;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .display()
        .to_string()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wmcs-audit"))
        .args(args)
        .output()
        .expect("wmcs-audit binary spawns")
}

fn audit_lib(name: &str) -> (i32, String) {
    let out = run(&["--class", "lib", &fixture(name)]);
    let code = out.status.code().expect("binary exits normally");
    (
        code,
        String::from_utf8(out.stdout).expect("diagnostics are UTF-8"),
    )
}

#[test]
fn rule_fixtures_fail_with_their_diagnostic() {
    for (file, rule, needle) in [
        (
            "nondeterministic_iteration.rs",
            "nondeterministic-iteration",
            "HashMap",
        ),
        ("float_tolerance.rs", "float-tolerance-literal", "1e-9"),
        ("unwrap_in_lib.rs", "unwrap-in-lib", ".unwrap()"),
        ("lossy_cast.rs", "lossy-cast", "u32"),
        (
            "nondeterminism_source.rs",
            "nondeterminism-source",
            "Instant",
        ),
        (
            "unsafe_no_safety.rs",
            "unsafe-without-safety-comment",
            "SAFETY",
        ),
    ] {
        let (code, stdout) = audit_lib(file);
        assert_eq!(code, 1, "{file} must fail the audit:\n{stdout}");
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "{file} must report [{rule}]:\n{stdout}"
        );
        assert!(
            stdout.contains(needle),
            "{file} diagnostic must mention {needle}:\n{stdout}"
        );
        // Diagnostics carry file:line anchors.
        assert!(
            stdout.contains(&format!("{file}:")) || stdout.contains(&fixture(file)),
            "{file} diagnostic must be file:line anchored:\n{stdout}"
        );
    }
}

#[test]
fn clean_fixtures_pass() {
    for file in [
        "clean.rs",
        "unsafe_with_safety.rs",
        "pragma_ok.rs",
        "test_mod.rs",
    ] {
        let (code, stdout) = audit_lib(file);
        assert_eq!(code, 0, "{file} must audit clean:\n{stdout}");
        assert!(stdout.contains("clean"), "{stdout}");
    }
}

#[test]
fn unjustified_pragma_is_a_violation_and_suppresses_nothing() {
    let (code, stdout) = audit_lib("pragma_unjustified.rs");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[audit-pragma]"), "{stdout}");
    // The suppression is void, so the underlying HashSet violation fires too.
    assert!(stdout.contains("[nondeterministic-iteration]"), "{stdout}");
}

#[test]
fn unused_pragma_is_a_violation() {
    let (code, stdout) = audit_lib("pragma_unused.rs");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[audit-pragma]"), "{stdout}");
    assert!(stdout.contains("suppresses nothing"), "{stdout}");
}

#[test]
fn unwrap_fixture_passes_when_classed_as_test() {
    // Tests/benches are exempt from the unwrap and determinism rules.
    let out = run(&["--class", "test", &fixture("unwrap_in_lib.rs")]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn list_rules_names_all_nine() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("UTF-8");
    for rule in [
        "nondeterministic-iteration",
        "float-tolerance-literal",
        "unwrap-in-lib",
        "lossy-cast",
        "nondeterminism-source",
        "unsafe-without-safety-comment",
        "parallel-float-reduction",
        "panic-path",
        "forbidden-api",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn bad_flags_exit_2() {
    assert_eq!(run(&["--no-such-flag"]).status.code(), Some(2));
    assert_eq!(run(&["--class", "bogus"]).status.code(), Some(2));
}

#[test]
fn workspace_self_audit_is_clean() {
    // The whole repository must satisfy its own lint pass; this is the same
    // invocation CI runs.
    let out = run(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(out.status.code(), Some(0), "self-audit failed:\n{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn workspace_self_audit_via_library_api() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the workspace root")
        .to_path_buf();
    let report = wmcs_audit::audit_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.violations.is_empty(),
        "workspace has violations: {:?}",
        report.violations
    );
    assert!(
        report.files_scanned > 100,
        "expected >100 workspace sources, got {}",
        report.files_scanned
    );
    // The parsed workspace is non-trivial: the call graph actually joined
    // the crates (a regression here would silently blind the analyses).
    assert!(
        report.functions > 500,
        "expected >500 parsed fns, got {}",
        report.functions
    );
    assert!(
        report.call_edges > 1000,
        "expected >1000 call edges, got {}",
        report.call_edges
    );
}
