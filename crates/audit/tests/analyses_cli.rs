//! End-to-end tests for the workspace analyses through the real binary:
//! each analysis has a fixture mini-workspace under `fixtures/ws_*` that
//! must fail with the right diagnostic at a real `file:line`, the
//! slot-pattern fixture must stay clean, and the `--json` / `--graph`
//! outputs must hold the shapes CI consumes (problem matcher, artifact).

use std::path::Path;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .display()
        .to_string()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wmcs-audit"))
        .args(args)
        .output()
        .expect("wmcs-audit binary spawns")
}

fn audit_root(name: &str, extra: &[&str]) -> (i32, String, String) {
    let root = fixture(name);
    let mut args = vec!["--root", root.as_str()];
    args.extend_from_slice(extra);
    let out = run(&args);
    (
        out.status.code().expect("binary exits normally"),
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

/// The exact shape `.github/wmcs-audit-matcher.json` captures:
/// `^(.+?):(\d+): \[([a-z-]+)\] (.+)$`. Returns the captured
/// (file, line, rule) triple, or `None` if the line does not match.
fn matcher_captures(line: &str) -> Option<(String, u32, String)> {
    let (loc, rest) = line.split_once(": [")?;
    let (rule, message) = rest.split_once("] ")?;
    let (file, lineno) = loc.rsplit_once(':')?;
    if message.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return None;
    }
    Some((file.to_string(), lineno.parse().ok()?, rule.to_string()))
}

/// Every non-summary stdout line must be matcher-shaped; returns the
/// captures so callers can assert on files/lines/rules.
fn diagnostics(stdout: &str) -> Vec<(String, u32, String)> {
    stdout
        .lines()
        .filter(|l| !l.starts_with("wmcs-audit:"))
        .map(|l| {
            matcher_captures(l).unwrap_or_else(|| panic!("diagnostic not matcher-shaped: {l:?}"))
        })
        .collect()
}

#[test]
fn parallel_fold_fixture_fails_two_calls_below_the_spawn() {
    let (code, stdout, _) = audit_root("ws_parallel_fold", &[]);
    assert_eq!(code, 1, "undisciplined spawn must fail:\n{stdout}");
    let caps = diagnostics(&stdout);
    assert!(
        caps.iter().all(|(f, n, r)| f == "crates/app/src/lib.rs"
            && *n > 0
            && r == "parallel-float-reduction"),
        "every diagnostic names the fixture file and rule:\n{stdout}"
    );
    // The seeded order-sensitive fold lives in `deep_fold`, two calls
    // below the crossbeam spawn — reachability, not text proximity.
    assert!(
        stdout.contains("float `.fold(") && stdout.contains("deep_fold`"),
        "the fold two calls deep must be reached:\n{stdout}"
    );
    // The Mutex-accumulator in the spawn body is flagged as well.
    assert!(
        stdout.contains("`+=` through a lock() guard"),
        "the lock-guarded accumulator must be flagged:\n{stdout}"
    );
    assert!(
        stdout.contains("does not place results in per-item OnceLock slots"),
        "diagnostic explains the sanctioned alternative:\n{stdout}"
    );
}

#[test]
fn slot_pattern_fixture_stays_clean() {
    let (code, stdout, _) = audit_root("ws_slot_placed", &[]);
    assert_eq!(
        code, 0,
        "OnceLock slot placement is the sanctioned pattern:\n{stdout}"
    );
    assert!(
        stdout.contains("wmcs-audit: clean"),
        "clean summary:\n{stdout}"
    );
}

#[test]
fn panic_path_fixture_fails_without_a_baseline() {
    let (code, stdout, _) = audit_root("ws_panic_path", &[]);
    assert_eq!(code, 1, "unbaselined panic surface must fail:\n{stdout}");
    let caps = diagnostics(&stdout);
    assert!(
        caps.iter()
            .all(|(f, n, r)| f == "crates/svc/src/lib.rs" && *n > 0 && r == "panic-path"),
        "every diagnostic names the fixture file and rule:\n{stdout}"
    );
    // All three panic kinds seeded in the fixture surface: indexing and
    // `.expect` in the root API, `panic!` one call down in `checked`.
    for needle in ["`index`", "`expect`", "`panic-macro`", "::checked`"] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }
    assert!(
        stdout.contains("--write-panic-baseline"),
        "diagnostic points at the regeneration flag:\n{stdout}"
    );
}

#[test]
fn forbidden_api_fixture_fails_through_a_renamed_import() {
    let (code, stdout, _) = audit_root("ws_forbidden", &[]);
    assert_eq!(code, 1, "aliased banned call must fail:\n{stdout}");
    let caps = diagnostics(&stdout);
    assert_eq!(caps.len(), 1, "exactly one banned call site:\n{stdout}");
    let (file, line, rule) = &caps[0];
    assert_eq!(file, "crates/app/src/lib.rs");
    assert!(*line > 0);
    assert_eq!(rule, "forbidden-api");
    // The fixture writes `UT::mst_tree()`; the diagnostic must name the
    // banned symbol via the alias-resolved path, not the written text.
    assert!(
        stdout.contains("UniversalTree::mst_tree"),
        "resolved path in diagnostic:\n{stdout}"
    );
    assert!(
        stdout.contains("SubstrateBuilder"),
        "diagnostic suggests the replacement API:\n{stdout}"
    );
}

#[test]
fn unbounded_channel_fixture_fails_but_bounded_stays_legal() {
    let (code, stdout, _) = audit_root("ws_unbounded", &[]);
    assert_eq!(code, 1, "aliased unbounded channels must fail:\n{stdout}");
    let caps = diagnostics(&stdout);
    assert_eq!(
        caps.len(),
        2,
        "exactly the two unbounded constructors (sync_channel is legal):\n{stdout}"
    );
    assert!(
        caps.iter()
            .all(|(f, n, r)| f == "crates/app/src/lib.rs" && *n > 0 && r == "forbidden-api"),
        "every diagnostic names the fixture file and rule:\n{stdout}"
    );
    // The fixture writes `chan::unbounded()` / `pipe::channel()`; the
    // diagnostics must cite the registry patterns via resolved paths.
    for needle in ["channel::unbounded", "mpsc::channel", "bounded"] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }
    assert!(
        !stdout.contains("sync_channel()"),
        "the bounded constructor must not be flagged:\n{stdout}"
    );
}

/// The streaming verdict paths are wall-clock free, by scan not by
/// convention: the virtual-clock sources feeding T14's latency
/// percentiles (`wmcs-wireless::stream`, `wmcs-bench::latency`) must
/// carry no `Instant`/`SystemTime` (nor any other lib-scope violation)
/// under the real token scanner. Timing may appear in benches and the
/// `stream_slo` example — those are `Test`-class files — but never in
/// these two libraries.
#[test]
fn stream_and_latency_sources_carry_no_wall_clock() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in [
        "crates/wireless/src/stream.rs",
        "crates/bench/src/latency.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel))
            .unwrap_or_else(|e| panic!("{rel} must exist: {e}"));
        let violations = wmcs_audit::scan_file(rel, &src, wmcs_audit::FileClass::Lib);
        assert!(
            violations.is_empty(),
            "{rel} must scan clean as a verdict-path library: {violations:?}"
        );
    }
}

#[test]
fn json_report_round_trips_the_human_diagnostics() {
    let (code, human, _) = audit_root("ws_forbidden", &[]);
    assert_eq!(code, 1);
    let (jcode, json, _) = audit_root("ws_forbidden", &["--json"]);
    assert_eq!(jcode, 1, "--json keeps the failing exit code");
    let json = json.trim();
    assert!(
        json.starts_with("{\"schema\":\"wmcs-audit/v2\"") && json.ends_with('}'),
        "one-line v2 JSON object on stdout:\n{json}"
    );
    assert!(!json.contains('\n'), "JSON report is a single line");
    // Every human diagnostic (the lines the CI problem matcher lifts)
    // appears in the JSON with the same file, line and rule.
    for (file, line, rule) in diagnostics(&human) {
        for needle in [
            format!("\"file\":\"{file}\""),
            format!("\"line\":{line}"),
            format!("\"rule\":\"{rule}\""),
        ] {
            assert!(json.contains(&needle), "missing {needle} in:\n{json}");
        }
    }
}

#[test]
fn json_to_file_keeps_matcher_lines_on_stdout() {
    let dir = std::env::temp_dir().join("wmcs-audit-json-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("audit.json");
    let arg = format!("--json={}", path.display());
    let (code, stdout, _) = audit_root("ws_forbidden", &[&arg]);
    assert_eq!(code, 1);
    // This is the CI mode: human lines stay on stdout for the problem
    // matcher while the JSON artifact goes to the file.
    assert!(
        !diagnostics(&stdout).is_empty(),
        "matcher-shaped lines on stdout:\n{stdout}"
    );
    let written = std::fs::read_to_string(&path).expect("JSON file written");
    assert!(written.starts_with("{\"schema\":\"wmcs-audit/v2\""));
    assert!(written.contains("\"rule\":\"forbidden-api\""));
    std::fs::remove_file(&path).ok();
}

#[test]
fn graph_dump_exposes_the_cross_crate_edge() {
    let (code, stdout, stderr) = audit_root("ws_parallel_fold", &["--graph"]);
    assert_eq!(code, 0, "--graph is a dump, not an audit:\n{stderr}");
    // The dump must show the chain the analysis walks.
    for qual in ["run", "summarize", "deep_fold"] {
        assert!(stdout.contains(qual), "missing {qual} in dump:\n{stdout}");
    }
    assert!(
        stderr.contains("functions") && stderr.contains("call edges"),
        "stats on stderr:\n{stderr}"
    );
}

#[test]
fn timing_line_lands_on_stderr() {
    let (_, _, stderr) = audit_root("ws_slot_placed", &[]);
    assert!(
        stderr.contains("call edges") && stderr.contains(" ms"),
        "CI reads the timing diagnostic from stderr:\n{stderr}"
    );
}
