//! Exact minimum-energy multicast (MEMT) by set-state Dijkstra.
//!
//! MEMT is inapproximable within `(1−ε) ln n` in general (§1) — but on the
//! small instances used to validate mechanisms and measure approximation
//! ratios it can be solved *exactly*: run Dijkstra over the `2^n` subsets
//! of reached stations, where a transition picks a reached transmitter and
//! one of its discrete power levels (the distinct incident costs `C_i^m` of
//! §2.2) and pays that level. The first popped state covering the target
//! set is optimal: every optimal assignment can be replayed as such a
//! transition sequence (order the transmitters along the multicast tree),
//! and double-powering a transmitter is dominated by its single max level.

use crate::network::WirelessNetwork;
use crate::power::PowerAssignment;
use wmcs_game::CostFunction;
use wmcs_graph::IndexedMinHeap;

/// Hard cap on stations for the exact solver (2^n states).
pub const MAX_EXACT_STATIONS: usize = 20;

/// Per-station discrete power levels with their reach masks.
struct Levels {
    /// `(power, mask of stations covered at that power)`, ascending power.
    per_station: Vec<Vec<(f64, u64)>>,
}

impl Levels {
    fn of(net: &WirelessNetwork) -> Self {
        let n = net.n_stations();
        let mut per_station = Vec::with_capacity(n);
        for i in 0..n {
            let mut pairs: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (net.cost(i, j), j))
                .collect();
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut levels: Vec<(f64, u64)> = Vec::new();
            let mut mask = 0u64;
            for (p, j) in pairs {
                mask |= 1 << j;
                match levels.last_mut() {
                    Some((lp, lm)) if wmcs_geom::approx_eq(*lp, p) => *lm = mask,
                    _ => levels.push((p, mask)),
                }
            }
            per_station.push(levels);
        }
        Self { per_station }
    }
}

/// Exact MEMT: minimum-cost power assignment multicasting from the source
/// to all `targets`. Returns the optimal cost and an optimal assignment.
pub fn memt_exact(net: &WirelessNetwork, targets: &[usize]) -> (f64, PowerAssignment) {
    let n = net.n_stations();
    assert!(
        n <= MAX_EXACT_STATIONS,
        "exact MEMT is exponential: n = {n}"
    );
    let s = net.source();
    let target_mask: u64 = targets.iter().fold(1 << s, |m, &t| m | (1 << t));
    if target_mask == 1 << s {
        return (0.0, PowerAssignment::zero(n));
    }
    let levels = Levels::of(net);
    let n_states = 1usize << n;
    let mut dist = vec![f64::INFINITY; n_states];
    let mut prev: Vec<Option<(u64, usize, f64)>> = vec![None; n_states];
    let mut heap = IndexedMinHeap::new(n_states);
    let start = (1u64 << s) as usize;
    dist[start] = 0.0;
    heap.push_or_decrease(start, 0.0);
    while let Some((state, d)) = heap.pop() {
        if d > dist[state] {
            continue;
        }
        let m = state as u64;
        if m & target_mask == target_mask {
            // Reconstruct powers along the predecessor chain.
            let mut pa = PowerAssignment::zero(n);
            let mut cur = m;
            while let Some((p_state, tx, power)) = prev[cur as usize] {
                pa.raise(tx, power);
                cur = p_state;
            }
            debug_assert!(pa.multicasts_to(net, targets));
            return (d, pa);
        }
        for i in 0..n {
            if m & (1 << i) == 0 {
                continue;
            }
            for &(p, reach) in &levels.per_station[i] {
                let nm = m | reach;
                if nm == m {
                    continue;
                }
                let nd = d + p;
                if nd < dist[nm as usize] {
                    dist[nm as usize] = nd;
                    prev[nm as usize] = Some((m, i, p));
                    heap.push_or_decrease(nm as usize, nd);
                }
            }
        }
    }
    unreachable!("complete cost graphs always admit a multicast");
}

/// Table of `C*(R)` for **every** receiver subset, computed with one full
/// set-state Dijkstra plus a superset-min zeta transform — `O(2^n · n²)`
/// instead of `4^n` separate solves. Indexed by *station* mask (the source
/// bit is ignored on lookup).
pub struct MemtCostTable {
    n: usize,
    source: usize,
    table: Vec<f64>,
}

impl MemtCostTable {
    /// Build the full table.
    pub fn build(net: &WirelessNetwork) -> Self {
        let n = net.n_stations();
        assert!(
            n <= MAX_EXACT_STATIONS,
            "exact MEMT is exponential: n = {n}"
        );
        let s = net.source();
        let levels = Levels::of(net);
        let n_states = 1usize << n;
        let mut dist = vec![f64::INFINITY; n_states];
        let mut heap = IndexedMinHeap::new(n_states);
        let start = (1u64 << s) as usize;
        dist[start] = 0.0;
        heap.push_or_decrease(start, 0.0);
        while let Some((state, d)) = heap.pop() {
            if d > dist[state] {
                continue;
            }
            let m = state as u64;
            for i in 0..n {
                if m & (1 << i) == 0 {
                    continue;
                }
                for &(p, reach) in &levels.per_station[i] {
                    let nm = (m | reach) as usize;
                    if nm == state {
                        continue;
                    }
                    let nd = d + p;
                    if nd < dist[nm] {
                        dist[nm] = nd;
                        heap.push_or_decrease(nm, nd);
                    }
                }
            }
        }
        // Superset-min: C*(R) = min over reached states ⊇ R ∪ {s}.
        let mut table = dist;
        for b in 0..n {
            for m in 0..n_states {
                if m & (1 << b) == 0 {
                    let sup = table[m | (1 << b)];
                    if sup < table[m] {
                        table[m] = sup;
                    }
                }
            }
        }
        Self {
            n,
            source: s,
            table,
        }
    }

    /// `C*(R)` for a station set given as a mask (source bit optional).
    pub fn cost_of_station_mask(&self, mask: u64) -> f64 {
        self.table[(mask | (1 << self.source)) as usize]
    }

    /// `C*(R)` for an explicit station list.
    pub fn cost_of_stations(&self, stations: &[usize]) -> f64 {
        let mask = stations.iter().fold(0u64, |m, &x| {
            assert!(x < self.n);
            m | (1 << x)
        });
        self.cost_of_station_mask(mask)
    }
}

/// `C*` as a coalition cost function over players — the object whose
/// structure §3 interrogates (submodular for α = 1 or d = 1, Lemma 3.1;
/// possibly empty-core otherwise, Lemma 3.3).
pub struct OptimalMulticastCost {
    net: WirelessNetwork,
    table: MemtCostTable,
}

impl OptimalMulticastCost {
    /// Precompute the exact cost table for a network.
    pub fn new(net: WirelessNetwork) -> Self {
        let table = MemtCostTable::build(&net);
        Self { net, table }
    }

    /// The underlying network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }
}

impl CostFunction for OptimalMulticastCost {
    fn n_players(&self) -> usize {
        self.net.n_players()
    }

    fn cost_mask(&self, mask: u64) -> f64 {
        let stations = self.net.stations_of_player_mask(mask);
        self.table.cost_of_stations(&stations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{approx_eq, Point, PowerModel};

    fn line_net(n: usize) -> WirelessNetwork {
        let pts = (0..n).map(|i| Point::on_line(i as f64)).collect();
        WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0)
    }

    #[test]
    fn relay_chain_is_optimal_for_alpha_two() {
        let net = line_net(4);
        let (cost, pa) = memt_exact(&net, &[3]);
        // Unit hops beat any direct jump for α = 2: cost 3.
        assert!(approx_eq(cost, 3.0));
        assert!(pa.multicasts_to(&net, &[3]));
        assert!(approx_eq(pa.total_cost(), cost));
    }

    #[test]
    fn empty_target_set_is_free() {
        let net = line_net(4);
        let (cost, pa) = memt_exact(&net, &[]);
        assert_eq!(cost, 0.0);
        assert_eq!(pa.total_cost(), 0.0);
    }

    #[test]
    fn broadcast_on_line_costs_sum_of_hops() {
        let net = line_net(5);
        let (cost, _) = memt_exact(&net, &[1, 2, 3, 4]);
        assert!(approx_eq(cost, 4.0));
    }

    #[test]
    fn wireless_advantage_beats_tree_costs() {
        // Source in the middle of two receivers at equal distance: one
        // transmission serves both.
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(-1.0, 0.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let (cost, pa) = memt_exact(&net, &[1, 2]);
        assert!(approx_eq(cost, 1.0));
        assert!(approx_eq(pa.power(0), 1.0));
    }

    #[test]
    fn table_matches_individual_solves() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pts: Vec<Point> = (0..6)
            .map(|_| Point::xy(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let table = MemtCostTable::build(&net);
        for mask in 0u64..(1 << 6) {
            let stations: Vec<usize> = (0..6).filter(|&x| mask & (1 << x) != 0 && x != 0).collect();
            let (exact, _) = memt_exact(&net, &stations);
            let tab = table.cost_of_stations(&stations);
            assert!(
                approx_eq(exact, tab),
                "mask {mask:b}: solve {exact} ≠ table {tab}"
            );
        }
    }

    #[test]
    fn cost_function_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<Point> = (0..6)
            .map(|_| Point::xy(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let c = OptimalMulticastCost::new(net);
        assert!(wmcs_game::is_nondecreasing(&c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn exact_is_lower_bound_for_any_feasible_assignment(seed in 0u64..300) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..7);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)))
                .collect();
            let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
            let targets: Vec<usize> = (1..n).filter(|_| rng.gen_bool(0.7)).collect();
            let (opt, pa_opt) = memt_exact(&net, &targets);
            prop_assert!(pa_opt.multicasts_to(&net, &targets));
            // Compare against a feasible heuristic: source blasts directly
            // to the farthest target.
            let direct = targets
                .iter()
                .map(|&t| net.cost(0, t))
                .fold(0.0, f64::max);
            prop_assert!(opt <= direct + 1e-9,
                "exact {opt} beat by direct blast {direct}");
        }

        #[test]
        fn alpha_one_optimum_is_farthest_distance(seed in 0u64..200) {
            // Lemma 3.1 (α = 1): C*(R) = max distance from the source.
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..7);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)))
                .collect();
            let net = WirelessNetwork::euclidean(pts.clone(), PowerModel::linear(), 0);
            let targets: Vec<usize> = (1..n).collect();
            let (opt, _) = memt_exact(&net, &targets);
            let far = (1..n).map(|t| pts[0].dist(&pts[t])).fold(0.0, f64::max);
            prop_assert!(approx_eq(opt, far));
        }
    }
}
