//! Euclidean special cases of the multicast problem (§3.1).
//!
//! Lemma 3.1: for `α = 1` (any dimension) or `d = 1` (any gradient), the
//! optimal multicast cost function is non-decreasing, submodular, and
//! polynomial-time computable — yielding the optimally-BB Shapley mechanism
//! and the efficient MC mechanism of Theorem 3.2.

pub mod alpha_one;
pub mod line;

pub use alpha_one::{AlphaOneCost, AlphaOneSolver};
pub use line::{LineCost, LineSolver};
