//! The `α = 1` Euclidean case (Lemma 3.1, first part).
//!
//! With linear attenuation the triangle inequality makes relaying useless:
//! the optimal multicast to `R` is a single emission from the source at
//! power `κ · max_{x ∈ R} dist(s, x)`. The optimal cost function is the
//! *airport game* on source distances — non-decreasing, submodular, with a
//! closed-form Shapley value and an `O(n log n)` largest-efficient-set
//! computation (Theorem 3.2's "at most n − 1 candidate sets").

use crate::network::WirelessNetwork;
use crate::power::PowerAssignment;
use wmcs_game::CostFunction;
use wmcs_geom::EPS;

/// Optimal solver and cost function for `α = 1` Euclidean networks.
#[derive(Debug, Clone)]
pub struct AlphaOneSolver {
    net: WirelessNetwork,
}

impl AlphaOneSolver {
    /// Wrap an `α = 1` Euclidean network.
    pub fn new(net: &WirelessNetwork) -> Self {
        let model = net
            .model()
            .expect("AlphaOneSolver needs a Euclidean network");
        assert!(
            (model.alpha() - 1.0).abs() < EPS,
            "Lemma 3.1's first case requires α = 1"
        );
        Self { net: net.clone() }
    }

    /// The underlying network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// `C*(R)` for a station set: the farthest source distance (× κ).
    pub fn optimal_cost(&self, receivers: &[usize]) -> f64 {
        receivers
            .iter()
            .map(|&x| self.net.cost(self.net.source(), x))
            .fold(0.0, f64::max)
    }

    /// An optimal power assignment: one emission from the source.
    pub fn optimal_assignment(&self, receivers: &[usize]) -> PowerAssignment {
        let mut pa = PowerAssignment::zero(self.net.n_stations());
        pa.raise(self.net.source(), self.optimal_cost(receivers));
        pa
    }

    /// Closed-form Shapley shares (airport game): sort receivers by source
    /// cost `d_1 ≤ … ≤ d_k`; the increment `d_j − d_{j−1}` is split among
    /// the `k − j + 1` receivers at least that far. Returns per-station
    /// shares.
    pub fn shapley_shares(&self, receivers: &[usize]) -> Vec<f64> {
        let n = self.net.n_stations();
        let mut shares = vec![0.0; n];
        if receivers.is_empty() {
            return shares;
        }
        let s = self.net.source();
        let mut order: Vec<usize> = receivers.to_vec();
        order.sort_by(|&a, &b| {
            self.net
                .cost(s, a)
                .total_cmp(&self.net.cost(s, b))
                .then(a.cmp(&b))
        });
        let k = order.len();
        let mut acc = 0.0;
        let mut prev = 0.0;
        for (j, &x) in order.iter().enumerate() {
            let d = self.net.cost(s, x);
            acc += (d - prev) / (k - j) as f64;
            prev = d;
            shares[x] = acc;
        }
        shares
    }

    /// Largest efficient set (Theorem 3.2): candidates are distance
    /// prefixes — pick a cutoff station `x`, serve everything at most as
    /// far. Returns `(stations, net worth)` with utilities indexed by
    /// station (source entry ignored).
    pub fn largest_efficient_set(&self, u: &[f64]) -> (Vec<usize>, f64) {
        let n = self.net.n_stations();
        assert_eq!(u.len(), n);
        let s = self.net.source();
        let mut order: Vec<usize> = (0..n).filter(|&x| x != s).collect();
        order.sort_by(|&a, &b| {
            self.net
                .cost(s, a)
                .total_cmp(&self.net.cost(s, b))
                .then(a.cmp(&b))
        });
        let mut best_w = 0.0f64;
        let mut best_prefix = 0usize;
        let mut acc_u = 0.0f64;
        for (idx, &x) in order.iter().enumerate() {
            acc_u += u[x].max(0.0);
            let w = acc_u - self.net.cost(s, x);
            // Exact total order on welfare; since longer prefixes are
            // visited later, `>=` yields the longest prefix among true
            // ties (an EPS-tolerant tie-break here let a prefix with
            // welfare strictly below `best_w` win, so the returned set
            // could disagree with the returned net worth consumed by
            // VCG payments).
            if w >= best_w {
                best_w = w;
                best_prefix = idx + 1;
            }
        }
        let mut set: Vec<usize> = order[..best_prefix].to_vec();
        set.sort_unstable();
        (set, best_w)
    }
}

/// `C*` over players for the `α = 1` case.
#[derive(Debug, Clone)]
pub struct AlphaOneCost {
    solver: AlphaOneSolver,
}

impl AlphaOneCost {
    /// Wrap a solver.
    pub fn new(solver: AlphaOneSolver) -> Self {
        Self { solver }
    }

    /// Access the solver.
    pub fn solver(&self) -> &AlphaOneSolver {
        &self.solver
    }
}

impl CostFunction for AlphaOneCost {
    fn n_players(&self) -> usize {
        self.solver.net.n_players()
    }

    fn cost_mask(&self, mask: u64) -> f64 {
        let stations = self.solver.net.stations_of_player_mask(mask);
        self.solver.optimal_cost(&stations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memt::memt_exact;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{is_nondecreasing, is_submodular, shapley_value, ExplicitGame};
    use wmcs_geom::{approx_eq, Point, PowerModel};

    fn random_solver(seed: u64, n: usize) -> AlphaOneSolver {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)))
            .collect();
        AlphaOneSolver::new(&WirelessNetwork::euclidean(pts, PowerModel::linear(), 0))
    }

    #[test]
    fn optimal_cost_matches_exact_memt() {
        for seed in 0..10 {
            let solver = random_solver(seed, 6);
            let receivers: Vec<usize> = (1..6).collect();
            let (exact, _) = memt_exact(solver.network(), &receivers);
            assert!(
                approx_eq(solver.optimal_cost(&receivers), exact),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn assignment_is_feasible_and_optimal() {
        let solver = random_solver(3, 7);
        let receivers = vec![2, 4, 6];
        let pa = solver.optimal_assignment(&receivers);
        assert!(pa.multicasts_to(solver.network(), &receivers));
        assert!(approx_eq(pa.total_cost(), solver.optimal_cost(&receivers)));
    }

    #[test]
    fn lemma_3_1_alpha_one_submodular() {
        for seed in 0..8 {
            let cost = AlphaOneCost::new(random_solver(seed, 7));
            let game = ExplicitGame::tabulate(&cost);
            assert!(is_nondecreasing(&game));
            assert!(is_submodular(&game));
        }
    }

    #[test]
    fn closed_form_shapley_matches_exact() {
        for seed in 0..10 {
            let cost = AlphaOneCost::new(random_solver(seed, 6));
            let game = ExplicitGame::tabulate(&cost);
            let n_players = game.n_players();
            for mask in [0b11111u64, 0b01011, 0b10000, 0b00110] {
                let mask = mask & ((1 << n_players) - 1);
                let exact = shapley_value(&game, mask);
                let stations = cost.solver().network().stations_of_player_mask(mask);
                let fast = cost.solver().shapley_shares(&stations);
                for p in 0..n_players {
                    let st = cost.solver().network().station_of_player(p);
                    assert!(
                        (exact[p] - fast[st]).abs() < 1e-7,
                        "seed {seed} mask {mask:b}: {} vs {}",
                        exact[p],
                        fast[st]
                    );
                }
            }
        }
    }

    #[test]
    fn efficient_set_matches_brute_force() {
        use wmcs_game::subset::members_of;
        for seed in 0..10 {
            let solver = random_solver(seed, 7);
            let cost = AlphaOneCost::new(solver);
            let game = ExplicitGame::tabulate(&cost);
            let n_players = game.n_players();
            let mut rng = SmallRng::seed_from_u64(seed + 99);
            let u_players: Vec<f64> = (0..n_players).map(|_| rng.gen_range(0.0..4.0)).collect();
            let mut best = 0.0f64;
            for mask in 0u64..(1 << n_players) {
                let util: f64 = members_of(mask).iter().map(|&p| u_players[p]).sum();
                best = best.max(util - game.cost_mask(mask));
            }
            let solver = cost.solver();
            let mut u_st = vec![0.0; solver.network().n_stations()];
            for p in 0..n_players {
                u_st[solver.network().station_of_player(p)] = u_players[p];
            }
            let (set, nw) = solver.largest_efficient_set(&u_st);
            assert!((nw - best).abs() < 1e-7, "seed {seed}: {nw} vs {best}");
            // The set achieves the welfare it claims.
            let got: f64 = set.iter().map(|&x| u_st[x]).sum::<f64>() - solver.optimal_cost(&set);
            assert!(approx_eq(got, nw));
        }
    }

    #[test]
    #[should_panic(expected = "α = 1")]
    fn wrong_alpha_rejected() {
        let pts = vec![Point::xy(0.0, 0.0), Point::xy(1.0, 0.0)];
        let _ = AlphaOneSolver::new(&WirelessNetwork::euclidean(
            pts,
            PowerModel::free_space(),
            0,
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn shapley_is_budget_balanced(seed in 0u64..400) {
            let solver = random_solver(seed, 6);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a5a);
            let receivers: Vec<usize> = (1..6).filter(|_| rng.gen_bool(0.6)).collect();
            let shares = solver.shapley_shares(&receivers);
            let total: f64 = shares.iter().sum();
            prop_assert!(approx_eq(total, solver.optimal_cost(&receivers)));
            for (x, sh) in shares.iter().enumerate() {
                prop_assert!(*sh >= -1e-12);
                if !receivers.contains(&x) {
                    prop_assert!(sh.abs() < 1e-12);
                }
            }
        }
    }
}
