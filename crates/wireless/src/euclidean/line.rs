//! The `d = 1` Euclidean case (Lemma 3.1, second part).
//!
//! Stations on a line, any `α ≥ 1`. The paper's construction: the source
//! emits one of ≤ n candidate powers, covering an interval `[x_f, x_l]`;
//! stations then relay outward by *adjacent* hops (justified by
//! `(a+b)^α ≥ a^α + b^α`) until the extremes `x_{f_R}, x_{l_R}` of
//! `R ∪ {s}` are reached. We call assignments of this shape **chain-form**.
//!
//! ## Reproduction finding (documented in EXPERIMENTS.md, experiment T4)
//!
//! Lemma 3.1 claims every assignment can be converted to chain form without
//! cost increase, making this solver exact and `C*` submodular. **Both
//! claims fail**: an intermediate relay's omnidirectional emission can
//! cover stations on *both* sides at once (e.g. a large leftward emission
//! that simultaneously reaches the rightmost receiver), which chain form
//! cannot express. Concretely (α = 2, pinned in the unit test
//! `chain_form_is_not_always_optimal`) the true optimum beats the
//! best chain-form assignment by ~27%, and the *true* `C*` even violates
//! submodularity (α = 3, pinned in the unit test
//! `true_line_cost_can_violate_submodularity`).
//!
//! The mechanisms of Theorem 3.2 therefore operate on the **chain-form cost
//! function** implemented here, which *is* non-decreasing and submodular
//! (the paper's interval arithmetic is valid within chain form — verified
//! exhaustively in tests). Against the chain-form cost they are exactly
//! 1-BB / efficient; against the true optimum they are β-BB with β
//! measured in experiment T4 (close to 1 in practice).

use crate::network::WirelessNetwork;
use crate::power::PowerAssignment;
use wmcs_game::CostFunction;
use wmcs_geom::EPS;

/// Polynomial solver for the paper's chain-form assignments on a line
/// (an upper bound on the true optimum — see the module docs).
#[derive(Debug, Clone)]
pub struct LineSolver {
    net: WirelessNetwork,
    /// Station indices sorted by coordinate.
    by_pos: Vec<usize>,
    /// Rank of each station in `by_pos`.
    rank: Vec<usize>,
    /// Rank of the source.
    k: usize,
}

impl LineSolver {
    /// Wrap a 1-D Euclidean network.
    pub fn new(net: &WirelessNetwork) -> Self {
        let points = net.points().expect("LineSolver needs a Euclidean network");
        assert!(
            points.iter().all(|p| p.dim() == 1),
            "Lemma 3.1's second case requires d = 1"
        );
        let mut by_pos: Vec<usize> = (0..net.n_stations()).collect();
        by_pos.sort_by(|&a, &b| points[a].coord(0).total_cmp(&points[b].coord(0)));
        let mut rank = vec![0usize; net.n_stations()];
        for (r, &x) in by_pos.iter().enumerate() {
            rank[x] = r;
        }
        let k = rank[net.source()];
        Self {
            net: net.clone(),
            by_pos,
            rank,
            k,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    fn station_at(&self, r: usize) -> usize {
        self.by_pos[r]
    }

    fn hop_cost(&self, r1: usize, r2: usize) -> f64 {
        self.net.cost(self.station_at(r1), self.station_at(r2))
    }

    /// Cheapest chain-form assignment for a receiver station set.
    pub fn solve(&self, receivers: &[usize]) -> (f64, PowerAssignment) {
        let n = self.net.n_stations();
        let mut pa_best = PowerAssignment::zero(n);
        if receivers.is_empty() {
            return (0.0, pa_best);
        }
        let s = self.net.source();
        let f_r = receivers
            .iter()
            .map(|&x| self.rank[x])
            .min()
            .expect("receivers is non-empty: the empty set returned early above")
            .min(self.k);
        let l_r = receivers
            .iter()
            .map(|&x| self.rank[x])
            .max()
            .expect("receivers is non-empty: the empty set returned early above")
            .max(self.k);
        let mut best = f64::INFINITY;
        // Candidate source powers: the cost to each other station.
        for cand in 0..n {
            if cand == s {
                continue;
            }
            let p = self.net.cost(s, cand);
            // Coverage interval [f, l] around the source at power p.
            let mut f = self.k;
            while f > 0 && self.net.cost(s, self.station_at(f - 1)) <= p + EPS {
                f -= 1;
            }
            let mut l = self.k;
            while l + 1 < n && self.net.cost(s, self.station_at(l + 1)) <= p + EPS {
                l += 1;
            }
            // Feasibility: each needed side must have a covered relay start.
            if f_r < self.k && f == self.k {
                continue;
            }
            if l_r > self.k && l == self.k {
                continue;
            }
            let mut cost = p;
            for r in l..l_r {
                cost += self.hop_cost(r, r + 1);
            }
            let mut fr = f;
            while fr > f_r {
                cost += self.hop_cost(fr, fr - 1);
                fr -= 1;
            }
            if cost < best - EPS {
                best = cost;
                let mut pa = PowerAssignment::zero(n);
                pa.raise(s, p);
                for r in l..l_r {
                    pa.raise(self.station_at(r), self.hop_cost(r, r + 1));
                }
                let mut fr = f;
                while fr > f_r {
                    pa.raise(self.station_at(fr), self.hop_cost(fr, fr - 1));
                    fr -= 1;
                }
                pa_best = pa;
            }
        }
        assert!(best.is_finite(), "some candidate power is always feasible");
        (best, pa_best)
    }

    /// Cheapest chain-form cost only.
    pub fn chain_cost(&self, receivers: &[usize]) -> f64 {
        self.solve(receivers).0
    }

    /// Largest efficient set (Theorem 3.2, d = 1): candidates are the
    /// ≤ n² rank intervals containing the source; intermediates ride along
    /// for free. Returns `(stations, net worth)`; utilities indexed by
    /// station (source entry ignored).
    pub fn largest_efficient_set(&self, u: &[f64]) -> (Vec<usize>, f64) {
        let n = self.net.n_stations();
        assert_eq!(u.len(), n);
        let mut best_w = 0.0f64;
        let mut best_set: Vec<usize> = Vec::new();
        for f in 0..=self.k {
            for l in self.k..n {
                if f == self.k && l == self.k {
                    continue;
                }
                let set: Vec<usize> = (f..=l)
                    .map(|r| self.station_at(r))
                    .filter(|&x| x != self.net.source())
                    .collect();
                let util: f64 = set.iter().map(|&x| u[x].max(0.0)).sum();
                let w = util - self.chain_cost(&set);
                // Exact total order on welfare; interval size breaks
                // true ties only (an EPS-tolerant tie-break here let a
                // set with welfare strictly below `best_w` win, so the
                // returned set could disagree with the returned net
                // worth consumed by VCG payments).
                if w > best_w || (w == best_w && set.len() > best_set.len()) {
                    best_w = w;
                    best_set = set;
                }
            }
        }
        best_set.sort_unstable();
        (best_set, best_w)
    }
}

/// The chain-form cost function over players for line networks —
/// non-decreasing and submodular (the object Theorem 3.2's d = 1
/// mechanisms are built on).
#[derive(Debug, Clone)]
pub struct LineCost {
    solver: LineSolver,
}

impl LineCost {
    /// Wrap a solver.
    pub fn new(solver: LineSolver) -> Self {
        Self { solver }
    }

    /// Access the solver.
    pub fn solver(&self) -> &LineSolver {
        &self.solver
    }
}

impl CostFunction for LineCost {
    fn n_players(&self) -> usize {
        self.solver.net.n_players()
    }

    fn cost_mask(&self, mask: u64) -> f64 {
        let stations = self.solver.net.stations_of_player_mask(mask);
        self.solver.chain_cost(&stations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memt::memt_exact;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_game::{is_nondecreasing, is_submodular, ExplicitGame};
    use wmcs_geom::{approx_eq, Point, PowerModel};

    fn random_line(seed: u64, n: usize, alpha: f64) -> LineSolver {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
        xs.sort_by(f64::total_cmp);
        let pts: Vec<Point> = xs.into_iter().map(Point::on_line).collect();
        let source = rng.gen_range(0..n);
        LineSolver::new(&WirelessNetwork::euclidean(
            pts,
            PowerModel::with_alpha(alpha),
            source,
        ))
    }

    #[test]
    fn simple_right_chain() {
        // Stations at 0 (source), 1, 2, 3 with α = 2: serving {3} costs
        // 1 + 1 + 1 = 3 via unit hops.
        let pts = (0..4).map(|i| Point::on_line(i as f64)).collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let solver = LineSolver::new(&net);
        let (cost, pa) = solver.solve(&[3]);
        assert!(approx_eq(cost, 3.0));
        assert!(pa.multicasts_to(solver.network(), &[3]));
    }

    #[test]
    fn two_sided_coverage_shares_source_power() {
        // Source at 0, receivers at −2 and +1 (α = 2): source must cover one
        // side directly; candidates include p = 4 (reaches −2 and +1
        // simultaneously) vs p = 1 (+1) then no left relay exists → p = 4.
        let pts = vec![
            Point::on_line(0.0),
            Point::on_line(-2.0),
            Point::on_line(1.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let solver = LineSolver::new(&net);
        let (cost, pa) = solver.solve(&[1, 2]);
        assert!(approx_eq(cost, 4.0));
        assert!(pa.multicasts_to(solver.network(), &[1, 2]));
    }

    #[test]
    fn relay_on_the_cheap_side() {
        // Source 0; stations at 1, 2 right; receiver at 2 only: relay
        // through 1 costs 1+1=2 < direct 4.
        let pts = vec![
            Point::on_line(0.0),
            Point::on_line(1.0),
            Point::on_line(2.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let solver = LineSolver::new(&net);
        assert!(approx_eq(solver.chain_cost(&[2]), 2.0));
    }

    #[test]
    fn chain_form_upper_bounds_exact_memt() {
        for seed in 0..30 {
            let alpha = [1.0, 2.0, 4.0][seed as usize % 3];
            let solver = random_line(seed, 7, alpha);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
            let receivers: Vec<usize> = (0..7)
                .filter(|&x| x != solver.network().source() && rng.gen_bool(0.6))
                .collect();
            let (line_cost, pa) = solver.solve(&receivers);
            let (exact, _) = memt_exact(solver.network(), &receivers);
            assert!(
                line_cost >= exact - 1e-9,
                "seed {seed} α {alpha}: chain form beat the optimum"
            );
            assert!(pa.multicasts_to(solver.network(), &receivers));
            assert!(approx_eq(pa.total_cost(), line_cost));
        }
    }

    #[test]
    fn chain_form_is_exact_for_alpha_one() {
        // With α = 1 the cross-coverage advantage vanishes (costs are
        // additive in distance), so chain form attains the optimum.
        for seed in 0..20 {
            let solver = random_line(seed, 6, 1.0);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
            let receivers: Vec<usize> = (0..6)
                .filter(|&x| x != solver.network().source() && rng.gen_bool(0.6))
                .collect();
            let (line_cost, _) = solver.solve(&receivers);
            let (exact, _) = memt_exact(solver.network(), &receivers);
            assert!(
                approx_eq(line_cost, exact),
                "seed {seed}: {line_cost} vs {exact}"
            );
        }
    }

    /// Reproduction finding, pinned: the paper's chain-form conversion
    /// (Lemma 3.1's `π → π_R`) can *increase* cost, because a relay's
    /// omnidirectional emission may cover both directions at once. On this
    /// instance the true optimum routes left through station at 12.75,
    /// whose emission also reaches the rightmost receiver.
    #[test]
    fn chain_form_is_not_always_optimal() {
        let xs = [
            3.8028718636040804,
            5.959272936499409,
            12.750263874125656,
            14.78775546250687,
            15.061740524163438,
            15.136928125974087, // source
            19.54707614684218,
        ];
        let pts: Vec<Point> = xs.iter().map(|&x| Point::on_line(x)).collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 5);
        let solver = LineSolver::new(&net);
        let receivers = vec![0, 3, 6];
        let (chain, _) = solver.solve(&receivers);
        let (exact, pa) = memt_exact(&net, &receivers);
        assert!(pa.multicasts_to(&net, &receivers));
        assert!(
            chain > exact * 1.2,
            "expected a >20% gap, got chain {chain} vs exact {exact}"
        );
        // The witness: station 2's emission covers station 1 (left) *and*
        // station 6 (right) simultaneously.
        assert!(approx_eq(pa.power(2), net.cost(2, 6)));
        assert!(net.cost(2, 1) <= pa.power(2));
    }

    /// Reproduction finding, pinned: the *true* optimal line cost function
    /// is not submodular (α = 3), so Lemma 3.1's d = 1 submodularity claim
    /// holds only for the chain-form cost. Serving the far-left receiver
    /// requires an emission that incidentally covers the mid-right
    /// receiver; so does (symmetrically) serving the far-right one — but
    /// the two free rides do not stack.
    #[test]
    fn true_line_cost_can_violate_submodularity() {
        let xs = [
            4.356527190351707,
            10.674030597699709,
            11.832764036637853,
            12.31465918377987, // source
            13.693364483533603,
            17.943075984877368,
        ];
        let pts: Vec<Point> = xs.iter().map(|&x| Point::on_line(x)).collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::with_alpha(3.0), 3);
        let c = |r: &[usize]| memt_exact(&net, r).0;
        let base = c(&[1, 4]);
        let with_i = c(&[0, 1, 4]);
        let with_j = c(&[1, 4, 5]);
        let with_ij = c(&[0, 1, 4, 5]);
        // Submodularity would require with_i + with_j ≥ with_ij + base.
        assert!(
            with_i + with_j < with_ij + base - 1.0,
            "violation vanished: {} vs {}",
            with_i + with_j,
            with_ij + base
        );
    }

    #[test]
    fn lemma_3_1_line_submodular() {
        for seed in 0..10 {
            let alpha = [1.0, 2.0, 3.0][seed as usize % 3];
            let solver = random_line(seed, 7, alpha);
            let cost = LineCost::new(solver);
            let game = ExplicitGame::tabulate(&cost);
            assert!(is_nondecreasing(&game), "seed {seed} α {alpha}");
            assert!(is_submodular(&game), "seed {seed} α {alpha}");
        }
    }

    #[test]
    fn efficient_set_matches_brute_force() {
        use wmcs_game::subset::members_of;
        for seed in 0..10 {
            let solver = random_line(seed, 6, 2.0);
            let cost = LineCost::new(solver);
            let game = ExplicitGame::tabulate(&cost);
            let n_players = game.n_players();
            let mut rng = SmallRng::seed_from_u64(seed + 4242);
            let u_players: Vec<f64> = (0..n_players).map(|_| rng.gen_range(0.0..8.0)).collect();
            let mut best = 0.0f64;
            for mask in 0u64..(1 << n_players) {
                let util: f64 = members_of(mask).iter().map(|&p| u_players[p]).sum();
                best = best.max(util - game.cost_mask(mask));
            }
            let solver = cost.solver();
            let mut u_st = vec![0.0; solver.network().n_stations()];
            for p in 0..n_players {
                u_st[solver.network().station_of_player(p)] = u_players[p];
            }
            let (set, nw) = solver.largest_efficient_set(&u_st);
            assert!((nw - best).abs() < 1e-7, "seed {seed}: {nw} vs {best}");
            let achieved: f64 = set.iter().map(|&x| u_st[x]).sum::<f64>() - solver.chain_cost(&set);
            assert!(approx_eq(achieved, nw));
        }
    }

    #[test]
    #[should_panic(expected = "d = 1")]
    fn two_dimensional_network_rejected() {
        let pts = vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)];
        let _ = LineSolver::new(&WirelessNetwork::euclidean(
            pts,
            PowerModel::free_space(),
            0,
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn solver_never_beats_exact_and_is_feasible(seed in 0u64..400) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..7);
            let solver = random_line(seed, n, 2.0);
            let receivers: Vec<usize> = (0..n)
                .filter(|&x| x != solver.network().source() && rng.gen_bool(0.5))
                .collect();
            let (cost, pa) = solver.solve(&receivers);
            let (exact, _) = memt_exact(solver.network(), &receivers);
            prop_assert!(cost >= exact - 1e-9, "{cost} beats optimum {exact}");
            prop_assert!(pa.multicasts_to(solver.network(), &receivers));
        }
    }
}
