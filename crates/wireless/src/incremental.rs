//! Incremental Moulin–Shenker engine for universal-tree cost sharing.
//!
//! The Moulin–Shenker iteration over a universal tree repeatedly drops
//! receivers who cannot afford their Shapley share. The naive driver
//! rebuilds `T(R)` and redistributes every power increment from scratch
//! each round — `O(n · depth)` per round and `O(n³)` worst case per
//! mechanism run — which capped every sweep at n ≈ 8–64. This module
//! keeps the run-long state *incremental*:
//!
//! * [`IncrementalShapley`] maintains, per station, the number of active
//!   receivers in its subtree (`T(R)` membership is exactly
//!   `rb[v] > 0`), plus the active children of every station as a
//!   cost-ordered doubly-linked list. Dropping a receiver updates both
//!   in `O(path to the root)`; a round's shares are one `O(|T(R)|)`
//!   top-down pass that turns the paper's per-increment split (§2.1)
//!   into prefix sums `down[y_i] = down[x] + Σ_{j≤i} δ_j / users_j`.
//!   A full run therefore costs `O(rounds · |T(R)| + Σ dropped path
//!   lengths)` — `O(n log n + total path length)` for the typical
//!   logarithmic round count, `O(n²)` worst case, versus the naive
//!   `O(n³)`.
//! * [`NetWorthOracle`] runs the largest-efficient-set DP once and then
//!   answers the MC/VCG queries "net worth with station `x`'s utility
//!   zeroed" in `O(depth)` via per-station prefix/suffix maxima, instead
//!   of one full `O(n)` DP per receiver.
//!
//! Both structures are also **mutable in place** — the substrate of the
//! live sessions in [`crate::session`]:
//!
//! | operation | cost | invariant |
//! |---|---|---|
//! | [`IncrementalShapley::drop_receiver`] | `O(depth)` | state equals a fresh build on the shrunken set |
//! | [`IncrementalShapley::add_receiver`] | `O(depth + sibling scans)` | state equals a fresh build on the enlarged set |
//! | [`IncrementalShapley::round_shares_by_station`] | `O(\|T(R)\|)` | the paper's §2.1 split on the current set |
//! | [`NetWorthOracle::set_utility`] | `O(Σ deg over the dirty path prefix)` | every stored float equals a fresh DP's |
//! | [`NetWorthOracle::net_worth_zeroing`] | `O(depth)` | agrees with a full DP on the zeroed profile |
//!
//! The "equals a fresh build" invariants are what make a warm session
//! *byte-identical* to a cold rebuild — the property suites
//! (`tests/incremental_props.rs`, `tests/session_props.rs`) and
//! experiments T10/T11 pin them.
//!
//! Both universal-tree mechanisms in `wmcs-mechanisms` delegate here,
//! and the drop loop itself is the shared index-set driver
//! [`wmcs_game::run_drop_loop`] (resumable variant:
//! [`wmcs_game::run_drop_loop_from`], used by [`shapley_drop_run_from`]
//! and the sessions) — the same iteration the mask-based
//! [`wmcs_game::moulin_shenker`] (n ≤ 64) routes through, so the two
//! cannot diverge on EPS conventions. [`reference_drop_run`] preserves
//! the naive per-round recomputation as the correctness reference; the
//! property suite pins the incremental outcome to it byte for byte.

use crate::substrate::{NodeId, NO_STATION};
use crate::universal::UniversalTree;
use wmcs_game::{run_drop_loop, run_drop_loop_from, DropLoopMethod, MechanismOutcome};

/// Local alias for the dense-array sentinel shared with the substrate.
const NONE: usize = NO_STATION;

/// Run statistics of one incremental drop-loop execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropStats {
    /// Rounds executed (share recomputations), including the fixpoint
    /// round.
    pub rounds: usize,
    /// Players dropped over the whole run.
    pub dropped: usize,
}

/// Incremental state of a Moulin–Shenker run over a universal tree:
/// the active receiver set, `T(R)` membership via subtree receiver
/// counts, and the active children of every station in ascending
/// edge-cost order.
#[derive(Debug, Clone)]
pub struct IncrementalShapley {
    /// `O(1)`-clone handle on the shared substrate (parent array,
    /// cost-sorted CSR children and BFS order all live there, once).
    ut: UniversalTree,
    /// Is the station an active receiver?
    in_r: Vec<bool>,
    /// Active receivers in the station's universal-tree subtree;
    /// `rb[v] > 0` ⟺ `v ∈ T(R) \ {source}`. `u32` — counts are bounded
    /// by the substrate's `n < u32::MAX` invariant, so the warm arrays
    /// ride the same memory diet as the substrate's id state.
    rb: Vec<u32>,
    /// Intrusive cost-ordered list of each station's children with
    /// `rb > 0` (`first_child[x]` → `next_sib` chain; `prev_sib` makes
    /// unlinking O(1)). Compact [`NodeId`] links, [`NodeId::NONE`] ends
    /// a chain — half the bytes of the former `usize` layout.
    first_child: Vec<NodeId>,
    next_sib: Vec<NodeId>,
    prev_sib: Vec<NodeId>,
    /// Scratch: accumulated root-path share prefix per station.
    down: Vec<f64>,
    /// Scratch: per-station shares of the last round.
    shares: Vec<f64>,
    /// Scratch: DFS stack.
    stack: Vec<usize>,
    rounds: usize,
}

impl IncrementalShapley {
    /// Engine over `receivers` (station indices; the source is not a
    /// receiver). Construction is `O(n)`; the per-universe state (parent
    /// array, sorted children, BFS order) is borrowed from the shared
    /// substrate, so G engines over one universe allocate only their
    /// per-group vectors.
    pub fn new(ut: &UniversalTree, receivers: &[usize]) -> Self {
        let sub = ut.substrate();
        let net = ut.network();
        let n = net.n_stations();
        let s = net.source();
        let mut in_r = vec![false; n];
        for &r in receivers {
            assert!(r != s, "the source cannot be a receiver");
            in_r[r] = true;
        }
        // Subtree receiver counts, children before parents.
        let mut rb = vec![0u32; n];
        for &v in sub.bfs_order().iter().rev() {
            let v = v.index();
            let mut cnt = u32::from(in_r[v]);
            for &y in sub.sorted_children(v) {
                cnt += rb[y.index()];
            }
            rb[v] = cnt;
        }
        // Link the active children of every station in cost order.
        let mut first_child = vec![NodeId::NONE; n];
        let mut next_sib = vec![NodeId::NONE; n];
        let mut prev_sib = vec![NodeId::NONE; n];
        for v in 0..n {
            let mut prev = NodeId::NONE;
            for &y in sub.sorted_children(v) {
                if rb[y.index()] == 0 {
                    continue;
                }
                if prev.is_none() {
                    first_child[v] = y;
                } else {
                    next_sib[prev.index()] = y;
                }
                prev_sib[y.index()] = prev;
                prev = y;
            }
        }
        Self {
            ut: ut.clone(),
            in_r,
            rb,
            first_child,
            next_sib,
            prev_sib,
            down: vec![0.0; n],
            shares: vec![0.0; n],
            stack: Vec::with_capacity(n),
            rounds: 0,
        }
    }

    /// The paper's per-increment Shapley split (§2.1) for the current
    /// receiver set, as one `O(|T(R)|)` top-down pass. For station `x`
    /// with active children `y_1 … y_k` (ascending cost), increment
    /// `δ_i = c(x,y_i) − c(x,y_{i−1})` is worth `δ_i / users_i` to every
    /// receiver below `y_i … y_k`, so the accumulated prefix
    /// `down[y_i] = down[x] + Σ_{j≤i} δ_j / users_j` *is* the share of
    /// every receiver whose root path enters `x` through `y_i`.
    /// Returns per-station shares (stale entries outside the active set
    /// are not cleared; callers index by active receivers only).
    pub fn round_shares_by_station(&mut self) -> &[f64] {
        self.rounds += 1;
        let sub = self.ut.substrate().clone();
        let net = sub.network();
        let s = net.source();
        self.down[s] = 0.0;
        self.stack.clear();
        self.stack.push(s);
        while let Some(x) = self.stack.pop() {
            if self.in_r[x] {
                self.shares[x] = self.down[x];
            }
            // Receivers strictly below x: its own subtree count minus x.
            let mut remaining = self.rb[x] - u32::from(self.in_r[x]);
            let mut prev_cost = 0.0;
            let mut acc = self.down[x];
            let mut y = self.first_child[x];
            while !y.is_none() {
                let yi = y.index();
                // Cached tree-edge cost — bit-identical to net.cost(x, y).
                let cost = sub.parent_cost(yi);
                let delta = cost - prev_cost;
                prev_cost = cost;
                if delta > 0.0 {
                    debug_assert!(remaining > 0, "every active branch has a receiver");
                    acc += delta / remaining as f64;
                }
                self.down[yi] = acc;
                remaining -= self.rb[yi];
                self.stack.push(yi);
                y = self.next_sib[yi];
            }
        }
        &self.shares
    }

    /// Drop receiver `r`: decrement the subtree counts on its root path
    /// and unlink stations whose subtree just emptied. `O(depth of r)`.
    pub fn drop_receiver(&mut self, r: usize) {
        debug_assert!(self.in_r[r], "station {r} is not an active receiver");
        self.in_r[r] = false;
        let sub = self.ut.substrate().clone();
        let mut v = r;
        loop {
            self.rb[v] -= 1;
            let p = sub.parent_of(v);
            if p == NONE {
                break;
            }
            if self.rb[v] == 0 {
                // v left T(R): unlink it from p's active children.
                let (pr, nx) = (self.prev_sib[v], self.next_sib[v]);
                if pr.is_none() {
                    self.first_child[p] = nx;
                } else {
                    self.next_sib[pr.index()] = nx;
                }
                if !nx.is_none() {
                    self.prev_sib[nx.index()] = pr;
                }
            }
            v = p;
        }
    }

    /// Add receiver `r` (the inverse of [`IncrementalShapley::drop_receiver`],
    /// used by live sessions to serve `Join` events from warm state):
    /// increment the subtree counts on its root path and splice stations
    /// whose subtree just became non-empty into their parent's
    /// active-children list at the cost-ordered position. `O(depth of r +
    /// Σ sibling scans)`; the resulting state is identical to rebuilding
    /// the engine from scratch on the enlarged receiver set, which is what
    /// keeps a warm session byte-identical to a cold start.
    pub fn add_receiver(&mut self, r: usize) {
        debug_assert!(!self.in_r[r], "station {r} is already an active receiver");
        assert!(
            r != self.ut.network().source(),
            "the source cannot be a receiver"
        );
        let sub = self.ut.substrate().clone();
        self.in_r[r] = true;
        let mut v = r;
        loop {
            self.rb[v] += 1;
            let p = sub.parent_of(v);
            if p == NONE {
                break;
            }
            if self.rb[v] == 1 {
                // v entered T(R): splice it into p's active children just
                // after its nearest active cost-order predecessor.
                let kids = sub.sorted_children(p);
                let mut pr = NodeId::NONE;
                for &y in kids[..sub.pos_in_parent(v)].iter().rev() {
                    if self.rb[y.index()] > 0 {
                        pr = y;
                        break;
                    }
                }
                let nx = if pr.is_none() {
                    self.first_child[p]
                } else {
                    self.next_sib[pr.index()]
                };
                let vid = NodeId::from_index(v);
                self.prev_sib[v] = pr;
                self.next_sib[v] = nx;
                if pr.is_none() {
                    self.first_child[p] = vid;
                } else {
                    self.next_sib[pr.index()] = vid;
                }
                if !nx.is_none() {
                    self.prev_sib[nx.index()] = vid;
                }
            }
            v = p;
        }
    }

    /// The currently-active receiver stations, ascending.
    pub fn active_stations(&self) -> Vec<usize> {
        (0..self.in_r.len()).filter(|&v| self.in_r[v]).collect()
    }

    /// Is station `v` currently an active receiver?
    pub fn is_active(&self, v: usize) -> bool {
        self.in_r[v]
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Heap bytes of this engine's per-session state. The shared
    /// substrate is *excluded*: it is allocated once per universe, not
    /// per group, which is exactly the accounting the memory-diet
    /// experiments need (`G` engines over one universe pay `G ×` this
    /// figure plus one substrate).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.in_r.capacity() * size_of::<bool>()
            + self.rb.capacity() * size_of::<u32>()
            + (self.first_child.capacity() + self.next_sib.capacity() + self.prev_sib.capacity())
                * size_of::<NodeId>()
            + (self.down.capacity() + self.shares.capacity()) * size_of::<f64>()
            + self.stack.capacity() * size_of::<usize>()
    }
}

/// Player-indexed [`DropLoopMethod`] over a borrowed incremental engine:
/// the driver speaks player ids, the engine speaks station ids. Borrowing
/// (rather than owning) the engine is what lets a live session
/// ([`crate::session::ShapleySession`]) keep the same engine warm across
/// many drop-loop runs.
pub(crate) struct PlayerAdapter<'e> {
    pub(crate) engine: &'e mut IncrementalShapley,
}

impl DropLoopMethod for PlayerAdapter<'_> {
    fn n_players(&self) -> usize {
        self.engine.ut.network().n_players()
    }

    fn round_shares_into(&mut self, out: &mut Vec<f64>) {
        let sub = self.engine.ut.substrate().clone();
        let net = sub.network();
        let n = net.n_players();
        let by_station = self.engine.round_shares_by_station();
        out.clear();
        out.extend((0..n).map(|p| by_station[net.station_of_player(p)]));
    }

    fn drop_player(&mut self, p: usize) {
        let station = self.engine.ut.network().station_of_player(p);
        self.engine.drop_receiver(station);
    }

    fn served_cost(&mut self) -> f64 {
        self.engine
            .ut
            .multicast_cost(&self.engine.active_stations())
    }

    fn final_shares_into(&mut self, shares: &mut Vec<f64>) {
        // One exact evaluation of the reference share computation on the
        // surviving set, so the charged shares are byte-identical to the
        // naive driver's.
        let net = self.engine.ut.network();
        let by_station = self
            .engine
            .ut
            .shapley_shares(&self.engine.active_stations());
        shares.clear();
        shares.extend((0..net.n_players()).map(|p| by_station[net.station_of_player(p)]));
    }
}

/// Run `M(Shapley)` over a universal tree with the incremental engine.
/// Equivalent to [`reference_drop_run`] (property-tested byte for byte),
/// with no 64-player cap.
pub fn shapley_drop_run(ut: &UniversalTree, reported: &[f64]) -> MechanismOutcome {
    shapley_drop_run_with_stats(ut, reported).0
}

/// [`shapley_drop_run`], also reporting round/drop counts.
pub fn shapley_drop_run_with_stats(
    ut: &UniversalTree,
    reported: &[f64],
) -> (MechanismOutcome, DropStats) {
    let receivers = ut.network().non_source_stations();
    let mut engine = IncrementalShapley::new(ut, &receivers);
    let out = run_drop_loop(
        &mut PlayerAdapter {
            engine: &mut engine,
        },
        reported,
    );
    let stats = DropStats {
        rounds: engine.rounds(),
        dropped: reported.len() - out.receivers.len(),
    };
    (out, stats)
}

/// Cold-start a Moulin–Shenker run from an explicit **player** subset:
/// build a fresh engine on exactly those receivers and run the drop loop
/// from them (not from `U`). This is the from-scratch reference a warm
/// [`crate::session::ShapleySession`] must match byte for byte after
/// every churn batch, and the "cold" side of the `session_churn` bench.
///
/// `players` must be strictly ascending; `reported` is full length
/// (entries outside `players` are ignored).
pub fn shapley_drop_run_from(
    ut: &UniversalTree,
    reported: &[f64],
    players: &[usize],
) -> MechanismOutcome {
    let net = ut.network();
    let stations: Vec<usize> = players.iter().map(|&p| net.station_of_player(p)).collect();
    let mut engine = IncrementalShapley::new(ut, &stations);
    run_drop_loop_from(
        &mut PlayerAdapter {
            engine: &mut engine,
        },
        reported,
        players,
    )
}

/// The naive pre-incremental driver: every round recomputes the full
/// [`UniversalTree::shapley_shares`] on the surviving station set —
/// `O(n · depth)` per round. Kept verbatim as the correctness reference
/// for the engine (tests, T10's n = 64 identity column, and the
/// `drop_engine` criterion bench).
pub fn reference_drop_run(ut: &UniversalTree, reported: &[f64]) -> MechanismOutcome {
    let net = ut.network();
    let n = net.n_players();
    assert_eq!(reported.len(), n);
    let mut in_set: Vec<bool> = vec![true; n];
    loop {
        let stations: Vec<usize> = (0..n)
            .filter(|&p| in_set[p])
            .map(|p| net.station_of_player(p))
            .collect();
        let shares_by_station = ut.shapley_shares(&stations);
        let mut dropped_any = false;
        for p in 0..n {
            if in_set[p] {
                let share = shares_by_station[net.station_of_player(p)];
                if reported[p] < share - wmcs_geom::EPS {
                    in_set[p] = false;
                    dropped_any = true;
                }
            }
        }
        if !dropped_any {
            let receivers: Vec<usize> = (0..n).filter(|&p| in_set[p]).collect();
            let mut shares = vec![0.0; n];
            for &p in &receivers {
                shares[p] = shares_by_station[net.station_of_player(p)];
            }
            let served_cost = ut.multicast_cost(&stations);
            return MechanismOutcome {
                receivers,
                shares,
                served_cost,
            };
        }
    }
}

/// The largest-efficient-set DP (§2.1) with `O(depth)` re-query after
/// zeroing one station's utility — the inner loop of the MC/VCG
/// mechanism, which needs `NW(u_{−i})` for every receiver `i`.
///
/// The bottom-up pass stores, per station, the prefix sums
/// `val_j = Σ_{i≤j} h(y_i) − c(x, y_j)` folded into prefix maxima
/// (`pre[j] = max(0, val_0 … val_{j−1})`) and suffix maxima
/// (`suf[j] = max(val_j … val_{k−1})`). Zeroing a station shifts every
/// `val_j` of its parent with `j ≥ pos` by the same `δ = h' − h`, so the
/// parent's new best prefix is `max(pre[pos], suf[pos] + δ)` — `O(1)`
/// per ancestor instead of `O(children)`.
///
/// Value comparisons are exact (total order, larger prefix only on true
/// ties), fixing the EPS drift that could return a set disagreeing with
/// the reported net worth.
#[derive(Debug, Clone)]
pub struct NetWorthOracle {
    /// `O(1)`-clone handle on the shared substrate.
    ut: UniversalTree,
    /// Utilities by station, as given (the DP clamps at 0 on use).
    u: Vec<f64>,
    /// `h[v]`: best net worth of the subtree game rooted at `v`.
    h: Vec<f64>,
    /// The chosen best prefix value at `v` (`h[v] = own(v) + best[v]`).
    best: Vec<f64>,
    /// Chosen prefix length at `v` (0 = serve no child branch). `u32` —
    /// bounded by the station's degree, so it rides the same memory diet
    /// as the link arrays.
    choice: Vec<u32>,
    /// `pre[offset(v) + j] = max(0, val_0 … val_{j−1})` — flat per-edge
    /// array indexed through the substrate's CSR offsets (one allocation
    /// instead of a `Vec<Vec<f64>>` per oracle; the substrate refactor's
    /// memory layout applied to the DP state).
    pre: Vec<f64>,
    /// `suf[offset(v) + j] = max(val_j … val_{k−1})`, same flat layout.
    suf: Vec<f64>,
}

impl NetWorthOracle {
    /// Run the bottom-up DP once: `O(n)`.
    pub fn new(ut: &UniversalTree, u: &[f64]) -> Self {
        let sub = ut.substrate().clone();
        let n = sub.network().n_stations();
        assert_eq!(u.len(), n);
        let n_edges = sub.n_edges();
        let mut oracle = Self {
            ut: ut.clone(),
            u: u.to_vec(),
            h: vec![0.0f64; n],
            best: vec![0.0f64; n],
            choice: vec![0u32; n],
            pre: vec![0.0f64; n_edges],
            suf: vec![f64::NEG_INFINITY; n_edges],
        };
        for &v in sub.bfs_order().iter().rev() {
            oracle.recompute_station(&sub, v.index());
        }
        oracle
    }

    /// Recompute every stored DP quantity at station `v` from its
    /// children's current `h` values — the per-station kernel shared by
    /// the full bottom-up pass ([`NetWorthOracle::new`]) and the `O(path)`
    /// utility update ([`NetWorthOracle::set_utility`]). Sharing one
    /// kernel is what makes an updated oracle *byte-identical* to a
    /// freshly built one: both run the same arithmetic on the same
    /// inputs. `O(children of v)`.
    fn recompute_station(&mut self, sub: &crate::substrate::TreeSubstrate, v: usize) {
        let net = sub.network();
        let s = net.source();
        let kids = sub.sorted_children(v);
        let k = kids.len();
        let base = sub.csr_offset(v);
        let own = if v == s { 0.0 } else { self.u[v].max(0.0) };
        // Raw prefix values go into the suf slice first (it is rewritten
        // into suffix maxima in place below), so no per-call allocation.
        let mut acc = 0.0f64;
        for (j, &y) in kids.iter().enumerate() {
            let y = y.index();
            acc += self.h[y];
            // Cached tree-edge cost — bit-identical to net.cost(v, y).
            self.suf[base + j] = acc - sub.parent_cost(y);
        }
        // Exact total order on value; larger prefix on true ties.
        let mut b = 0.0f64;
        let mut bj = 0usize;
        for j in 0..k {
            let val = self.suf[base + j];
            if val >= b {
                b = val;
                bj = j + 1;
            }
        }
        // pre[j] = max(0, val_0 … val_{j−1}): running maximum.
        let mut run = 0.0f64;
        for j in 0..k {
            self.pre[base + j] = run;
            run = run.max(self.suf[base + j]);
        }
        // Fold the raw values into suffix maxima, right to left.
        for j in (0..k.saturating_sub(1)).rev() {
            self.suf[base + j] = self.suf[base + j].max(self.suf[base + j + 1]);
        }
        self.h[v] = own + b;
        self.best[v] = b;
        self.choice[v] = u32::try_from(bj).expect("child count fits u32");
    }

    /// Replace station `x`'s utility and repair the DP along `x`'s root
    /// path — the warm-state analogue of rebuilding the oracle on the
    /// modified profile, used by [`crate::session::McSession`] to absorb
    /// churn events. Costs `O(Σ children over the dirty prefix of the
    /// path)` and stops as soon as an ancestor's `h` is unchanged (its
    /// parent only sees `h`). The updated oracle equals
    /// `NetWorthOracle::new(ut, modified_u)` in every stored float.
    pub fn set_utility(&mut self, x: usize, utility: f64) {
        let sub = self.ut.substrate().clone();
        let s = sub.network().source();
        assert!(x != s, "the source has no utility");
        self.u[x] = utility;
        // x's own prefix arrays depend only on its children, which are
        // untouched — only own(x) changes.
        let old = self.h[x];
        self.h[x] = utility.max(0.0) + self.best[x];
        if self.h[x] == old {
            return;
        }
        let mut v = x;
        while v != s {
            let p = sub.parent_of(v);
            debug_assert!(p != NONE, "non-source station has a parent");
            let before = self.h[p];
            self.recompute_station(&sub, p);
            if self.h[p] == before {
                return;
            }
            v = p;
        }
    }

    /// Station `x`'s current utility as stored by the oracle.
    pub fn utility(&self, x: usize) -> f64 {
        self.u[x]
    }

    /// The full station-indexed utility vector the oracle currently
    /// holds (what a cold `NetWorthOracle::new` rebuild would consume).
    pub fn utilities(&self) -> &[f64] {
        &self.u
    }

    /// Maximal net worth `NW(u)`.
    pub fn net_worth(&self) -> f64 {
        self.h[self.ut.network().source()]
    }

    /// The largest welfare-maximising station set and its net worth:
    /// walk the chosen prefixes down from the source.
    pub fn efficient_set(&self) -> (Vec<usize>, f64) {
        let sub = self.ut.substrate();
        let s = sub.network().source();
        let mut reached = Vec::new();
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            if v != s {
                reached.push(v);
            }
            stack.extend(
                sub.sorted_children(v)
                    .iter()
                    .take(self.choice[v] as usize)
                    .map(|c| c.index()),
            );
        }
        reached.sort_unstable();
        (reached, self.net_worth())
    }

    /// `NW(u_{−x})`: maximal net worth with station `x`'s utility set to
    /// zero, in `O(depth of x)`. Agrees with a full DP on the modified
    /// profile up to float reassociation (pinned by property tests).
    pub fn net_worth_zeroing(&self, x: usize) -> f64 {
        let sub = self.ut.substrate();
        let s = sub.network().source();
        assert!(x != s, "the source has no utility to zero");
        // Zeroing only lowers own(x); the subtree below x is unchanged.
        let mut v = x;
        let mut hv = self.best[x];
        while v != s {
            if hv == self.h[v] {
                // Nothing changed at v, so nothing changes above it.
                return self.h[s];
            }
            let p = sub.parent_of(v);
            debug_assert!(p != NONE, "non-source station has a parent");
            let j = sub.csr_offset(p) + sub.pos_in_parent(v);
            let delta = hv - self.h[v];
            let b = self.pre[j].max(self.suf[j] + delta);
            let own_p = if p == s { 0.0 } else { self.u[p].max(0.0) };
            hv = own_p + b;
            v = p;
        }
        hv
    }

    /// Heap bytes of this oracle's per-session state (the shared
    /// substrate is excluded, exactly as in
    /// [`IncrementalShapley::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.u.capacity()
            + self.h.capacity()
            + self.best.capacity()
            + self.pre.capacity()
            + self.suf.capacity())
            * size_of::<f64>()
            + self.choice.capacity() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SubstrateBuilder, TreeKind};
    use crate::network::WirelessNetwork;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{approx_eq, Point, PowerModel};
    use wmcs_graph::RootedTree;

    fn random_tree(seed: u64, n: usize) -> UniversalTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        if seed.is_multiple_of(2) {
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Spt)
                .build_universal()
        } else {
            SubstrateBuilder::new(&net)
                .tree(TreeKind::Mst)
                .build_universal()
        }
    }

    /// Chain 0 → 1 → 2 plus branch 1 → 3 (the universal.rs fixture).
    fn chain_tree() -> UniversalTree {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(2.0, 0.0),
            Point::xy(1.0, 2.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let tree = RootedTree::from_parents(0, vec![None, Some(0), Some(1), Some(1)]);
        SubstrateBuilder::from_owned(net)
            .explicit_tree(tree)
            .build_universal()
    }

    #[test]
    fn round_shares_match_the_reference_split() {
        let ut = chain_tree();
        for receivers in [vec![1], vec![2], vec![3], vec![2, 3], vec![1, 2, 3]] {
            let reference = ut.shapley_shares(&receivers);
            let mut engine = IncrementalShapley::new(&ut, &receivers);
            let fast = engine.round_shares_by_station();
            for &r in &receivers {
                assert!(
                    approx_eq(fast[r], reference[r]),
                    "R = {receivers:?}, station {r}: {} ≠ {}",
                    fast[r],
                    reference[r]
                );
            }
        }
    }

    #[test]
    fn dropping_matches_recomputation_from_scratch() {
        for seed in 0..20 {
            let ut = random_tree(seed, 12);
            let mut engine = IncrementalShapley::new(&ut, &ut.network().non_source_stations());
            let mut alive: Vec<usize> = ut.network().non_source_stations();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xd0b);
            while alive.len() > 1 {
                let victim = alive.remove(rng.gen_range(0..alive.len()));
                engine.drop_receiver(victim);
                let fast = engine.round_shares_by_station().to_vec();
                let reference = ut.shapley_shares(&alive);
                for &r in &alive {
                    assert!(
                        approx_eq(fast[r], reference[r]),
                        "seed {seed}, alive {alive:?}, station {r}: {} ≠ {}",
                        fast[r],
                        reference[r]
                    );
                }
            }
        }
    }

    #[test]
    fn add_and_drop_walk_matches_recomputation_from_scratch() {
        // A random join/leave walk over the receiver set: after every
        // step the engine's round shares must equal the reference split
        // on the current set, and joins must exactly invert drops.
        for seed in 0..20 {
            let ut = random_tree(seed, 14);
            let all = ut.network().non_source_stations();
            let mut engine = IncrementalShapley::new(&ut, &[]);
            let mut alive: Vec<usize> = Vec::new();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xadd);
            for _step in 0..60 {
                if alive.is_empty() || (alive.len() < all.len() && rng.gen_bool(0.5)) {
                    let candidates: Vec<usize> =
                        all.iter().copied().filter(|v| !alive.contains(v)).collect();
                    let v = candidates[rng.gen_range(0..candidates.len())];
                    engine.add_receiver(v);
                    alive.push(v);
                } else {
                    let v = alive.remove(rng.gen_range(0..alive.len()));
                    engine.drop_receiver(v);
                }
                if alive.is_empty() {
                    continue;
                }
                let fast = engine.round_shares_by_station().to_vec();
                let reference = ut.shapley_shares(&alive);
                for &r in &alive {
                    assert!(
                        approx_eq(fast[r], reference[r]),
                        "seed {seed}, alive {alive:?}, station {r}: {} ≠ {}",
                        fast[r],
                        reference[r]
                    );
                }
            }
        }
    }

    #[test]
    fn drop_run_from_subset_matches_cold_engine_on_that_subset() {
        for seed in 0..20 {
            let ut = random_tree(seed, 11);
            let n = ut.network().n_players();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5b5e7);
            let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let players: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.6)).collect();
            let out = shapley_drop_run_from(&ut, &u, &players);
            // Every receiver came from the initial subset and affords its
            // share; the full-set run is the players == all special case.
            assert!(out.receivers.iter().all(|p| players.contains(p)));
            for &p in &out.receivers {
                assert!(u[p] >= out.shares[p] - wmcs_geom::EPS);
            }
            let all: Vec<usize> = (0..n).collect();
            let from_all = shapley_drop_run_from(&ut, &u, &all);
            let plain = shapley_drop_run(&ut, &u);
            assert_eq!(from_all.receivers, plain.receivers, "seed {seed}");
            assert_eq!(from_all.shares, plain.shares, "seed {seed}");
        }
    }

    #[test]
    fn set_utility_repairs_the_oracle_byte_for_byte() {
        for seed in 0..20 {
            let ut = random_tree(seed, 12);
            let n = ut.network().n_stations();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e7);
            let mut u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..8.0)).collect();
            let mut warm = NetWorthOracle::new(&ut, &u);
            for _event in 0..25 {
                let x = loop {
                    let x = rng.gen_range(0..n);
                    if x != ut.network().source() {
                        break x;
                    }
                };
                let v = if rng.gen_bool(0.3) {
                    0.0
                } else {
                    rng.gen_range(0.0..8.0)
                };
                u[x] = v;
                warm.set_utility(x, v);
                let cold = NetWorthOracle::new(&ut, &u);
                assert_eq!(warm.net_worth(), cold.net_worth(), "seed {seed}");
                assert_eq!(warm.efficient_set(), cold.efficient_set(), "seed {seed}");
                for y in ut.network().non_source_stations() {
                    assert_eq!(
                        warm.net_worth_zeroing(y),
                        cold.net_worth_zeroing(y),
                        "seed {seed}, station {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_run_equals_reference_run() {
        for seed in 0..30 {
            let ut = random_tree(seed, 9);
            let n = ut.network().n_players();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
            let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..12.0)).collect();
            let fast = shapley_drop_run(&ut, &u);
            let reference = reference_drop_run(&ut, &u);
            assert_eq!(fast.receivers, reference.receivers, "seed {seed}");
            assert_eq!(fast.shares, reference.shares, "seed {seed}");
            assert_eq!(fast.served_cost, reference.served_cost, "seed {seed}");
        }
    }

    #[test]
    fn stats_count_rounds_and_drops() {
        let ut = chain_tree();
        // All rich: one fixpoint round, no drops.
        let (_, stats) = shapley_drop_run_with_stats(&ut, &[100.0, 100.0, 100.0]);
        assert_eq!(
            stats,
            DropStats {
                rounds: 1,
                dropped: 0
            }
        );
        // All poor: everyone drops in round 1, empty fixpoint.
        let (out, stats) = shapley_drop_run_with_stats(&ut, &[0.0, 0.0, 0.0]);
        assert!(out.receivers.is_empty());
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn oracle_matches_full_dp_after_zeroing() {
        for seed in 0..20 {
            let ut = random_tree(seed, 10);
            let n = ut.network().n_stations();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xace);
            let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..8.0)).collect();
            let oracle = NetWorthOracle::new(&ut, &u);
            assert!(
                approx_eq(oracle.net_worth(), ut.net_worth(&u)),
                "seed {seed}"
            );
            for x in (0..n).filter(|&x| x != ut.network().source()) {
                let mut u_minus = u.clone();
                u_minus[x] = 0.0;
                let full = ut.net_worth(&u_minus);
                let fast = oracle.net_worth_zeroing(x);
                assert!(
                    (full - fast).abs() < 1e-9 * (1.0 + full.abs()),
                    "seed {seed}, station {x}: full {full} ≠ fast {fast}"
                );
            }
        }
    }

    #[test]
    fn oracle_efficient_set_net_worth_is_consistent_with_its_set() {
        // The satellite invariant: the returned net worth must be the
        // welfare of the returned set (exact tie-break, no EPS drift).
        for seed in 0..20 {
            let ut = random_tree(seed, 10);
            let n = ut.network().n_stations();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xbee);
            let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..8.0)).collect();
            let (set, nw) = ut.largest_efficient_set(&u);
            let util: f64 = set.iter().map(|&x| u[x].max(0.0)).sum();
            let welfare = util - ut.multicast_cost(&set);
            assert!(
                (welfare - nw).abs() < 1e-9 * (1.0 + nw.abs()),
                "seed {seed}: set welfare {welfare} ≠ net worth {nw}"
            );
        }
    }
}
