//! Epoch-pipelined streaming ingestion: interleaved `(group, event)`
//! streams served over the shared substrate, byte-identical to batch
//! replay.
//!
//! [`crate::service::MulticastService`] ingests pre-materialized batches
//! with strictly ascending group ids; production multicast traffic
//! arrives as an *interleaved* event stream with bursty per-group
//! membership dynamics (the regime of the outage/capacity line of work —
//! see PAPERS.md). A [`StreamService`] closes the gap without giving up
//! the byte-identity discipline:
//!
//! * producers push `(group, ChurnEvent)` through a [`StreamHandle`]
//!   into **bounded** per-group queues (capacity
//!   [`StreamConfig::capacity`], never more);
//! * an **epoch sealer** deterministically cuts each group's stream into
//!   epochs by an event-count watermark ([`StreamConfig::watermark`]) —
//!   never by wall clock — and hands sealed epochs to a crossbeam worker
//!   pool;
//! * each epoch is absorbed by the group's warm [`GroupSession`] exactly
//!   as [`MulticastService`] would absorb the same events as one batch,
//!   and the outcome is placed in a per-epoch `OnceLock` slot (the
//!   sanctioned slot pattern — scheduling order can never reach a float).
//!
//! # Determinism contract
//!
//! A group's epoch boundaries depend only on the *per-group submission
//! order* and the config — counts, not clocks — so the epoch sequence of
//! every group equals [`epoch_plan`] applied to that group's event
//! subsequence. Each group's epochs execute in order (pipeline depth 1
//! per group, enforced by the sealer), on exactly one worker at a time,
//! over warm state only that group owns. The stream outcome is therefore
//! **byte-identical** to replaying the plan's chunks through a
//! single-threaded `MulticastService::step` (`with_threads(1)` stays the
//! pinned reference), for every worker count and queue capacity —
//! experiment T14 and `tests/stream_props.rs` gate exactly this.
//!
//! # Admission control and backpressure
//!
//! A submission that finds its group's queue at capacity is **rejected**
//! with a deterministic [`Admission::Busy`] carrying the observed depth —
//! and the rejection *saturation-seals* the backlog as a partial epoch,
//! so the immediate retry is guaranteed to be admitted (progress under
//! backpressure, no unbounded buffering anywhere: pending events are
//! bounded by `capacity` per group and at most one epoch per group is
//! ever queued or running). Rejections and retries are counted per group
//! in the [`StreamReport`]. When `capacity < watermark` every seal is a
//! saturation seal; the effective epoch size is always
//! [`StreamConfig::epoch_size`].
//!
//! # Latency
//!
//! Time is a **virtual clock**: one tick per submission attempt, no
//! `Instant`/`SystemTime` anywhere near an outcome. Each accepted event
//! records `seal_tick − submit_tick` under its event class, and each
//! epoch records a `reprice` sample (seal tick minus the epoch's first
//! submission tick) — the exact-percentile harness in
//! `wmcs-bench::latency` consumes these via [`StreamLatencies`].

use crate::service::{GroupMechanism, GroupSession, MulticastService, SessionLayout};
use crate::universal::UniversalTree;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use wmcs_game::MechanismOutcome;
use wmcs_geom::churn::ChurnEvent;

/// Shape of a streaming run: seal watermark, queue bound, worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Seal a group's pending events as an epoch once this many are
    /// queued (count-based — never wall clock).
    pub watermark: usize,
    /// Bounded per-group queue capacity; a submission beyond it is
    /// rejected with [`Admission::Busy`] (and saturation-seals the
    /// backlog).
    pub capacity: usize,
    /// Worker threads servicing sealed epochs (≥ 1). Outcomes are
    /// byte-identical for every value — see the module docs.
    pub threads: usize,
    /// Warm-state layout for group sessions ([`SessionLayout::Auto`] by
    /// default). Outcomes are byte-identical for every value — only
    /// memory and per-event cost differ.
    pub layout: SessionLayout,
}

impl StreamConfig {
    /// A config with the given watermark, capacity and worker count.
    pub fn new(watermark: usize, capacity: usize, threads: usize) -> Self {
        assert!(
            watermark >= 1,
            "the seal watermark must be at least one event"
        );
        assert!(
            capacity >= 1,
            "a bounded queue needs room for at least one event"
        );
        assert!(threads >= 1, "the epoch pool needs at least one worker");
        Self {
            watermark,
            capacity,
            threads,
            layout: SessionLayout::Auto,
        }
    }

    /// The same config with a different worker count (≥ 1) — the knob
    /// the determinism proptests sweep.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "the epoch pool needs at least one worker");
        self.threads = threads;
        self
    }

    /// The same config with a pinned warm-state layout — the knob the
    /// sparse≡dense identity proptests sweep.
    pub fn with_layout(mut self, layout: SessionLayout) -> Self {
        self.layout = layout;
        self
    }

    /// The effective epoch size: `min(watermark, capacity)`. With
    /// `capacity ≥ watermark` every full epoch is a watermark seal; with
    /// `capacity < watermark` every full epoch is a saturation seal of
    /// exactly `capacity` events.
    pub fn epoch_size(&self) -> usize {
        self.watermark.min(self.capacity)
    }
}

/// The deterministic admission verdict of one submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The event was queued.
    Accepted {
        /// The addressed group.
        group: usize,
        /// Queue depth after the submission (before any seal it
        /// triggered).
        depth: usize,
        /// `Some(epoch)` when this submission reached the watermark and
        /// sealed epoch number `epoch`.
        sealed: Option<u64>,
    },
    /// The group's queue was at capacity; the event was **not** queued.
    /// The rejection saturation-seals the backlog, so an immediate retry
    /// is admitted.
    Busy {
        /// The addressed group.
        group: usize,
        /// The queue depth observed (always the configured capacity).
        depth: usize,
    },
}

/// One completed epoch: the group's mechanism outcome after absorbing
/// the epoch's events, exactly as a batch `step` would produce it.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// The group the epoch belongs to.
    pub group: usize,
    /// Epoch number within the group (dense from 0, seal order).
    pub epoch: u64,
    /// Events absorbed by this epoch.
    pub n_events: usize,
    /// The mechanism outcome on the group's receiver set after the
    /// epoch.
    pub outcome: MechanismOutcome,
}

/// Virtual-clock latency samples, one vector per event class.
///
/// Join/leave/rebid samples are `seal_tick − submit_tick` of each
/// accepted event; `reprice` samples are per-epoch residence times
/// (seal tick minus the epoch's first submission tick). Ticks count
/// submission attempts — wall clock never appears.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamLatencies {
    /// Queueing delays of accepted `Join` events.
    pub join: Vec<u64>,
    /// Queueing delays of accepted `Leave` events.
    pub leave: Vec<u64>,
    /// Queueing delays of accepted `Rebid` events.
    pub rebid: Vec<u64>,
    /// Per-epoch residence times (one sample per sealed epoch).
    pub reprice: Vec<u64>,
}

impl StreamLatencies {
    /// File `delay` under `event`'s class.
    pub fn record(&mut self, event: &ChurnEvent, delay: u64) {
        match event {
            ChurnEvent::Join { .. } => self.join.push(delay),
            ChurnEvent::Leave { .. } => self.leave.push(delay),
            ChurnEvent::Rebid { .. } => self.rebid.push(delay),
        }
    }

    /// Append all of `other`'s samples (class by class, in order).
    pub fn extend(&mut self, other: &StreamLatencies) {
        self.join.extend_from_slice(&other.join);
        self.leave.extend_from_slice(&other.leave);
        self.rebid.extend_from_slice(&other.rebid);
        self.reprice.extend_from_slice(&other.reprice);
    }

    /// Total samples across all four classes.
    pub fn n_samples(&self) -> usize {
        self.join.len() + self.leave.len() + self.rebid.len() + self.reprice.len()
    }
}

/// One group's slice of a [`StreamReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStreamReport {
    /// The group id.
    pub group: usize,
    /// The mechanism the group is priced with.
    pub mechanism: GroupMechanism,
    /// Events admitted into the group's queue.
    pub accepted: u64,
    /// Submissions rejected with [`Admission::Busy`].
    pub rejected: u64,
    /// Successful re-submissions after a `Busy` (as counted by
    /// [`StreamHandle::submit_blocking`]).
    pub retries: u64,
    /// Virtual-clock latency samples for this group.
    pub latencies: StreamLatencies,
    /// Completed epochs, in seal order (dense epoch numbers from 0).
    pub epochs: Vec<EpochOutcome>,
}

/// The outcome of one [`StreamService::drive`]: per-group epochs,
/// admission accounting and latency samples.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Per-group reports, in group-id order.
    pub groups: Vec<GroupStreamReport>,
}

impl StreamReport {
    /// Events admitted across all groups.
    pub fn n_accepted(&self) -> u64 {
        self.groups.iter().map(|g| g.accepted).sum()
    }

    /// Submissions rejected across all groups.
    pub fn n_rejected(&self) -> u64 {
        self.groups.iter().map(|g| g.rejected).sum()
    }

    /// Successful post-`Busy` re-submissions across all groups.
    pub fn n_retries(&self) -> u64 {
        self.groups.iter().map(|g| g.retries).sum()
    }

    /// Completed epochs across all groups.
    pub fn n_epochs(&self) -> usize {
        self.groups.iter().map(|g| g.epochs.len()).sum()
    }

    /// All latency samples merged in group-id order (class by class) —
    /// the input shape of the `wmcs-bench::latency` percentile harness.
    pub fn latencies(&self) -> StreamLatencies {
        let mut merged = StreamLatencies::default();
        for g in &self.groups {
            merged.extend(&g.latencies);
        }
        merged
    }
}

/// The pure reference plan: how a group's event subsequence is cut into
/// epochs. Chunks of [`StreamConfig::epoch_size`] plus a trailing
/// partial — the streaming layer's epoch sequence equals this plan for
/// every worker count (the byte-identity gate replays these chunks
/// through a single-threaded [`MulticastService::step`]).
pub fn epoch_plan(events: &[ChurnEvent], config: &StreamConfig) -> Vec<Vec<ChurnEvent>> {
    events
        .chunks(config.epoch_size())
        .map(<[ChurnEvent]>::to_vec)
        .collect()
}

/// One group's pending queue and stream accounting (behind the group's
/// queue mutex; mutated only by the producer side and the in-flight
/// flag handshake).
#[derive(Debug, Default)]
struct GroupQueue {
    /// Admitted events waiting to be sealed, with their submission
    /// ticks. Never longer than the configured capacity.
    pending: Vec<(ChurnEvent, u64)>,
    /// Epochs sealed so far (the next epoch number).
    epochs_sealed: u64,
    /// Whether a sealed epoch of this group is queued or running —
    /// pipeline depth 1 per group, the in-order execution guarantee.
    in_flight: bool,
    /// Events admitted.
    accepted: u64,
    /// Submissions rejected with `Busy`.
    rejected: u64,
    /// Successful post-`Busy` re-submissions.
    retries: u64,
    /// Per-epoch outcome slots, in seal order (the slot pattern: workers
    /// place, the post-join drain folds).
    slots: Vec<Arc<OnceLock<EpochOutcome>>>,
    /// Latency samples, recorded at seal time by the producer side.
    lat: StreamLatencies,
}

/// One group's streaming state: bounded queue + warm session.
#[derive(Debug)]
struct GroupSlot {
    /// Pending queue and accounting.
    queue: Mutex<GroupQueue>,
    /// Signalled when the group's in-flight epoch completes (the sealer
    /// waits here for pipeline depth 1).
    idle: Condvar,
    /// The group's warm session; locked by exactly one worker at a time
    /// (in-flight ≤ 1 makes it uncontended).
    session: Mutex<GroupSession>,
    /// The mechanism the group is priced with.
    mechanism: GroupMechanism,
}

/// A sealed epoch handed to the worker pool.
#[derive(Debug)]
struct Epoch {
    group: usize,
    epoch: u64,
    events: Vec<ChurnEvent>,
    slot: Arc<OnceLock<EpochOutcome>>,
}

/// The shared task queue (bounded by construction: at most one epoch
/// per group, pipeline depth 1).
#[derive(Debug, Default)]
struct TaskState {
    queue: VecDeque<Epoch>,
    shutdown: bool,
}

/// Epoch-pipelined streaming ingestion over one shared substrate — see
/// the module docs for the determinism and backpressure contracts.
///
/// Cloning copies every group's warm session (`O(G·n)`) but shares the
/// substrate and starts with fresh, empty stream accounting — the
/// `stream_throughput` bench clones a warmed service inside its timers
/// to replay identical steady states.
#[derive(Debug)]
pub struct StreamService {
    ut: UniversalTree,
    config: StreamConfig,
    groups: Vec<GroupSlot>,
    tasks: Mutex<TaskState>,
    task_cv: Condvar,
    /// The virtual clock: one tick per submission attempt.
    clock: AtomicU64,
}

impl Clone for StreamService {
    fn clone(&self) -> Self {
        Self {
            ut: self.ut.clone(),
            config: self.config,
            groups: self
                .groups
                .iter()
                .map(|slot| GroupSlot {
                    queue: Mutex::new(GroupQueue::default()),
                    idle: Condvar::new(),
                    // A panicked worker poisons its group's mutex; the
                    // state itself is a plain session snapshot, so
                    // recover it rather than fabricating a second panic
                    // site.
                    session: Mutex::new(
                        slot.session
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .clone(),
                    ),
                    mechanism: slot.mechanism,
                })
                .collect(),
            tasks: Mutex::new(TaskState::default()),
            task_cv: Condvar::new(),
            clock: AtomicU64::new(0),
        }
    }
}

/// Sets the worker shutdown flag on drop, so a panicking producer can
/// never leave the pool waiting on the task condvar forever (the scope
/// join would then deadlock). Workers drain the queued epochs before
/// honoring shutdown, so the normal-path flush still completes.
struct ShutdownGuard<'a>(&'a StreamService);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        let mut tasks = self.0.tasks.lock().unwrap_or_else(PoisonError::into_inner);
        tasks.shutdown = true;
        drop(tasks);
        self.0.task_cv.notify_all();
    }
}

impl StreamService {
    /// An empty streaming service over the shared substrate of `ut` (no
    /// groups yet). The handle is cloned (`O(1)`), never the substrate.
    pub fn new(ut: &UniversalTree, config: StreamConfig) -> Self {
        Self {
            ut: ut.clone(),
            config,
            groups: Vec::new(),
            tasks: Mutex::new(TaskState::default()),
            task_cv: Condvar::new(),
            clock: AtomicU64::new(0),
        }
    }

    /// Register a new group priced with `mechanism`; returns its group
    /// id (dense, starting at 0).
    pub fn add_group(&mut self, mechanism: GroupMechanism) -> usize {
        self.groups.push(GroupSlot {
            queue: Mutex::new(GroupQueue::default()),
            idle: Condvar::new(),
            session: Mutex::new(GroupSession::with_layout(
                mechanism,
                &self.ut,
                self.config.layout,
            )),
            mechanism,
        });
        self.groups.len() - 1
    }

    /// Number of registered groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The mechanism group `g` is priced with.
    pub fn mechanism(&self, g: usize) -> GroupMechanism {
        self.groups[g].mechanism
    }

    /// The shared universal tree every group prices over.
    pub fn universal_tree(&self) -> &UniversalTree {
        &self.ut
    }

    /// The streaming configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Total warm session state across every group, in bytes (the shared
    /// substrate is excluded — it is one `Arc` for the whole service).
    /// Divide by [`Self::n_groups`] for the per-group figure the memory
    /// SLO tracks.
    pub fn memory_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|slot| {
                slot.session
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .memory_bytes()
            })
            .sum()
    }

    /// Run one streaming session: spawn the worker pool, hand the
    /// producer a [`StreamHandle`], flush the residual partial epochs
    /// when it returns, join the pool and drain the report.
    ///
    /// Sessions stay **warm** across drives (epoch numbers and the
    /// virtual clock restart; group state carries over), mirroring a
    /// `MulticastService` stepped across multiple traces.
    pub fn drive<R: Send>(
        &mut self,
        producer: impl FnOnce(&StreamHandle<'_>) -> R + Send,
    ) -> (R, StreamReport) {
        self.clock.store(0, Ordering::Relaxed);
        {
            let mut tasks = self
                .tasks
                .lock()
                .expect("the task queue mutex is never poisoned");
            tasks.shutdown = false;
            debug_assert!(tasks.queue.is_empty(), "stale epochs from a previous drive");
        }
        let this: &StreamService = self;
        let result = crossbeam::thread::scope(|scope| {
            for _ in 0..this.config.threads {
                scope.spawn(move |_| loop {
                    // Pop the next sealed epoch; exit only once the
                    // queue is drained *and* shutdown is flagged.
                    let task = {
                        let mut tasks = this
                            .tasks
                            .lock()
                            .expect("the task queue mutex is never poisoned");
                        loop {
                            if let Some(task) = tasks.queue.pop_front() {
                                break Some(task);
                            }
                            if tasks.shutdown {
                                break None;
                            }
                            tasks = this
                                .task_cv
                                .wait(tasks)
                                .expect("the task queue mutex is never poisoned");
                        }
                    };
                    let Some(task) = task else { break };
                    let slot = &this.groups[task.group];
                    let outcome = {
                        let mut session = slot
                            .session
                            .lock()
                            .expect("a group session mutex is never poisoned");
                        session.apply_batch(&task.events)
                    };
                    // The slot pattern: the epoch's outcome goes into its
                    // per-epoch OnceLock; the single-threaded drain after
                    // the pool joins folds the slots in seal order.
                    let placed: &OnceLock<EpochOutcome> = &task.slot;
                    placed
                        .set(EpochOutcome {
                            group: task.group,
                            epoch: task.epoch,
                            n_events: task.events.len(),
                            outcome,
                        })
                        .expect("each sealed epoch is executed exactly once");
                    let mut queue = slot
                        .queue
                        .lock()
                        .expect("a group queue mutex is never poisoned");
                    queue.in_flight = false;
                    drop(queue);
                    slot.idle.notify_all();
                });
            }
            let guard = ShutdownGuard(this);
            let handle = StreamHandle { svc: this };
            let out = producer(&handle);
            for g in 0..this.groups.len() {
                handle.flush(g);
            }
            // Normal path: residual epochs are queued before the guard
            // flags shutdown; workers drain them before exiting.
            drop(guard);
            out
        })
        // Re-raise the original payload (a producer assertion, say)
        // instead of wrapping it — the shutdown guard has already
        // released the workers, so the join behind us was clean.
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        let report = self.drain_report();
        (result, report)
    }

    /// One submission attempt (see [`StreamHandle::submit`]).
    fn submit_inner(&self, group: usize, event: ChurnEvent) -> Admission {
        assert!(group < self.groups.len(), "unknown group id {group}");
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let slot = &self.groups[group];
        let mut queue = slot
            .queue
            .lock()
            .expect("a group queue mutex is never poisoned");
        if queue.pending.len() >= self.config.capacity {
            let depth = queue.pending.len();
            queue.rejected += 1;
            // Saturation seal: the overflowing submission is rejected,
            // but it forces the backlog out as a partial epoch — the
            // immediate retry is guaranteed to be admitted.
            let (guard, _) = self.seal(group, slot, queue, tick);
            drop(guard);
            return Admission::Busy { group, depth };
        }
        queue.pending.push((event, tick));
        queue.accepted += 1;
        let depth = queue.pending.len();
        let sealed = if depth >= self.config.watermark {
            let (guard, epoch) = self.seal(group, slot, queue, tick);
            drop(guard);
            Some(epoch)
        } else {
            None
        };
        Admission::Accepted {
            group,
            depth,
            sealed,
        }
    }

    /// Seal `slot`'s pending events as the group's next epoch: wait for
    /// the previous epoch to complete (pipeline depth 1), record latency
    /// samples, hand the epoch to the pool. Called with the group queue
    /// locked; returns the guard and the sealed epoch number.
    fn seal<'a>(
        &'a self,
        group: usize,
        slot: &'a GroupSlot,
        mut queue: MutexGuard<'a, GroupQueue>,
        seal_tick: u64,
    ) -> (MutexGuard<'a, GroupQueue>, u64) {
        while queue.in_flight {
            queue = slot
                .idle
                .wait(queue)
                .expect("a group queue mutex is never poisoned");
        }
        debug_assert!(!queue.pending.is_empty(), "sealing an empty epoch");
        let epoch = queue.epochs_sealed;
        queue.epochs_sealed += 1;
        let pending = std::mem::take(&mut queue.pending);
        let first_tick = pending.first().map_or(seal_tick, |&(_, t)| t);
        let mut events = Vec::with_capacity(pending.len());
        for (ev, tick) in pending {
            queue.lat.record(&ev, seal_tick.saturating_sub(tick));
            events.push(ev);
        }
        queue.lat.reprice.push(seal_tick.saturating_sub(first_tick));
        let out_slot = Arc::new(OnceLock::new());
        queue.slots.push(Arc::clone(&out_slot));
        queue.in_flight = true;
        {
            // Lock order is always group queue → task queue (workers
            // take them disjointly), so this nesting cannot deadlock.
            let mut tasks = self
                .tasks
                .lock()
                .expect("the task queue mutex is never poisoned");
            tasks.queue.push_back(Epoch {
                group,
                epoch,
                events,
                slot: out_slot,
            });
        }
        self.task_cv.notify_one();
        (queue, epoch)
    }

    /// Collect and reset every group's stream accounting after the pool
    /// has joined (exclusive access makes the drain single-threaded).
    fn drain_report(&mut self) -> StreamReport {
        let groups = self
            .groups
            .iter_mut()
            .enumerate()
            .map(|(g, slot)| {
                let queue = slot.queue.get_mut().unwrap_or_else(PoisonError::into_inner);
                debug_assert!(!queue.in_flight, "an epoch is still in flight after join");
                let slots = std::mem::take(&mut queue.slots);
                let epochs: Vec<EpochOutcome> = slots
                    .into_iter()
                    .map(|slot| {
                        Arc::try_unwrap(slot)
                            .expect("no worker holds an epoch slot after the pool joins")
                            .into_inner()
                            .expect("every sealed epoch completed")
                    })
                    .collect();
                let report = GroupStreamReport {
                    group: g,
                    mechanism: slot.mechanism,
                    accepted: queue.accepted,
                    rejected: queue.rejected,
                    retries: queue.retries,
                    latencies: std::mem::take(&mut queue.lat),
                    epochs,
                };
                // A panicking producer may abandon admitted-but-unsealed
                // events; a fresh drive starts clean either way.
                queue.pending.clear();
                queue.accepted = 0;
                queue.rejected = 0;
                queue.retries = 0;
                queue.epochs_sealed = 0;
                report
            })
            .collect();
        StreamReport { groups }
    }
}

/// The producer-side handle [`StreamService::drive`] passes to its
/// producer closure. `submit` takes `&self`: multiple producer threads
/// may share one handle. Outcome byte-identity is per-group submission
/// order; with a single producer the virtual-clock latency samples are
/// deterministic too.
#[derive(Debug, Clone, Copy)]
pub struct StreamHandle<'a> {
    svc: &'a StreamService,
}

impl StreamHandle<'_> {
    /// One submission attempt: admit `event` into `group`'s bounded
    /// queue, or reject it with a deterministic [`Admission::Busy`]
    /// (which saturation-seals the backlog — an immediate retry is
    /// admitted).
    ///
    /// # Panics
    /// On an unknown group id.
    pub fn submit(&self, group: usize, event: ChurnEvent) -> Admission {
        self.svc.submit_inner(group, event)
    }

    /// Submit with retry-on-busy until admitted; returns the number of
    /// `Busy` rejections absorbed (each also counted in the group's
    /// [`GroupStreamReport::retries`] accounting).
    pub fn submit_blocking(&self, group: usize, event: ChurnEvent) -> u64 {
        let mut busy = 0u64;
        loop {
            match self.submit(group, event) {
                Admission::Accepted { .. } => {
                    if busy > 0 {
                        let mut queue = self.svc.groups[group]
                            .queue
                            .lock()
                            .expect("a group queue mutex is never poisoned");
                        queue.retries += busy;
                    }
                    return busy;
                }
                Admission::Busy { .. } => busy += 1,
            }
        }
    }

    /// Seal `group`'s pending events as a partial epoch (no-op when the
    /// queue is empty). Returns the sealed epoch number, if any.
    /// [`StreamService::drive`] flushes every group automatically when
    /// the producer returns.
    ///
    /// # Panics
    /// On an unknown group id.
    pub fn flush(&self, group: usize) -> Option<u64> {
        assert!(group < self.svc.groups.len(), "unknown group id {group}");
        let slot = &self.svc.groups[group];
        let queue = slot
            .queue
            .lock()
            .expect("a group queue mutex is never poisoned");
        if queue.pending.is_empty() {
            return None;
        }
        let tick = self.svc.clock.load(Ordering::Relaxed);
        let (guard, epoch) = self.svc.seal(group, slot, queue, tick);
        drop(guard);
        Some(epoch)
    }

    /// Number of registered groups.
    pub fn n_groups(&self) -> usize {
        self.svc.groups.len()
    }
}

/// Replay `events` through a fresh single-threaded [`MulticastService`]
/// following [`epoch_plan`] — the pinned reference the streaming layer
/// is byte-identical to. Returns one outcome per planned epoch, in
/// order, for the addressed group only.
pub fn replay_reference(
    ut: &UniversalTree,
    mechanisms: &[GroupMechanism],
    group: usize,
    events: &[ChurnEvent],
    config: &StreamConfig,
) -> Vec<MechanismOutcome> {
    let mut svc = MulticastService::new(ut)
        .with_threads(1)
        .with_layout(config.layout);
    for &m in mechanisms {
        svc.add_group(m);
    }
    epoch_plan(events, config)
        .iter()
        .map(|chunk| {
            let mut out = svc.step(&[(group, chunk)]);
            out.pop().expect("one outcome per addressed group").outcome
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SubstrateBuilder, TreeKind};
    use crate::network::WirelessNetwork;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{MultiGroupProcess, Point, PowerModel};

    fn random_tree(seed: u64, n: usize) -> UniversalTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal()
    }

    fn stream_with_groups(ut: &UniversalTree, g: usize, config: StreamConfig) -> StreamService {
        let mut svc = StreamService::new(ut, config);
        for i in 0..g {
            svc.add_group(GroupMechanism::alternating(i));
        }
        svc
    }

    /// The interleaved stream of a multi-group trace (round-robin across
    /// groups inside each batch round) and the per-group mechanisms.
    fn workload(
        ut: &UniversalTree,
        g: usize,
        seed: u64,
    ) -> (Vec<(usize, ChurnEvent)>, Vec<GroupMechanism>) {
        let n = ut.network().n_players();
        let trace = MultiGroupProcess::new(n, g, 4, 8.0, seed).generate();
        let mechanisms = (0..g).map(GroupMechanism::alternating).collect();
        (trace.interleaved(), mechanisms)
    }

    fn per_group(stream: &[(usize, ChurnEvent)], g: usize) -> Vec<ChurnEvent> {
        stream
            .iter()
            .filter(|&&(eg, _)| eg == g)
            .map(|&(_, ev)| ev)
            .collect()
    }

    #[test]
    fn streaming_equals_single_thread_batch_replay() {
        let ut = random_tree(7, 24);
        let g = 6;
        let (stream, mechanisms) = workload(&ut, g, 3);
        for config in [StreamConfig::new(8, 64, 2), StreamConfig::new(8, 4, 3)] {
            let mut svc = stream_with_groups(&ut, g, config);
            let (_, report) = svc.drive(|h| {
                for &(group, ev) in &stream {
                    h.submit_blocking(group, ev);
                }
            });
            assert_eq!(report.n_accepted() as usize, stream.len());
            for gr in &report.groups {
                let events = per_group(&stream, gr.group);
                let reference = replay_reference(&ut, &mechanisms, gr.group, &events, &config);
                assert_eq!(gr.epochs.len(), reference.len(), "group {}", gr.group);
                for (k, (epoch, expect)) in gr.epochs.iter().zip(&reference).enumerate() {
                    assert_eq!(epoch.epoch, k as u64);
                    assert_eq!(
                        &epoch.outcome, expect,
                        "group {} epoch {k} diverges from batch replay",
                        gr.group
                    );
                }
            }
        }
    }

    #[test]
    fn busy_accounting_is_exact_under_saturation() {
        // capacity < watermark: every full epoch is a saturation seal,
        // and a group admitting m events with retry-on-busy sees exactly
        // floor((m - 1) / capacity) rejections.
        let ut = random_tree(2, 12);
        let config = StreamConfig::new(8, 4, 2);
        let mut svc = stream_with_groups(&ut, 1, config);
        let m = 9u64;
        let (_, report) = svc.drive(|h| {
            for i in 0..m {
                h.submit_blocking(
                    0,
                    ChurnEvent::Join {
                        player: (i % 11) as usize + 1,
                        utility: 1.0 + i as f64,
                    },
                );
            }
        });
        let gr = &report.groups[0];
        assert_eq!(gr.accepted, m);
        assert_eq!(gr.rejected, (m - 1) / 4);
        assert_eq!(gr.retries, gr.rejected, "every rejection retried once");
        let sizes: Vec<usize> = gr.epochs.iter().map(|e| e.n_events).collect();
        assert_eq!(sizes, vec![4, 4, 1], "saturation epochs + flushed tail");
    }

    #[test]
    fn watermark_sealing_never_rejects() {
        let ut = random_tree(4, 12);
        let config = StreamConfig::new(3, 64, 1);
        let mut svc = stream_with_groups(&ut, 2, config);
        let (admissions, report) = svc.drive(|h| {
            (0..7u64)
                .map(|i| {
                    h.submit(
                        0,
                        ChurnEvent::Join {
                            player: i as usize + 1,
                            utility: 2.0,
                        },
                    )
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(report.n_rejected(), 0);
        // Depths cycle 1, 2, 3(seal), 1, 2, 3(seal), 1 — and the seal is
        // reported on the watermark submission.
        let sealed: Vec<Option<u64>> = admissions
            .iter()
            .map(|a| match *a {
                Admission::Accepted { sealed, .. } => sealed,
                Admission::Busy { .. } => panic!("no rejection expected"),
            })
            .collect();
        assert_eq!(sealed, vec![None, None, Some(0), None, None, Some(1), None]);
        let gr = &report.groups[0];
        let sizes: Vec<usize> = gr.epochs.iter().map(|e| e.n_events).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
        // Group 1 saw no traffic: no epochs, no samples.
        assert!(report.groups[1].epochs.is_empty());
        assert_eq!(report.groups[1].latencies.n_samples(), 0);
    }

    #[test]
    fn latency_samples_follow_the_virtual_clock() {
        let ut = random_tree(9, 10);
        // Watermark 2: ticks 0,1 seal at tick 1 → delays [1, 0], reprice 1.
        let config = StreamConfig::new(2, 8, 1);
        let mut svc = stream_with_groups(&ut, 1, config);
        let (_, report) = svc.drive(|h| {
            for p in 1..=4usize {
                h.submit(
                    0,
                    ChurnEvent::Join {
                        player: p,
                        utility: 1.0,
                    },
                );
            }
        });
        let lat = &report.groups[0].latencies;
        assert_eq!(lat.join, vec![1, 0, 1, 0]);
        assert!(lat.leave.is_empty() && lat.rebid.is_empty());
        assert_eq!(lat.reprice, vec![1, 1]);
    }

    #[test]
    fn sessions_stay_warm_across_drives() {
        let ut = random_tree(5, 16);
        let config = StreamConfig::new(4, 16, 2);
        let g = 3;
        let (stream, mechanisms) = workload(&ut, g, 11);
        let half = stream.len() / 2;

        let mut split = stream_with_groups(&ut, g, config);
        let (_, first) = split.drive(|h| {
            for &(group, ev) in &stream[..half] {
                h.submit_blocking(group, ev);
            }
        });
        let (_, second) = split.drive(|h| {
            for &(group, ev) in &stream[half..] {
                h.submit_blocking(group, ev);
            }
        });

        // The reference replays each group's full subsequence in one
        // piece, but split at the same epoch boundaries: drive flushes
        // force an epoch boundary at the split point, so compare the
        // concatenated outcome streams per group against a reference
        // built from the two halves' plans.
        for group in 0..g {
            let mut reference = MulticastService::new(&ut).with_threads(1);
            for &m in &mechanisms {
                reference.add_group(m);
            }
            let mut expect = Vec::new();
            for part in [&stream[..half], &stream[half..]] {
                for chunk in epoch_plan(&per_group(part, group), &config) {
                    let mut out = reference.step(&[(group, &chunk)]);
                    expect.push(out.pop().expect("one outcome").outcome);
                }
            }
            let got: Vec<_> = first.groups[group]
                .epochs
                .iter()
                .chain(&second.groups[group].epochs)
                .map(|e| e.outcome.clone())
                .collect();
            assert_eq!(got, expect, "group {group} warm continuation diverges");
        }
        // Epoch numbers restart per drive.
        if let Some(e) = second.groups.iter().find_map(|gr| gr.epochs.first()) {
            assert_eq!(e.epoch, 0);
        }
    }

    #[test]
    fn clone_shares_substrate_and_warm_state() {
        let ut = random_tree(3, 14);
        let config = StreamConfig::new(4, 8, 2);
        let g = 2;
        let (stream, _) = workload(&ut, g, 5);
        let half = stream.len() / 2;
        let mut svc = stream_with_groups(&ut, g, config);
        let (_, _) = svc.drive(|h| {
            for &(group, ev) in &stream[..half] {
                h.submit_blocking(group, ev);
            }
        });
        let mut twin = svc.clone();
        let rest = |h: &StreamHandle<'_>| {
            for &(group, ev) in &stream[half..] {
                h.submit_blocking(group, ev);
            }
        };
        let (_, a) = svc.drive(rest);
        let (_, b) = twin.drive(rest);
        assert_eq!(a, b, "a cloned warm service must replay identically");
    }

    #[test]
    #[should_panic(expected = "unknown group id")]
    fn unknown_group_ids_are_rejected() {
        let ut = random_tree(1, 8);
        let mut svc = stream_with_groups(&ut, 2, StreamConfig::new(4, 8, 1));
        let _ = svc.drive(|h| {
            h.submit(
                7,
                ChurnEvent::Join {
                    player: 1,
                    utility: 1.0,
                },
            )
        });
    }

    #[test]
    fn epoch_plan_chunks_by_effective_epoch_size() {
        let events: Vec<ChurnEvent> = (1..=10)
            .map(|p| ChurnEvent::Join {
                player: p,
                utility: 1.0,
            })
            .collect();
        let sizes = |cfg: &StreamConfig| -> Vec<usize> {
            epoch_plan(&events, cfg).iter().map(Vec::len).collect()
        };
        assert_eq!(sizes(&StreamConfig::new(4, 64, 1)), vec![4, 4, 2]);
        assert_eq!(sizes(&StreamConfig::new(64, 3, 1)), vec![3, 3, 3, 1]);
        assert_eq!(sizes(&StreamConfig::new(10, 10, 1)), vec![10]);
        assert!(epoch_plan(&[], &StreamConfig::new(4, 4, 1)).is_empty());
    }
}
