//! # wmcs-wireless — the wireless networking substrate
//!
//! Everything the paper's model (§1) needs, built from scratch:
//!
//! * [`network::WirelessNetwork`] — stations, a symmetric cost graph
//!   `(S, c)`, a multicast source, and the station↔player index maps
//!   (with a lazy Euclidean regime that skips the `O(n²)` matrix);
//! * [`builder::SubstrateBuilder`] — **the** construction entry point
//!   for universal trees: one builder, dense and spatial backends
//!   (byte-identical), `Backend::Auto` switching at
//!   [`builder::SPATIAL_AUTO_THRESHOLD`] stations;
//! * [`power::PowerAssignment`] — power vectors, induced transmission
//!   digraphs, reachability, the tree→assignment Steiner heuristic;
//! * [`universal`] — universal broadcast trees (§2.1): the submodular cost
//!   function of Lemma 2.1, the paper's efficient Shapley split, and the
//!   largest-efficient-set tree DP for the MC mechanism;
//! * [`incremental`] — the incremental Moulin–Shenker engine and the
//!   `O(depth)`-per-query VCG net-worth oracle that scale both §2.1
//!   mechanisms to thousands of stations;
//! * [`substrate`] — the shared universal-tree substrate: network +
//!   cost-sorted CSR children behind an `Arc`, built once and shared by
//!   every engine, session and group;
//! * [`session`] — live multicast sessions: both §2.1 mechanisms served
//!   across a churn stream (join/leave/rebid) from warm state,
//!   byte-identical to a cold rebuild after every batch;
//! * [`sparse`] — compact-frame warm sessions: per-group memory
//!   `O(|closure(R_g)|)` instead of `O(n)` via [`substrate::Subframe`]
//!   local ids, byte-identical in outcomes to the dense sessions;
//! * [`service`] — the sharded multi-group service layer: G concurrent
//!   groups, each a warm session, priced over one substrate by a
//!   work-stealing worker pool with per-group byte-determinism;
//! * [`stream`] — epoch-pipelined streaming ingestion: interleaved
//!   `(group, event)` streams through bounded per-group queues with
//!   deterministic count-watermark epoch sealing and `Busy`
//!   backpressure, byte-identical to single-threaded batch replay;
//! * [`memt`] — exact minimum-energy multicast (set-state Dijkstra) and the
//!   all-subsets `C*` table, the optimum reference for every β-BB claim;
//! * [`mst_heuristic`] — the MST broadcast heuristic \[50\] and the KMB
//!   Steiner multicast heuristic of §3.2;
//! * [`bip`] — the BIP/MIP incremental-power heuristics of \[50\], ablation
//!   baselines for T6;
//! * [`euclidean`] — polynomial optimal solvers for `α = 1` and `d = 1`
//!   (Lemma 3.1), with closed-form Shapley values.

// Index loops over multiple parallel arrays are idiomatic in this
// numeric code; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Every public item carries rustdoc: this crate is the substrate other
// layers build mechanisms on, and undocumented invariants here become
// silent contract drift there.
#![deny(missing_docs)]

pub mod bip;
pub mod builder;
pub mod euclidean;
pub mod incremental;
pub mod memt;
pub mod mst_heuristic;
pub mod network;
pub mod power;
pub mod service;
pub mod session;
pub mod sparse;
pub mod stream;
pub mod substrate;
pub mod universal;

pub use bip::{bip_broadcast, mip_multicast};
pub use builder::{Backend, SubstrateBuilder, TreeKind, SPATIAL_AUTO_THRESHOLD};
pub use euclidean::{AlphaOneCost, AlphaOneSolver, LineCost, LineSolver};
pub use incremental::{
    reference_drop_run, shapley_drop_run, shapley_drop_run_from, shapley_drop_run_with_stats,
    DropStats, IncrementalShapley, NetWorthOracle,
};
pub use memt::{memt_exact, MemtCostTable, OptimalMulticastCost, MAX_EXACT_STATIONS};
pub use mst_heuristic::{mst_broadcast, mst_multicast, steiner_multicast};
pub use network::WirelessNetwork;
pub use power::PowerAssignment;
pub use service::{
    GroupMechanism, GroupOutcome, GroupSession, MulticastService, SessionLayout,
    SPARSE_AUTO_THRESHOLD,
};
pub use session::{vcg_outcome, ChurnEvent, ChurnProcess, ChurnTrace, McSession, ShapleySession};
pub use sparse::{SparseMcSession, SparseNetWorth, SparseShapley, SparseShapleySession};
pub use stream::{
    epoch_plan, replay_reference, Admission, EpochOutcome, GroupStreamReport, StreamConfig,
    StreamHandle, StreamLatencies, StreamReport, StreamService,
};
pub use substrate::{NodeId, Subframe, TreeSubstrate, NO_STATION};
pub use universal::{UniversalTree, UniversalTreeCost};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use wmcs_geom::{approx_eq, Point, PowerModel};

    #[test]
    fn universal_tree_cost_upper_bounds_optimum() {
        // A universal tree is one feasible strategy; the exact optimum can
        // only be cheaper.
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.5),
            Point::xy(2.0, -0.5),
            Point::xy(3.0, 0.3),
            Point::xy(1.5, 2.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        for receivers in [vec![3], vec![4], vec![1, 3], vec![1, 2, 3, 4]] {
            let (opt, _) = memt_exact(&net, &receivers);
            let tree_cost = ut.multicast_cost(&receivers);
            assert!(
                opt <= tree_cost + 1e-9,
                "R = {receivers:?}: opt {opt} > tree {tree_cost}"
            );
        }
    }

    #[test]
    fn steiner_heuristic_and_universal_tree_are_feasible() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(10.0, 0.0),
            Point::xy(0.1, 3.0),
        ];
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        let (_, pa) = steiner_multicast(&net, &[1, 2]);
        assert!(pa.multicasts_to(&net, &[1, 2]));
        let ut = SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal();
        assert!(ut.power_assignment(&[1, 2]).multicasts_to(&net, &[1, 2]));
        let (opt, _) = memt_exact(&net, &[1, 2]);
        assert!(opt <= pa.total_cost() + 1e-9);
    }

    #[test]
    fn line_alpha_one_agree_on_their_intersection() {
        // d = 1 with α = 1: both special-case solvers are exact, so they
        // must agree.
        let pts: Vec<Point> = [0.0, 1.0, 3.0, 7.0]
            .iter()
            .map(|&x| Point::on_line(x))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::linear(), 0);
        let line = LineSolver::new(&net);
        let alpha = AlphaOneSolver::new(&net);
        for receivers in [vec![1], vec![3], vec![1, 2], vec![1, 2, 3]] {
            assert!(approx_eq(
                line.chain_cost(&receivers),
                alpha.optimal_cost(&receivers)
            ));
        }
    }
}
