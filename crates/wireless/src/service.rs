//! The multi-group service layer: thousands of concurrent multicast
//! groups priced over **one** shared substrate, sharded across a worker
//! pool.
//!
//! The paper prices one group over one universal tree; the production
//! regime this workspace grows toward serves many groups over one
//! station universe concurrently (the multi-connection setting of Lun et
//! al. and the many-group capacity regime of Liu & Andrews — see
//! PAPERS.md). A [`MulticastService`] holds:
//!
//! * one `O(1)`-clone [`UniversalTree`] handle — the immutable
//!   [`crate::substrate::TreeSubstrate`] every group shares;
//! * per group, a warm session ([`ShapleySession`] or [`McSession`])
//!   whose engine state is the only per-group allocation.
//!
//! # Batch ingestion and sharding
//!
//! A service **step** takes one churn batch per (addressed) group and
//! reprices exactly those groups. Groups are independent — no event ever
//! crosses groups — so the step shards them over a crossbeam worker pool:
//! a shared atomic cursor hands out group indices (work stealing, same
//! discipline as the sweep engine in `wmcs-bench`), each worker absorbs
//! and reprices its group, and outcomes land in per-group slots.
//!
//! # Determinism contract
//!
//! The outcome of a step is **byte-identical** regardless of thread
//! count: each group's events are applied in batch order by exactly one
//! worker, results are placed by group index, and the substrate is never
//! written after construction. [`MulticastService::with_threads`] with 1
//! is therefore the reference the sharded run is pinned against
//! (experiment T12 and `tests/service_props.rs` additionally pin every
//! group to an *independent single-group session over its own freshly
//! built substrate* — cross-group isolation down to the last float).

use crate::session::{McSession, ShapleySession};
use crate::sparse::{SparseMcSession, SparseShapleySession};
use crate::universal::UniversalTree;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use wmcs_game::MechanismOutcome;
use wmcs_geom::churn::ChurnEvent;

/// Universe size at which [`SessionLayout::Auto`] switches a group's
/// warm state to the sparse (frame-local) layout. Below it the dense
/// arrays are small enough that the pointer-chasing frame buys nothing;
/// at and above it per-group `O(n)` state dominates the footprint (the
/// streaming-SLO regime). Every committed experiment scenario sits at
/// `n ≤ 256`, so `Auto` keeps their baselines on the pinned dense path.
pub const SPARSE_AUTO_THRESHOLD: usize = 4096;

/// How a group's warm session state is laid out in memory.
///
/// Both layouts produce **byte-identical** outcomes (pinned by
/// `tests/sparse_props.rs` and experiment T15); the knob trades the
/// dense engines' `O(n)`-per-group arrays against the sparse engines'
/// `O(|T(R_g)|)` frame-local state (see [`crate::sparse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionLayout {
    /// Universe-indexed arrays — the pinned reference layout.
    Dense,
    /// Frame-local arrays over the group's path closure.
    Sparse,
    /// `Sparse` when the universe has at least
    /// [`SPARSE_AUTO_THRESHOLD`] stations, `Dense` otherwise (the
    /// default).
    #[default]
    Auto,
}

impl SessionLayout {
    /// Resolve `Auto` against a concrete universe size.
    pub fn resolve(self, n_stations: usize) -> SessionLayout {
        match self {
            SessionLayout::Auto => {
                if n_stations >= SPARSE_AUTO_THRESHOLD {
                    SessionLayout::Sparse
                } else {
                    SessionLayout::Dense
                }
            }
            other => other,
        }
    }
}

/// Which §2.1 mechanism a group is priced with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupMechanism {
    /// Moulin–Shenker over Shapley shares (BB, group-strategyproof).
    Shapley,
    /// Marginal cost / VCG (efficient, strategyproof).
    MarginalCost,
}

impl GroupMechanism {
    /// The canonical alternating assignment (`Shapley` on even ids, `MC`
    /// on odd) used whenever a workload wants both mechanisms to face
    /// every shape — T12, the `service_throughput` bench, the isolation
    /// proptests and `examples/multi_group.rs` all share this one rule,
    /// so their byte-identity references cannot drift out of lockstep.
    pub fn alternating(group: usize) -> Self {
        if group.is_multiple_of(2) {
            GroupMechanism::Shapley
        } else {
            GroupMechanism::MarginalCost
        }
    }
}

/// One group's warm live session, dispatching to either §2.1 mechanism.
///
/// This is both the service's internal per-group state and the public
/// building block for *independent* reference sessions (the isolation
/// gates compare a service group against a `GroupSession` built on its
/// own substrate).
#[derive(Debug, Clone)]
pub enum GroupSession {
    /// A Moulin–Shenker Shapley session (dense layout).
    Shapley(ShapleySession),
    /// A marginal-cost (VCG) session (dense layout).
    Mc(McSession),
    /// A Moulin–Shenker Shapley session in the sparse layout.
    SparseShapley(SparseShapleySession),
    /// A marginal-cost (VCG) session in the sparse layout.
    SparseMc(SparseMcSession),
}

impl GroupSession {
    /// An empty **dense** session priced with `mechanism` over `ut` —
    /// the pinned reference layout every byte-identity gate compares
    /// against. Use [`GroupSession::with_layout`] to pick a layout.
    pub fn new(mechanism: GroupMechanism, ut: &UniversalTree) -> Self {
        Self::with_layout(mechanism, ut, SessionLayout::Dense)
    }

    /// An empty session priced with `mechanism` over `ut`, in the given
    /// [`SessionLayout`] (`Auto` resolves against the universe size).
    pub fn with_layout(
        mechanism: GroupMechanism,
        ut: &UniversalTree,
        layout: SessionLayout,
    ) -> Self {
        match (mechanism, layout.resolve(ut.network().n_stations())) {
            (GroupMechanism::Shapley, SessionLayout::Sparse) => {
                GroupSession::SparseShapley(SparseShapleySession::new(ut))
            }
            (GroupMechanism::Shapley, _) => GroupSession::Shapley(ShapleySession::new(ut)),
            (GroupMechanism::MarginalCost, SessionLayout::Sparse) => {
                GroupSession::SparseMc(SparseMcSession::new(ut))
            }
            (GroupMechanism::MarginalCost, _) => GroupSession::Mc(McSession::new(ut)),
        }
    }

    /// The mechanism this session prices with.
    pub fn mechanism(&self) -> GroupMechanism {
        match self {
            GroupSession::Shapley(_) | GroupSession::SparseShapley(_) => GroupMechanism::Shapley,
            GroupSession::Mc(_) | GroupSession::SparseMc(_) => GroupMechanism::MarginalCost,
        }
    }

    /// The concrete layout this session's warm state uses.
    pub fn layout(&self) -> SessionLayout {
        match self {
            GroupSession::Shapley(_) | GroupSession::Mc(_) => SessionLayout::Dense,
            GroupSession::SparseShapley(_) | GroupSession::SparseMc(_) => SessionLayout::Sparse,
        }
    }

    /// Absorb one churn batch and reprice (dispatches to the session's
    /// `apply_batch`).
    pub fn apply_batch(&mut self, events: &[ChurnEvent]) -> MechanismOutcome {
        match self {
            GroupSession::Shapley(s) => s.apply_batch(events),
            GroupSession::Mc(s) => s.apply_batch(events),
            GroupSession::SparseShapley(s) => s.apply_batch(events),
            GroupSession::SparseMc(s) => s.apply_batch(events),
        }
    }

    /// The full-length bid profile the next reprice would use (zero
    /// outside the session).
    pub fn reported_profile(&self) -> Vec<f64> {
        match self {
            GroupSession::Shapley(s) => s.reported_profile(),
            GroupSession::Mc(s) => s.reported_profile(),
            GroupSession::SparseShapley(s) => s.reported_profile(),
            GroupSession::SparseMc(s) => s.reported_profile(),
        }
    }

    /// Warm heap bytes this session retains between reprices (the shared
    /// substrate is excluded).
    pub fn memory_bytes(&self) -> usize {
        match self {
            GroupSession::Shapley(s) => s.memory_bytes(),
            GroupSession::Mc(s) => s.memory_bytes(),
            GroupSession::SparseShapley(s) => s.memory_bytes(),
            GroupSession::SparseMc(s) => s.memory_bytes(),
        }
    }
}

/// One group's repriced allocation after a service step.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupOutcome {
    /// The group the outcome belongs to.
    pub group: usize,
    /// The mechanism outcome on the group's current receiver set.
    pub outcome: MechanismOutcome,
}

/// A sharded multi-group serving engine over one shared substrate.
///
/// Cloning copies every group's warm per-group state (`O(G·n)`) but
/// shares the substrate — the `service_throughput` bench clones a warmed
/// service inside its timers to replay identical steady states.
#[derive(Debug)]
pub struct MulticastService {
    ut: UniversalTree,
    mechanisms: Vec<GroupMechanism>,
    /// Per-group warm sessions. The mutex is an ownership device for the
    /// work-stealing shard (each index is taken by exactly one worker per
    /// step), never contended.
    groups: Vec<Mutex<GroupSession>>,
    /// Warm-state layout for newly added groups.
    layout: SessionLayout,
    /// Worker threads per step; 0 = available parallelism.
    threads: usize,
    steps: usize,
    events: usize,
}

impl Clone for MulticastService {
    fn clone(&self) -> Self {
        Self {
            ut: self.ut.clone(),
            mechanisms: self.mechanisms.clone(),
            groups: self
                .groups
                .iter()
                .map(|group| {
                    // A panicked worker poisons its group's mutex; the
                    // state itself is a plain session snapshot, so recover
                    // it rather than fabricating a second panic site.
                    Mutex::new(group.lock().unwrap_or_else(PoisonError::into_inner).clone())
                })
                .collect(),
            layout: self.layout,
            threads: self.threads,
            steps: self.steps,
            events: self.events,
        }
    }
}

impl MulticastService {
    /// An empty service over the shared substrate of `ut` (no groups
    /// yet). The handle is cloned (`O(1)`), never the substrate. New
    /// groups use the [`SessionLayout::Auto`] default — dense below
    /// [`SPARSE_AUTO_THRESHOLD`] stations, sparse at and above it.
    pub fn new(ut: &UniversalTree) -> Self {
        Self {
            ut: ut.clone(),
            mechanisms: Vec::new(),
            groups: Vec::new(),
            layout: SessionLayout::Auto,
            threads: 0,
            steps: 0,
            events: 0,
        }
    }

    /// Pin the worker count (1 = the single-thread reference; 0 =
    /// available parallelism, the default).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pin the warm-state layout used by groups added **after** this
    /// call (already-added groups keep theirs). Both layouts are
    /// byte-identical in outcomes; see [`SessionLayout`].
    pub fn with_layout(mut self, layout: SessionLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Register a new group priced with `mechanism`; returns its group
    /// id (dense, starting at 0). `O(n)` for the dense layout (the
    /// session's universe-sized vectors), `O(1)` for the sparse one; the
    /// substrate is shared, not copied.
    pub fn add_group(&mut self, mechanism: GroupMechanism) -> usize {
        let state = GroupSession::with_layout(mechanism, &self.ut, self.layout);
        self.mechanisms.push(mechanism);
        self.groups.push(Mutex::new(state));
        self.groups.len() - 1
    }

    /// Number of registered groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The mechanism group `g` is priced with.
    pub fn mechanism(&self, g: usize) -> GroupMechanism {
        self.mechanisms[g]
    }

    /// The shared universal tree every group prices over.
    pub fn universal_tree(&self) -> &UniversalTree {
        &self.ut
    }

    /// Total warm session state across every group, in bytes (the shared
    /// substrate is excluded — it is one `Arc` for the whole service).
    /// Divide by [`Self::n_groups`] for the per-group figure.
    pub fn memory_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|group| {
                group
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .memory_bytes()
            })
            .sum()
    }

    /// The full-length bid profile group `g` would reprice with next
    /// (zero outside the group's session) — the VP gates read charges
    /// against exactly this profile.
    pub fn reported_profile(&self, g: usize) -> Vec<f64> {
        self.groups[g]
            .lock()
            .expect("a group mutex is never poisoned")
            .reported_profile()
    }

    /// Steps executed so far.
    pub fn n_steps(&self) -> usize {
        self.steps
    }

    /// Events ingested so far, across all groups.
    pub fn n_events(&self) -> usize {
        self.events
    }

    /// One service step: absorb `batch[i] = (group, events)` and reprice
    /// exactly the addressed groups, sharded across the worker pool.
    ///
    /// Group ids must be strictly ascending (one batch per group per
    /// step — the deterministic ingestion contract). Returns one
    /// [`GroupOutcome`] per entry, in the same order, byte-identical for
    /// every thread count.
    pub fn step(&mut self, batch: &[(usize, &[ChurnEvent])]) -> Vec<GroupOutcome> {
        assert!(
            batch.windows(2).all(|w| w[0].0 < w[1].0),
            "group ids must be strictly ascending (one batch per group per step)"
        );
        if let Some(&(last, _)) = batch.last() {
            assert!(last < self.groups.len(), "unknown group id {last}");
        }
        self.steps += 1;
        self.events += batch.iter().map(|(_, ev)| ev.len()).sum::<usize>();

        let slots: Vec<OnceLock<MechanismOutcome>> =
            (0..batch.len()).map(|_| OnceLock::new()).collect();
        let run_one = |i: usize| {
            let (g, events) = batch[i];
            let mut state = self.groups[g]
                .lock()
                .expect("a group mutex is never poisoned");
            let outcome = state.apply_batch(events);
            slots[i]
                .set(outcome)
                .expect("each addressed group repriced exactly once");
        };

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.threads
        }
        .clamp(1, batch.len().max(1));

        if threads <= 1 {
            for i in 0..batch.len() {
                run_one(i);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= batch.len() {
                            break;
                        }
                        run_one(i);
                    });
                }
            })
            .expect("service worker panicked");
        }

        batch
            .iter()
            .zip(slots)
            .map(|(&(group, _), slot)| GroupOutcome {
                group,
                outcome: slot.into_inner().expect("all addressed groups repriced"),
            })
            .collect()
    }

    /// Convenience step addressing **every** group: `batches[g]` is group
    /// `g`'s event batch (must cover all groups).
    pub fn step_all(&mut self, batches: &[Vec<ChurnEvent>]) -> Vec<GroupOutcome> {
        assert_eq!(batches.len(), self.groups.len(), "one batch per group");
        let batch: Vec<(usize, &[ChurnEvent])> = batches
            .iter()
            .enumerate()
            .map(|(g, ev)| (g, ev.as_slice()))
            .collect();
        self.step(&batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SubstrateBuilder, TreeKind};
    use crate::network::WirelessNetwork;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{MultiGroupProcess, Point, PowerModel};

    fn random_tree(seed: u64, n: usize) -> UniversalTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let net = WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0);
        SubstrateBuilder::new(&net)
            .tree(TreeKind::Spt)
            .build_universal()
    }

    fn service_with_groups(ut: &UniversalTree, g: usize, threads: usize) -> MulticastService {
        let mut svc = MulticastService::new(ut).with_threads(threads);
        for i in 0..g {
            svc.add_group(GroupMechanism::alternating(i));
        }
        svc
    }

    #[test]
    fn sharded_steps_are_byte_identical_to_single_thread() {
        let ut = random_tree(11, 24);
        let trace = MultiGroupProcess::new(ut.network().n_players(), 8, 5, 12.0, 3).generate();
        let mut sharded = service_with_groups(&ut, 8, 4);
        let mut serial = service_with_groups(&ut, 8, 1);
        for b in 0..trace.n_batches() {
            let batches: Vec<Vec<_>> = trace
                .groups
                .iter()
                .map(|g| g.trace.batches[b].clone())
                .collect();
            let a = sharded.step_all(&batches);
            let s = serial.step_all(&batches);
            assert_eq!(a, s, "batch {b}: sharded and serial outcomes differ");
        }
        assert_eq!(sharded.n_steps(), trace.n_batches());
        assert_eq!(sharded.n_events(), trace.n_events());
    }

    #[test]
    fn partial_steps_touch_only_the_addressed_groups() {
        let ut = random_tree(5, 12);
        let mut svc = service_with_groups(&ut, 3, 2);
        let join = |player, utility| ChurnEvent::Join { player, utility };
        // Step only group 1.
        let events = [join(2, 50.0), join(4, 50.0)];
        let out = svc.step(&[(1, &events)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].group, 1);
        assert!(!out[0].outcome.receivers.is_empty());
        // Group 0 and 2 are untouched: an empty batch reprices an empty
        // session.
        let empty: [ChurnEvent; 0] = [];
        let out0 = svc.step(&[(0, &empty)]);
        assert!(out0[0].outcome.receivers.is_empty());
    }

    #[test]
    fn per_group_outcomes_match_independent_sessions_on_their_own_substrate() {
        // The cross-group isolation contract, unit-sized (the proptest in
        // tests/service_props.rs scales it): each group's outcome stream
        // equals an independent single-group session over its own
        // freshly-built substrate, byte for byte.
        for seed in 0..4 {
            let ut = random_tree(seed, 16);
            let g = 5;
            let trace =
                MultiGroupProcess::new(ut.network().n_players(), g, 4, 10.0, seed).generate();
            let mut svc = service_with_groups(&ut, g, 0);
            // Independent references, each over its own substrate.
            let mut refs: Vec<GroupSession> = (0..g)
                .map(|i| GroupSession::new(GroupMechanism::alternating(i), &random_tree(seed, 16)))
                .collect();
            for b in 0..trace.n_batches() {
                let batches: Vec<Vec<_>> = trace
                    .groups
                    .iter()
                    .map(|gr| gr.trace.batches[b].clone())
                    .collect();
                let outs = svc.step_all(&batches);
                for (i, out) in outs.iter().enumerate() {
                    let expect = refs[i].apply_batch(&batches[i]);
                    assert_eq!(out.outcome, expect, "seed {seed}, group {i}, batch {b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_group_ids_are_rejected() {
        let ut = random_tree(1, 8);
        let mut svc = service_with_groups(&ut, 2, 1);
        let empty: [ChurnEvent; 0] = [];
        let _ = svc.step(&[(0, &empty), (0, &empty)]);
    }

    #[test]
    #[should_panic(expected = "unknown group id")]
    fn out_of_range_group_ids_are_rejected() {
        let ut = random_tree(1, 8);
        let mut svc = service_with_groups(&ut, 2, 1);
        let empty: [ChurnEvent; 0] = [];
        let _ = svc.step(&[(7, &empty)]);
    }
}
