//! The MST broadcast/multicast heuristic of Wieselthier–Nguyen–Ephremides
//! \[50\] and the Steiner-tree heuristic of §3.2.
//!
//! * broadcast: tune powers so the transmission digraph includes an MST of
//!   the cost graph — approximation ratio at most `3^d − 1` for α ≥ d
//!   (Flammini et al. \[21\], Lemma 3.4), improved to 6 for d = 2 (Ambühl
//!   \[1\]);
//! * multicast: prune the rooted MST to the union of root→receiver paths;
//! * Steiner: orient any Steiner tree connecting `s` and `R` downward; the
//!   induced assignment costs at most the tree (Lemma 3.5 machinery).

use crate::network::WirelessNetwork;
use crate::power::PowerAssignment;
use wmcs_graph::{kmb_steiner, prim_mst, RootedTree, SteinerTree};

/// Broadcast power assignment implementing the MST of the cost graph.
pub fn mst_broadcast(net: &WirelessNetwork) -> PowerAssignment {
    let mst = prim_mst(net.costs());
    let tree = mst.rooted_at(net.n_stations(), net.source());
    PowerAssignment::from_tree(net, &tree)
}

/// Multicast power assignment: the rooted MST pruned to the receivers.
pub fn mst_multicast(net: &WirelessNetwork, receivers: &[usize]) -> PowerAssignment {
    let mst = prim_mst(net.costs());
    let tree = mst.rooted_at(net.n_stations(), net.source());
    let pruned = tree.steiner_subtree(receivers);
    PowerAssignment::from_tree(net, &pruned)
}

/// The Steiner heuristic of §3.2: build a (2-approximate, KMB) Steiner tree
/// connecting the source and the receivers in the cost graph, orient it
/// downward, and emit per-station powers. Returns the tree and assignment.
pub fn steiner_multicast(
    net: &WirelessNetwork,
    receivers: &[usize],
) -> (SteinerTree, PowerAssignment) {
    let mut terminals = receivers.to_vec();
    terminals.push(net.source());
    terminals.sort_unstable();
    terminals.dedup();
    let st = kmb_steiner(net.costs(), &terminals);
    let rooted = RootedTree::from_undirected_edges(net.n_stations(), net.source(), &st.edges);
    let pa = PowerAssignment::from_tree(net, &rooted);
    (st, pa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memt::memt_exact;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{Point, PowerModel};

    fn random_net(seed: u64, n: usize, alpha: f64) -> WirelessNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        WirelessNetwork::euclidean(pts, PowerModel::with_alpha(alpha), 0)
    }

    #[test]
    fn mst_broadcast_reaches_everyone() {
        let net = random_net(1, 8, 2.0);
        let pa = mst_broadcast(&net);
        let all: Vec<usize> = (1..8).collect();
        assert!(pa.multicasts_to(&net, &all));
    }

    #[test]
    fn mst_multicast_reaches_receivers_cheaper_than_broadcast() {
        let net = random_net(2, 8, 2.0);
        let receivers = vec![3, 5];
        let multicast = mst_multicast(&net, &receivers);
        let broadcast = mst_broadcast(&net);
        assert!(multicast.multicasts_to(&net, &receivers));
        assert!(multicast.total_cost() <= broadcast.total_cost() + 1e-9);
    }

    #[test]
    fn steiner_assignment_no_costlier_than_tree() {
        // Lemma 3.5's companion fact: orienting a Steiner tree yields an
        // assignment of at most the tree cost.
        for seed in 0..10 {
            let net = random_net(seed, 9, 2.0);
            let receivers = vec![2, 4, 7];
            let (tree, pa) = steiner_multicast(&net, &receivers);
            assert!(pa.multicasts_to(&net, &receivers), "seed {seed}");
            assert!(
                pa.total_cost() <= tree.cost + 1e-9,
                "seed {seed}: assignment {} > tree {}",
                pa.total_cost(),
                tree.cost
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn mst_broadcast_within_lemma_3_4_bound(seed in 0u64..300) {
            // d = 2, α = 2 ⇒ ratio ≤ 3² − 1 = 8 (and ≤ 6 by Ambühl).
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..8);
            let net = random_net(seed, n, 2.0);
            let all: Vec<usize> = (1..n).collect();
            let pa = mst_broadcast(&net);
            let (opt, _) = memt_exact(&net, &all);
            prop_assert!(pa.total_cost() <= 6.0 * opt + 1e-6,
                "ratio {} exceeds Ambühl's 6", pa.total_cost() / opt);
        }

        #[test]
        fn steiner_multicast_feasible_on_random_instances(seed in 0u64..300) {
            let mut rng = SmallRng::seed_from_u64(seed ^ 77);
            let n = rng.gen_range(4usize..10);
            let net = random_net(seed, n, 2.0);
            let receivers: Vec<usize> = (1..n).filter(|_| rng.gen_bool(0.5)).collect();
            if receivers.is_empty() {
                return Ok(());
            }
            let (_, pa) = steiner_multicast(&net, &receivers);
            prop_assert!(pa.multicasts_to(&net, &receivers));
        }
    }
}
