//! The shared universal-tree substrate: network + cost-sorted CSR
//! children, built once and served to any number of multicast groups.
//!
//! Before this layer existed, every [`crate::universal::UniversalTree`]
//! owned its `WirelessNetwork` by value and rebuilt (and re-sorted) a
//! nested `Vec<Vec<usize>>` of children on every construction, so a
//! workload of G concurrent groups over one station universe paid G
//! copies of an `O(n²)` cost matrix and G sorts — and a session borrowed
//! one tree for one group. A [`TreeSubstrate`] is the immutable,
//! cache-friendly form of everything those consumers share:
//!
//! * the [`WirelessNetwork`] (stations, symmetric costs, source);
//! * the spanning [`RootedTree`] `T(S\{s})`;
//! * its children in flat **CSR** form ([`CsrChildren`]), each station's
//!   slice sorted by ascending edge cost — the order used by the Shapley
//!   split, the efficient-set DP and the incremental engines;
//! * a dense parent array with the [`NO_STATION`] sentinel and a cached
//!   BFS order, the two hot-path walks every engine repeats.
//!
//! Substrates are shared behind [`Arc`](std::sync::Arc): a
//! [`UniversalTree`] is a thin
//! handle (`Arc<TreeSubstrate>`), so cloning one is `O(1)` and the
//! multi-group service layer ([`crate::service`]) runs thousands of warm
//! per-group sessions against a single allocation of the expensive
//! state. Experiment T12 and the `service_throughput` bench pin the
//! resulting per-group byte-identity and throughput.
//!
//! [`UniversalTree`]: crate::universal::UniversalTree

use crate::network::WirelessNetwork;
use wmcs_graph::{dijkstra, prim_mst, CsrChildren, RootedTree};

/// Sentinel for "no station" in dense parent/sibling arrays.
pub const NO_STATION: usize = usize::MAX;

/// The immutable shared substrate of a universal broadcast tree: the
/// network, the spanning tree, and the cost-sorted CSR children —
/// everything that is per-*universe* rather than per-*group*.
#[derive(Debug)]
pub struct TreeSubstrate {
    net: WirelessNetwork,
    tree: RootedTree,
    /// Children of each station in ascending edge-cost order, flat CSR.
    csr: CsrChildren,
    /// Parent station ([`NO_STATION`] for the source), dense.
    parent: Vec<usize>,
    /// BFS order from the source, children visited in cost order.
    bfs: Vec<usize>,
}

impl TreeSubstrate {
    /// Build the substrate from an owned network and an explicit spanning
    /// tree rooted at the source. `O(n log n)` (one CSR build + one sort
    /// per child slice) — paid **once** per universe, not per group.
    pub fn new(net: WirelessNetwork, tree: RootedTree) -> Self {
        assert_eq!(
            tree.root(),
            net.source(),
            "tree must be rooted at the source"
        );
        assert_eq!(
            tree.node_count(),
            net.n_stations(),
            "universal trees span all stations"
        );
        let mut csr = tree.csr_children();
        csr.sort_children_by(|x, a, b| net.cost(x, a).total_cmp(&net.cost(x, b)).then(a.cmp(&b)));
        let parent = (0..net.n_stations())
            .map(|v| tree.parent(v).unwrap_or(NO_STATION))
            .collect();
        let bfs = csr.bfs_order(net.source(), net.n_stations());
        Self {
            net,
            tree,
            csr,
            parent,
            bfs,
        }
    }

    /// Substrate over the shortest-path universal tree (the Penna–Ventre
    /// choice discussed in §2.1). Copies the network once.
    pub fn shortest_path(net: &WirelessNetwork) -> Self {
        let tree = dijkstra(net.costs(), net.source()).tree();
        Self::new(net.clone(), tree)
    }

    /// Substrate over the MST universal tree (the Wieselthier et al.
    /// broadcast heuristic \[50\] turned universal). Copies the network
    /// once.
    pub fn mst(net: &WirelessNetwork) -> Self {
        let tree = prim_mst(net.costs()).rooted_at(net.n_stations(), net.source());
        Self::new(net.clone(), tree)
    }

    /// The underlying network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// The underlying spanning tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// Children of station `x` in ascending edge-cost order.
    pub fn sorted_children(&self, x: usize) -> &[usize] {
        self.csr.children(x)
    }

    /// The full cost-sorted CSR children structure (offsets for flat
    /// per-edge side arrays, `pos_in_parent`, …).
    pub fn csr(&self) -> &CsrChildren {
        &self.csr
    }

    /// Parent of `v`, or [`NO_STATION`] for the source.
    pub fn parent_of(&self, v: usize) -> usize {
        self.parent[v]
    }

    /// Cached BFS order from the source (children in cost order);
    /// reversing it visits children before parents.
    pub fn bfs_order(&self) -> &[usize] {
        &self.bfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use wmcs_geom::{Point, PowerModel};

    fn random_net(seed: u64, n: usize) -> WirelessNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        WirelessNetwork::euclidean(pts, PowerModel::free_space(), 0)
    }

    #[test]
    fn children_are_cost_sorted_and_positions_invert() {
        for seed in 0..8 {
            let net = random_net(seed, 16);
            let sub = TreeSubstrate::shortest_path(&net);
            for x in 0..16 {
                let kids = sub.sorted_children(x);
                for w in kids.windows(2) {
                    assert!(sub.network().cost(x, w[0]) <= sub.network().cost(x, w[1]));
                }
                for (j, &c) in kids.iter().enumerate() {
                    assert_eq!(sub.csr().pos_in_parent(c), j);
                    assert_eq!(sub.parent_of(c), x);
                }
            }
            assert_eq!(sub.parent_of(sub.network().source()), NO_STATION);
        }
    }

    #[test]
    fn bfs_order_spans_all_stations_children_after_parents() {
        let net = random_net(3, 20);
        let sub = TreeSubstrate::mst(&net);
        let order = sub.bfs_order();
        assert_eq!(order.len(), 20);
        let pos: Vec<usize> = {
            let mut p = vec![0; 20];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for v in 0..20 {
            if sub.parent_of(v) != NO_STATION {
                assert!(pos[sub.parent_of(v)] < pos[v]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "span all stations")]
    fn partial_tree_rejected() {
        let net = random_net(0, 4);
        let tree = RootedTree::from_parents(0, vec![None, Some(0), None, None]);
        let _ = TreeSubstrate::new(net, tree);
    }
}
